"""The broker's protocol engine: frame dispatch over session state.

Everything here is transport-free and synchronous — the asyncio layer
(:mod:`repro.serve.broker`) owns sockets, buffering, and timeouts, and
funnels every decoded frame through :meth:`BrokerCore.handle_frame`.
That split keeps the entire pub-sub semantics unit-testable without a
single socket: tests drive ``connect`` / ``handle_frame`` /
``disconnect`` directly and assert on outbound frames, trace events,
and registry counters.

The :class:`Dispatcher` maps frame *types* to handler methods — the
session-dispatch table the wire format implies — and
:class:`BrokerCore` implements the handlers:

* ``Hello`` — identify the session (and, repeated, keep it alive);
  the broker answers with its own ``Hello``.
* ``Subscribe`` — replace the node's **durable** exact subscription
  set.  Durable means it survives disconnects: a reconnecting node is
  matched again the moment it says ``Hello``, without resubscribing.
  Subscription state is backed by the existing
  :class:`~repro.pubsub.node.BsubNodeState` machinery (genuine filter
  + Bloom projection), and the keys are A-merged into the broker's
  relay filter exactly like a Sec. V-C interest announcement.
* ``InterestAnnouncement`` / ``RelayFilter`` — the contact-layer
  filter frames, absorbed into the broker relay by A-/M-merge for
  paper-faithfulness (they do not create durable subscriptions —
  only exact ``Subscribe`` keys do).
* ``MessageBundle`` — a publish.  The broker computes the
  ground-truth intended-recipient set from the durable subscriptions,
  matches per the spec's ``matching`` mode, and fans the bundle out
  to every matched *connected* consumer.
* ``FilterRequest`` — counted and acknowledged with the broker's
  ``Hello`` (the session layer has no message store to pull from;
  the frame exists for contact-layer symmetry).

Every decision is emitted as a schema-v2 trace event with the exact
field names the offline analyzer consumes, and mirrored into
:class:`~repro.obs.registry.MetricsRegistry` counters — the source of
the online/offline parity guarantee checked by
``scripts/check_serve_parity.py``.
"""

from __future__ import annotations

import base64
import random
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.hashing import HashFamily
from ..core.tcbf import TemporalCountingBloomFilter
from ..obs.introspect import relay_max_counter
from ..obs.recorder import NULL_RECORDER
from ..obs.registry import MetricsRegistry
from ..pubsub.messages import Message
from ..pubsub.node import BsubNodeState
from ..pubsub.wire import (
    FilterRequest,
    Frame,
    FrameError,
    Hello,
    InterestAnnouncement,
    MessageBundle,
    RelayFilter,
    Subscribe,
)
from .session import BROKER_NODE_ID, SessionContext
from .spec import ServeSpec
from .state_shard import StateShardStore

__all__ = ["BrokerCore", "Dispatcher", "HandleResult", "ProtocolError"]

#: Fixed fan-out histogram edges (recipients per publish).
_FANOUT_EDGES = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0, 1000.0)
#: Fixed publish-processing latency edges, seconds.
_LATENCY_EDGES = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0,
)


class ProtocolError(Exception):
    """A session-fatal protocol violation (the session must be closed)."""


@dataclass
class HandleResult:
    """What one handled frame asks the transport layer to do."""

    #: (session_id, frame) pairs to encode and send.
    outbound: List[Tuple[int, Frame]] = field(default_factory=list)
    #: (session_id, reason) sessions the core wants closed (e.g. a
    #: stale connection superseded by a reconnect).
    close: List[Tuple[int, str]] = field(default_factory=list)
    #: JSON-able ops to broadcast to the other fleet workers (empty in
    #: the single-process broker) — see :meth:`BrokerCore.apply_peer_op`
    #: for the vocabulary.
    peer_casts: List[Dict] = field(default_factory=list)


class Dispatcher:
    """Frame-type -> handler-method dispatch table.

    The table is explicit (not ``getattr`` string magic) so adding a
    frame type without wiring a handler is an import-time error, and
    tests can introspect exactly which frames a core accepts.
    """

    def __init__(self, core: "BrokerCore"):
        self._handlers: Dict[type, Callable] = {
            Hello: core.on_hello,
            Subscribe: core.on_subscribe,
            InterestAnnouncement: core.on_interest_announcement,
            RelayFilter: core.on_relay_filter,
            FilterRequest: core.on_filter_request,
            MessageBundle: core.on_publish,
        }

    @property
    def frame_types(self) -> Tuple[type, ...]:
        return tuple(self._handlers)

    def dispatch(
        self, session_id: int, frame: Frame, result: HandleResult
    ) -> None:
        handler = self._handlers.get(type(frame))
        if handler is None:
            raise ProtocolError(
                f"no handler for frame type {type(frame).__name__}"
            )
        handler(session_id, frame, result)


@dataclass
class _SessionState:
    """Mutable per-connection bookkeeping (transport side)."""

    ctx: SessionContext
    frames_in: int = 0
    publishes: int = 0
    deliveries_out: int = 0


class BrokerCore:
    """Session, subscription, and matching state for one broker.

    Parameters
    ----------
    spec:
        The frozen :class:`~repro.serve.spec.ServeSpec`.
    registry:
        Live metrics registry (created if omitted).
    recorder:
        Trace recorder; the default :data:`~repro.obs.recorder.NULL_RECORDER`
        disables event emission at the usual near-zero cost.
    clock:
        Returns broker-relative seconds (monotonic, starting near 0).
        Injectable so unit tests control time exactly.
    worker_index / num_workers:
        Fleet identity.  Message ids are striped
        (``worker_index + num_workers * local_count``) so every worker
        mints globally unique ids without coordination; the defaults
        (``0`` / ``1``) reproduce the single-process id sequence
        ``0, 1, 2, ...`` exactly.  ``num_workers > 1`` also turns on
        the peer-cast protocol (subscription replication, cross-worker
        claim, publish relay).
    state_store:
        Optional :class:`~repro.serve.state_shard.StateShardStore`;
        when set, ``Subscribe`` persists the key set and ``Hello``
        lazily restores a node's durable subscriptions that this
        process has never seen (a restarted worker's reconnects).
    """

    def __init__(
        self,
        spec: ServeSpec,
        registry: Optional[MetricsRegistry] = None,
        recorder=NULL_RECORDER,
        clock: Optional[Callable[[], float]] = None,
        worker_index: int = 0,
        num_workers: int = 1,
        state_store: Optional[StateShardStore] = None,
    ):
        self.spec = spec
        if not 0 <= worker_index < num_workers:
            raise ValueError(
                f"worker_index {worker_index} out of range for "
                f"{num_workers} workers"
            )
        self.worker_index = worker_index
        self.num_workers = num_workers
        self.state_store = state_store
        self.registry = registry if registry is not None else MetricsRegistry()
        self.recorder = recorder
        if clock is None:
            origin = _time.monotonic()
            clock = lambda: _time.monotonic() - origin  # noqa: E731
        self.clock = clock
        self.family = HashFamily(
            num_hashes=spec.num_hashes, num_bits=spec.num_bits
        )
        self._df_per_s = spec.df_per_min / 60.0
        # The broker's own protocol node: its relay filter absorbs
        # every announcement/subscription, honouring spec.filter_spec.
        self.broker_state = BsubNodeState(
            node_id=BROKER_NODE_ID,
            interests=frozenset(),
            family=self.family,
            initial_value=spec.initial_value,
            decay_factor=self._df_per_s,
            copy_limit=0,
            start_time=self.clock(),
            filter_spec=spec.filter_spec,
        )
        self.dispatcher = Dispatcher(self)
        # -- durable state (survives disconnects) --
        self.subscriptions: Dict[int, FrozenSet[str]] = {}
        self.nodes: Dict[int, BsubNodeState] = {}
        self._key_index: Dict[str, Set[int]] = {}
        # -- connection state --
        self.sessions: Dict[int, _SessionState] = {}
        self.node_sessions: Dict[int, int] = {}
        self._published = 0
        self._sessions_closed = 0
        self._shut_down = False
        self._fault_rng = (
            random.Random(spec.faults.seed)
            if spec.faults is not None and spec.faults.channel_faults
            else None
        )
        self.registry.histogram("serve_fanout_recipients", _FANOUT_EDGES)
        self.registry.histogram("serve_publish_seconds", _LATENCY_EDGES)

    # -- small helpers ------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.registry.counter(name).inc(amount)

    def _advance_relay(self, now: float) -> None:
        if self._df_per_s > 0:
            self.broker_state.relay.advance(now)

    def _session(self, session_id: int) -> _SessionState:
        session = self.sessions.get(session_id)
        if session is None:
            raise ProtocolError(f"unknown session {session_id}")
        return session

    def _identified(self, session_id: int) -> _SessionState:
        session = self._session(session_id)
        if not session.ctx.identified:
            raise ProtocolError(
                "session must identify with Hello before other frames"
            )
        return session

    def _next_msg_id(self) -> int:
        """Globally unique message id, striped across the fleet.

        ``workers=1`` yields the historical ``0, 1, 2, ...`` sequence;
        an N-worker fleet interleaves (worker w mints ``w, w+N,
        w+2N, ...``) so ids never collide without any coordination.
        """
        index = self.worker_index + self.num_workers * self._published
        self._published += 1
        return index

    # -- connection lifecycle ----------------------------------------------

    def connect(self, session_id: int, peer: str) -> SessionContext:
        """Register an accepted connection; returns its fresh context.

        Raises :class:`ProtocolError` when ``max_sessions`` is reached
        (the transport layer closes the socket immediately).
        """
        if self._shut_down:
            raise ProtocolError("broker is shutting down")
        if (
            self.spec.max_sessions is not None
            and len(self.sessions) >= self.spec.max_sessions
        ):
            self._count("serve_sessions_refused_total")
            raise ProtocolError(
                f"session limit {self.spec.max_sessions} reached"
            )
        if session_id in self.sessions:
            raise ProtocolError(f"session id {session_id} already connected")
        ctx = SessionContext(
            session_id=session_id, peer=peer, connected_at=self.clock()
        )
        self.sessions[session_id] = _SessionState(ctx=ctx)
        self._count("serve_sessions_total")
        self.registry.gauge("serve_sessions_open").set(len(self.sessions))
        return ctx

    def disconnect(self, session_id: int, reason: str = "eof") -> None:
        """Drop a connection; durable subscription state survives.

        Emits the session's ``contact`` trace event (node <-> broker,
        duration = session lifetime) for identified sessions.
        """
        session = self.sessions.pop(session_id, None)
        if session is None:
            return
        now = self.clock()
        ctx = session.ctx
        if ctx.node_id is not None:
            if self.node_sessions.get(ctx.node_id) == session_id:
                del self.node_sessions[ctx.node_id]
            if self.recorder.enabled:
                self.recorder.emit(
                    "contact", t=now, a=ctx.node_id, b=BROKER_NODE_ID,
                    duration=now - ctx.connected_at,
                )
        self._sessions_closed += 1
        self._count("serve_sessions_closed_total")
        self._count(f"serve_close_{reason}_total")
        self.registry.gauge("serve_sessions_open").set(len(self.sessions))

    def handle_decode_error(
        self, session_id: int, error: FrameError
    ) -> None:
        """Account a session-fatal decode error (transport closes it)."""
        self._count("serve_decode_errors_total")
        self._count(f"serve_decode_error_{error.reason}_total")

    # -- frame entry point --------------------------------------------------

    def handle_frame(self, session_id: int, frame: Frame) -> HandleResult:
        """Dispatch one decoded inbound frame.

        Returns the transport actions (outbound frames, sessions to
        close).  Raises :class:`ProtocolError` for violations that must
        end *this* session; the transport layer counts and closes.
        """
        session = self._session(session_id)
        session.frames_in += 1
        self._count("serve_frames_total")
        self._count(f"serve_frames_{_frame_name(frame)}_total")
        result = HandleResult()
        if self._fault_rng is not None and self._drop_by_fault(session):
            return result
        self.dispatcher.dispatch(session_id, frame, result)
        return result

    def _drop_by_fault(self, session: _SessionState) -> bool:
        """Apply the spec's inbound channel faults (loss / corruption)."""
        faults = self.spec.faults
        draw = self._fault_rng.random()
        if draw < faults.frame_loss:
            cause = "loss"
        elif draw < faults.frame_loss + faults.corruption:
            cause = "corruption"
        else:
            return False
        self._count("serve_faults_dropped_total")
        if self.recorder.enabled:
            self.recorder.emit(
                "frame_dropped", t=self.clock(),
                src=session.ctx.node_id or 0, dst=BROKER_NODE_ID,
                size=0.0, cause=cause,
            )
        return True

    # -- handlers -----------------------------------------------------------

    def on_hello(
        self, session_id: int, frame: Hello, result: HandleResult
    ) -> None:
        session = self._session(session_id)
        now = self.clock()
        try:
            session.ctx = session.ctx.with_hello(frame.node_id, now)
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        stale = self.node_sessions.get(frame.node_id)
        if stale is not None and stale != session_id:
            # Latest wins: a reconnect supersedes a half-open session
            # (the old socket may be dead without a FIN ever arriving).
            result.close.append((stale, "superseded"))
        self.node_sessions[frame.node_id] = session_id
        if frame.node_id not in self.subscriptions:
            self._restore_subscription(frame.node_id)
        if self.num_workers > 1:
            # Cross-worker latest-wins: any peer holding an older
            # session for this node closes it on receipt.
            result.peer_casts.append({"op": "claim", "node": frame.node_id})
        self.registry.gauge("serve_nodes_known").set(len(self.subscriptions))
        result.outbound.append((
            session_id,
            Hello(
                node_id=BROKER_NODE_ID, is_broker=True,
                degree=len(self.sessions), time=now,
            ),
        ))

    def on_subscribe(
        self, session_id: int, frame: Subscribe, result: HandleResult
    ) -> None:
        session = self._identified(session_id)
        node_id = session.ctx.node_id
        now = self.clock()
        keys = frozenset(frame.keys)
        self._install_subscription(node_id, keys, now)
        self._absorb_keys(node_id, keys, now)
        self._count("serve_subscribes_total")
        if self.state_store is not None:
            self.state_store.save(node_id, keys, now)
        if self.num_workers > 1:
            # Replicate the durable subscription so every worker's
            # intended-recipient index covers the whole fleet.
            result.peer_casts.append(
                {"op": "sub", "node": node_id, "keys": sorted(keys)}
            )
        self.registry.gauge("serve_nodes_known").set(len(self.subscriptions))
        self.registry.gauge("serve_subscribed_keys").set(
            len(self._key_index)
        )

    def _install_subscription(
        self, node_id: int, keys: FrozenSet[str], now: float
    ) -> None:
        """Replace a node's durable subscription set in the local
        index (shared by local ``Subscribe``, peer replication, and
        state-store restore — only the local path adds relay merges,
        counters, and persistence on top)."""
        old = self.subscriptions.get(node_id, frozenset())
        for key in old - keys:
            bucket = self._key_index.get(key)
            if bucket is not None:
                bucket.discard(node_id)
                if not bucket:
                    del self._key_index[key]
        for key in keys - old:
            self._key_index.setdefault(key, set()).add(node_id)
        self.subscriptions[node_id] = keys
        # Durable per-node state via the existing node machinery: the
        # genuine filter and its Bloom projection back the "bloom"
        # matching mode, exactly as a simulated consumer's would.
        # Only that mode ever reads it (see :meth:`_match`), and the
        # rebuild is the single most expensive step of a subscribe —
        # under ``exact`` matching (the default) skipping it roughly
        # triples fleet connect throughput, since the mesh replays
        # every subscription onto every worker.
        if self.spec.matching == "bloom":
            self.nodes[node_id] = BsubNodeState(
                node_id=node_id,
                interests=keys,
                family=self.family,
                initial_value=self.spec.initial_value,
                decay_factor=self._df_per_s,
                copy_limit=0,
                start_time=now,
            )

    def _restore_subscription(self, node_id: int) -> None:
        """Lazily restore a node's durable subscriptions from the
        shard store on ``Hello`` (a restarted worker meeting an old
        client).  No counters or relay merges: the original
        ``Subscribe`` already accounted for those."""
        if self.state_store is None:
            return
        record = self.state_store.load(node_id)
        if record is None:
            return
        self._install_subscription(
            node_id, frozenset(record.keys), self.clock()
        )
        self._count("serve_state_restores_total")

    def restore_all_subscriptions(self) -> int:
        """Rebuild the full subscription index from the shard store
        (worker startup after a crash).  Returns records restored."""
        if self.state_store is None:
            return 0
        restored = 0
        now = self.clock()
        for record in self.state_store.load_all():
            self._install_subscription(
                record.node_id, frozenset(record.keys), now
            )
            restored += 1
        if restored:
            self._count("serve_state_restores_total", restored)
            self.registry.gauge("serve_nodes_known").set(
                len(self.subscriptions)
            )
            self.registry.gauge("serve_subscribed_keys").set(
                len(self._key_index)
            )
        return restored

    def _absorb_keys(
        self, src: int, keys: FrozenSet[str], now: float
    ) -> None:
        """A-merge exact keys into the broker relay (Sec. V-C)."""
        if not keys:
            return
        self._advance_relay(now)
        relay = self.broker_state.relay
        max_before = relay_max_counter(relay) if self.recorder.enabled else 0.0
        announce = getattr(relay, "announce", None)
        if announce is not None:
            announce(keys)
        else:
            announcement = TemporalCountingBloomFilter(
                family=self.family,
                initial_value=self.spec.initial_value,
                decay_factor=0.0,
                time=now,
            )
            announcement.insert_batch(sorted(keys))
            relay.a_merge(announcement)
        self._count("serve_a_merges_total")
        if self.recorder.enabled:
            ordered = sorted(keys)
            minima = [float(relay.min_counter(k)) for k in ordered]
            self.recorder.emit(
                "a_merge", t=now, kind="consumer",
                node=BROKER_NODE_ID, src=src,
                num_keys=len(ordered),
                min_key_counter_after=min(minima) if minima else 0.0,
                max_before=max_before,
                max_after=relay_max_counter(relay),
            )

    def on_interest_announcement(
        self, session_id: int, frame: InterestAnnouncement,
        result: HandleResult,
    ) -> None:
        session = self._identified(session_id)
        now = self.clock()
        self._advance_relay(now)
        relay = self.broker_state.relay
        merge = getattr(relay, "a_merge", None)
        self._count("serve_a_merges_total")
        if merge is None:
            # Zoo relays without a TCBF merge operand (exact/countBF)
            # absorb only exact Subscribe keys; the announcement is
            # counted but cannot be merged.
            self._count("serve_unmergeable_announcements_total")
            return
        max_before = relay_max_counter(relay) if self.recorder.enabled else 0.0
        merge(frame.filter)
        if self.recorder.enabled:
            self.recorder.emit(
                "a_merge", t=now, kind="consumer",
                node=BROKER_NODE_ID, src=session.ctx.node_id,
                num_keys=0,
                min_key_counter_after=0.0,
                max_before=max_before,
                max_after=relay_max_counter(relay),
            )

    def on_relay_filter(
        self, session_id: int, frame: RelayFilter, result: HandleResult
    ) -> None:
        session = self._identified(session_id)
        now = self.clock()
        self._advance_relay(now)
        relay = self.broker_state.relay
        merge = getattr(relay, "m_merge", None)
        self._count("serve_m_merges_total")
        if merge is None:
            self._count("serve_unmergeable_announcements_total")
            return
        max_before = relay_max_counter(relay) if self.recorder.enabled else 0.0
        merge(frame.filter)
        if self.recorder.enabled:
            self.recorder.emit(
                "m_merge", t=now,
                node=BROKER_NODE_ID, peer=session.ctx.node_id,
                max_before=max_before,
                max_peer=relay_max_counter(frame.filter),
                max_after=relay_max_counter(relay),
            )

    def on_filter_request(
        self, session_id: int, frame: FilterRequest, result: HandleResult
    ) -> None:
        session = self._identified(session_id)
        now = self.clock()
        self._count("serve_filter_requests_total")
        result.outbound.append((
            session.ctx.session_id,
            Hello(
                node_id=BROKER_NODE_ID, is_broker=True,
                degree=len(self.sessions), time=now,
            ),
        ))

    def on_publish(
        self, session_id: int, frame: MessageBundle, result: HandleResult
    ) -> None:
        session = self._identified(session_id)
        publisher = session.ctx.node_id
        now = self.clock()
        self._advance_relay(now)
        started = _time.perf_counter()
        session.publishes += len(frame.messages)
        for message, payload in zip(frame.messages, frame.payloads):
            index = self._next_msg_id()
            intended = self._intended(message.keys, publisher)
            self._count("serve_messages_total")
            self._count("serve_intended_pairs_total", len(intended))
            if self.recorder.enabled:
                self.recorder.emit(
                    "create", t=now, msg=index, node=publisher,
                    size=float(message.size_bytes),
                    ttl=float(message.ttl_s),
                    num_intended=len(intended),
                )
            recipients = self._match(message.keys, publisher, intended)
            self._deliver(
                result, index, message, payload, publisher, intended,
                recipients, now,
            )
            if self.num_workers > 1:
                # Relay to the peers: the intended set is stamped at
                # the origin (it already spans the replicated index),
                # so each peer just delivers to its own live sessions
                # and the per-worker parity counters stay summable.
                result.peer_casts.append({
                    "op": "pub",
                    "msg": index,
                    "publisher": publisher,
                    "keys": sorted(message.keys),
                    "created_at": message.created_at,
                    "ttl_s": message.ttl_s,
                    "size_bytes": message.size_bytes,
                    "intended": sorted(intended),
                    "payload": base64.b64encode(payload).decode("ascii"),
                })
        self.registry.histogram("serve_publish_seconds").observe(
            _time.perf_counter() - started
        )

    def _deliver(
        self,
        result: HandleResult,
        index: int,
        message: Message,
        payload: bytes,
        publisher: int,
        intended: FrozenSet[int],
        recipients: List[int],
        now: float,
    ) -> None:
        """Fan one publish out to locally connected recipients —
        shared by the local publish path and the peer relay, so the
        counters and trace events are identical on both."""
        self.registry.histogram("serve_fanout_recipients").observe(
            float(len(recipients))
        )
        for dst in recipients:
            dst_session = self.node_sessions[dst]
            self.sessions[dst_session].deliveries_out += 1
            is_intended = dst in intended
            self._count("serve_forwards_direct_total")
            self._count("serve_deliveries_total")
            self._count(
                "serve_deliveries_intended_total"
                if is_intended
                else "serve_deliveries_false_total"
            )
            if self.recorder.enabled:
                self.recorder.emit(
                    "forward", t=now, kind="direct", msg=index,
                    src=publisher, dst=dst,
                    size=float(message.size_bytes),
                    match=self.spec.matching,
                )
                self.recorder.emit(
                    "delivery", t=now, msg=index, node=dst,
                    intended=is_intended, cause="direct",
                )
            result.outbound.append((
                dst_session,
                MessageBundle((message,), (payload,)),
            ))

    # -- fleet peer protocol ------------------------------------------------

    def apply_peer_op(self, op: Dict) -> HandleResult:
        """Apply one op broadcast by another fleet worker.

        The vocabulary (all JSON-able dicts, produced in
        ``HandleResult.peer_casts``):

        * ``{"op": "sub", "node": n, "keys": [...]}`` — replicate a
          durable subscription into the local index (no counters or
          relay merges: the origin worker accounted for those).
        * ``{"op": "claim", "node": n}`` — the sender now owns node
          ``n``'s session; close any stale local one (latest wins,
          across processes).
        * ``{"op": "pub", "msg": id, "publisher": p, "keys": [...],
          "created_at": t, "ttl_s": ttl, "size_bytes": b,
          "intended": [...], "payload": b64}`` — deliver a publish
          originated on another worker to locally connected
          recipients; the intended set is the origin's ground truth,
          so forwards/deliveries counted here sum cleanly with the
          origin's parity counters.
        """
        result = HandleResult()
        kind = op.get("op")
        if kind == "sub":
            self._install_subscription(
                int(op["node"]),
                frozenset(str(k) for k in op["keys"]),
                self.clock(),
            )
            self._count("serve_peer_subs_total")
            self.registry.gauge("serve_nodes_known").set(
                len(self.subscriptions)
            )
            self.registry.gauge("serve_subscribed_keys").set(
                len(self._key_index)
            )
        elif kind == "claim":
            stale = self.node_sessions.get(int(op["node"]))
            if stale is not None:
                result.close.append((stale, "superseded"))
            self._count("serve_peer_claims_total")
        elif kind == "pub":
            self._apply_peer_publish(op, result)
        else:
            raise ProtocolError(f"unknown peer op {kind!r}")
        return result

    def _apply_peer_publish(self, op: Dict, result: HandleResult) -> None:
        """Deliver a relayed publish to this worker's sessions."""
        now = self.clock()
        message = Message(
            id=int(op["msg"]),
            keys=frozenset(str(k) for k in op["keys"]),
            source=int(op["publisher"]),
            created_at=float(op["created_at"]),
            ttl_s=float(op["ttl_s"]),
            size_bytes=int(op["size_bytes"]),
        )
        payload = base64.b64decode(op["payload"])
        intended = frozenset(int(n) for n in op["intended"])
        recipients = self._match(message.keys, message.source, intended)
        self._count("serve_peer_pubs_total")
        self._deliver(
            result, message.id, message, payload, message.source,
            intended, recipients, now,
        )

    # -- matching -----------------------------------------------------------

    def _intended(
        self, keys: FrozenSet[str], publisher: int
    ) -> FrozenSet[str]:
        """Ground-truth intended recipients (durable subs, any liveness)."""
        nodes: Set[int] = set()
        for key in keys:
            nodes |= self._key_index.get(key, set())
        nodes.discard(publisher)
        return frozenset(nodes)

    def _match(
        self,
        keys: FrozenSet[str],
        publisher: int,
        intended: FrozenSet[int],
    ) -> List[int]:
        """Connected consumers this publish is delivered to, sorted.

        ``exact``: the intended set filtered to live sessions — O(keys)
        via the key index, no false positives.  ``bloom``: every
        connected node's genuine Bloom filter is queried (the paper's
        Sec. V matching), so hash collisions can add false deliveries.
        """
        if self.spec.matching == "exact":
            return sorted(
                node for node in intended if node in self.node_sessions
            )
        matched = []
        for node, _sid in self.node_sessions.items():
            if node == publisher:
                continue
            state = self.nodes.get(node)
            if state is None:
                continue
            if any(key in state.genuine_bloom for key in keys):
                matched.append(node)
        return sorted(matched)

    # -- shutdown -----------------------------------------------------------

    def shutdown(self) -> Dict[str, object]:
        """Close out the run: final gauges, the ``sim_end`` event.

        The transport layer disconnects the remaining sessions *before*
        calling this, so the emitted trace ends cleanly.  Returns a
        small summary dict (CLI-facing).
        """
        self._shut_down = True
        now = self.clock()
        for session_id in sorted(self.sessions):
            self.disconnect(session_id, reason="shutdown")
        counters = self.parity_counters()
        intended_pairs = counters["intended_pairs"]
        ratio = (
            counters["deliveries_intended"] / intended_pairs
            if intended_pairs
            else 0.0
        )
        self.registry.gauge("serve_delivery_ratio").set(ratio)
        self.registry.gauge("serve_end_time_s").set(now)
        if self.recorder.enabled:
            self.recorder.emit(
                "sim_end", t=now,
                contacts=self._sessions_closed,
                messages=self._published,
            )
        return {
            "end_time_s": now,
            "sessions_served": self._sessions_closed,
            "messages": self._published,
            "deliveries": counters["deliveries_total"],
            "delivery_ratio": ratio,
        }

    # -- parity -------------------------------------------------------------

    def parity_counters(self) -> Dict[str, int]:
        """The live counters the offline analyzer must reproduce.

        ``bsub analyze`` over the broker's trace yields the same
        numbers under ``messages.created`` / ``messages.intended_pairs``
        / ``forwards.direct`` / ``deliveries.{total,intended,false}`` —
        asserted exactly by ``scripts/check_serve_parity.py`` and the
        socket test suite.
        """
        counter = self.registry.counter
        return {
            "messages_created": counter("serve_messages_total").value,
            "intended_pairs": counter("serve_intended_pairs_total").value,
            "forwards_direct": counter("serve_forwards_direct_total").value,
            "deliveries_total": counter("serve_deliveries_total").value,
            "deliveries_intended": counter(
                "serve_deliveries_intended_total"
            ).value,
            "deliveries_false": counter("serve_deliveries_false_total").value,
        }


def _frame_name(frame: Frame) -> str:
    """Registry-friendly lowercase frame name (``MessageBundle`` ->
    ``message_bundle``)."""
    name = type(frame).__name__
    return "".join(
        ("_" + ch.lower()) if ch.isupper() and i else ch.lower()
        for i, ch in enumerate(name)
    )
