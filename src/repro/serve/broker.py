"""The asyncio TCP broker daemon.

:class:`BrokerServer` owns everything transport: accepting sockets,
feeding each connection's bytes through a per-session
:class:`~repro.pubsub.wire.StreamDecoder`, enforcing the idle timeout,
writing outbound frames, and shutting down gracefully.  Every decoded
frame is handed to the transport-free :class:`~repro.serve.dispatcher.
BrokerCore`, which owns the pub-sub semantics — so this module contains
no protocol logic at all, only plumbing:

* **Partial reads are the normal case.**  A read may end mid-frame or
  carry several coalesced frames; the stream decoder buffers across
  reads and only ever yields whole frames.  EOF while the decoder is
  mid-frame is counted as a mid-frame disconnect (the peer died during
  a transfer).
* **A hostile peer cannot crash a session loop.**  Oversized declared
  lengths, unknown type bytes, and malformed bodies all surface as a
  fatal decode error: the session is counted and closed, the broker
  keeps serving.
* **Keepalive / idle timeout.**  Any inbound byte counts as activity;
  a session silent for ``spec.idle_timeout_s`` is closed.  Clients with
  nothing to say send a repeated ``Hello``.
* **Graceful shutdown.**  ``stop()`` stops accepting, closes every
  session (emitting its ``contact`` event), drains the session tasks,
  emits ``sim_end``, and flushes the trace sink — so the emitted trace
  is always complete and ``bsub analyze`` over it reproduces the live
  registry exactly.
* **Live metrics.**  When ``spec.metrics_port`` is set, a minimal HTTP
  responder routes ``GET /metrics`` to the registry's Prometheus text
  exposition and ``GET /healthz`` to a JSON liveness document; any
  other path is a 404 and anything but a well-formed GET a 400.
* **Live observability.**  ``spec.live`` subscribes a
  :class:`~repro.obs.live.LiveTailer` to the trace recorder's
  in-process event bus: the ``/metrics`` exposition grows ``live_*``
  rolling series, and ``stop()`` cross-checks the tailer's running
  totals against the dispatcher's parity counters
  (``live_parity_ok`` in the summary).

Run one with :func:`run_broker` (blocking, CLI-facing) or manage the
lifecycle yourself with ``await BrokerServer(spec).start()``.
"""

from __future__ import annotations

import asyncio
import json
import time as _time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..obs.live import LiveTailer
from ..obs.recorder import NULL_RECORDER, TraceRecorder
from ..obs.registry import MetricsRegistry
from ..pubsub.wire import Frame, StreamDecoder, encode_frame
from .dispatcher import BrokerCore, ProtocolError
from .eventloop import install_event_loop_policy
from .spec import ServeSpec
from .state_shard import StateShardStore

__all__ = [
    "BrokerServer",
    "run_broker",
    "parse_request_path",
    "http_response",
]


def parse_request_path(head: bytes) -> Optional[str]:
    """The URL path of a well-formed HTTP GET request head, else None.

    Only the request line is inspected (``GET <path> HTTP/1.x``); a
    query string is stripped.  Anything else — another method, a
    mangled request line — returns ``None`` and the caller answers 400.
    """
    line, _, _ = head.partition(b"\r\n")
    parts = line.split()
    if len(parts) != 3 or parts[0] != b"GET":
        return None
    try:
        target = parts[1].decode("ascii")
    except UnicodeDecodeError:
        return None
    if not target.startswith("/"):
        return None
    return target.split("?", 1)[0]


def http_response(
    status: int,
    body: bytes,
    content_type: str = "text/plain; charset=utf-8",
) -> bytes:
    """A complete ``Connection: close`` HTTP/1.1 response."""
    reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
        status, "OK"
    )
    return (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii") + body

#: Socket read size.  Large enough that a maximum-rate session rarely
#: needs two syscalls per frame batch, small enough to share fairly.
_READ_CHUNK = 1 << 16

#: Listen backlog.  The default (100) stalls mass connection ramps —
#: a fleet soak opens tens of thousands of sockets through one accept
#: queue — and a deeper backlog costs nothing when idle.
_LISTEN_BACKLOG = 4096


class BrokerServer:
    """One live broker: sockets in front, a :class:`BrokerCore` behind.

    Parameters
    ----------
    spec:
        The frozen :class:`~repro.serve.spec.ServeSpec`.  ``port`` (and
        ``metrics_port``) may be 0 to bind ephemerally; the bound ports
        are exposed as :attr:`port` / :attr:`metrics_port` after
        ``start()``.
    registry:
        Live metrics registry (created if omitted).
    recorder:
        Explicit trace recorder.  When omitted and ``spec.trace_path``
        is set, the broker opens that file and streams schema-v2 JSONL
        to it, closing it on ``stop()``.
    clock_origin:
        Monotonic instant that maps to broker time 0.  The fleet
        supervisor captures one origin and passes it to every worker
        (Linux ``CLOCK_MONOTONIC`` is system-wide), so all trace
        shards share a single timeline and the merged trace sorts
        correctly by ``t``.  Default: now.
    worker_index / num_workers / state_store:
        Fleet identity and durable store, forwarded to
        :class:`~repro.serve.dispatcher.BrokerCore`; ``num_workers > 1``
        also turns on ``SO_REUSEPORT`` on the listening socket.
    peer_send:
        Callback receiving each peer-cast op the core produces (the
        worker runtime broadcasts them over the fleet mesh); ``None``
        discards them (single-process).
    """

    def __init__(
        self,
        spec: ServeSpec,
        registry: Optional[MetricsRegistry] = None,
        recorder=None,
        clock_origin: Optional[float] = None,
        worker_index: int = 0,
        num_workers: int = 1,
        state_store: Optional[StateShardStore] = None,
        peer_send: Optional[Callable[[dict], None]] = None,
    ):
        self.spec = spec
        self.registry = registry if registry is not None else MetricsRegistry()
        self._trace_file = None
        if recorder is None:
            if spec.trace_path is not None:
                self._trace_file = open(spec.trace_path, "w")
                recorder = TraceRecorder(sink=self._trace_file)
            else:
                recorder = NULL_RECORDER
        self.recorder = recorder
        self.tailer: Optional[LiveTailer] = None
        if spec.live and isinstance(recorder, TraceRecorder):
            self.tailer = LiveTailer(registry=self.registry)
            recorder.subscribe(self.tailer.feed)
        origin = (
            clock_origin if clock_origin is not None else _time.monotonic()
        )
        self.core = BrokerCore(
            spec,
            registry=self.registry,
            recorder=recorder,
            clock=lambda: _time.monotonic() - origin,
            worker_index=worker_index,
            num_workers=num_workers,
            state_store=state_store,
        )
        self._worker_index = worker_index
        self._num_workers = num_workers
        self._peer_send = peer_send
        self._server: Optional[asyncio.AbstractServer] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._tasks: Set[asyncio.Task] = set()
        self._next_session = 1
        self._stopping = False
        self._summary: Optional[dict] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "BrokerServer":
        """Bind the listening socket(s); returns self for chaining."""
        self._server = await asyncio.start_server(
            self._on_client,
            host=self.spec.host,
            port=self.spec.port,
            backlog=_LISTEN_BACKLOG,
            # Fleet workers share one port; the kernel shards accepts.
            reuse_port=True if self._num_workers > 1 else None,
        )
        if self.spec.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_client,
                host=self.spec.host,
                port=self.spec.metrics_port,
            )
        return self

    @property
    def port(self) -> int:
        """The bound broker port (resolves ephemeral binds)."""
        assert self._server is not None, "broker not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """The bound metrics port, if a metrics endpoint is up."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def summary(self) -> Optional[dict]:
        """The shutdown summary once ``stop()`` has run."""
        return self._summary

    async def stop(self) -> dict:
        """Graceful shutdown; idempotent.  Returns the run summary."""
        if self._summary is not None:
            return self._summary
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        # Nudge every live session loop to finish, then drain them so
        # each runs its disconnect accounting before sim_end.
        for writer in list(self._writers.values()):
            writer.close()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self._summary = self.core.shutdown()
        if self.tailer is not None:
            # The tailer saw every emitted event (sim_end included by
            # now); its running totals must equal the dispatcher's own
            # parity counters — the zero-file-IO parity checkpoint.
            mismatches = self.tailer.check_parity(
                self.core.parity_counters()
            )
            self._summary["live_parity_ok"] = not mismatches
            if mismatches:
                self._summary["live_parity_mismatches"] = mismatches
            self._summary["live"] = self.tailer.snapshot()
        if self._trace_file is not None:
            self._trace_file.close()
            self._trace_file = None
        return self._summary

    async def serve_for(self, duration_s: Optional[float]) -> dict:
        """Serve for *duration_s* seconds (forever when ``None``), stop."""
        try:
            if duration_s is None:
                await asyncio.Event().wait()
            else:
                await asyncio.sleep(duration_s)
        finally:
            return await self.stop()  # noqa: B012

    # -- client sessions ----------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session_id = self._next_session
        self._next_session += 1
        peername = writer.get_extra_info("peername")
        peer = (
            f"{peername[0]}:{peername[1]}"
            if isinstance(peername, tuple) and len(peername) >= 2
            else str(peername)
        )
        try:
            self.core.connect(session_id, peer)
        except ProtocolError:
            writer.close()
            return
        self._writers[session_id] = writer
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        decoder = StreamDecoder(
            self.core.family,
            self.spec.initial_value,
            decay_factor=self.core._df_per_s,
            max_frame_bytes=self.spec.max_frame_bytes,
        )
        reason = "eof"
        try:
            reason = await self._session_loop(session_id, reader, decoder)
        except (ConnectionError, asyncio.IncompleteReadError):
            reason = "reset"
        except asyncio.CancelledError:
            reason = "shutdown" if self._stopping else "cancelled"
        finally:
            self._close_session(session_id, reason, decoder)

    async def _session_loop(
        self,
        session_id: int,
        reader: asyncio.StreamReader,
        decoder: StreamDecoder,
    ) -> str:
        """Read/decode/dispatch until the session ends; returns why."""
        while True:
            try:
                chunk = await asyncio.wait_for(
                    reader.read(_READ_CHUNK), timeout=self.spec.idle_timeout_s
                )
            except asyncio.TimeoutError:
                self.registry.counter("serve_idle_timeouts_total").inc()
                return "idle_timeout"
            if not chunk:
                if not decoder.at_boundary:
                    self.registry.counter(
                        "serve_midframe_disconnects_total"
                    ).inc()
                    return "midframe_eof"
                return "eof"
            result = decoder.feed(chunk, time=self.core.clock())
            for frame in result.frames:
                try:
                    handled = self.core.handle_frame(session_id, frame)
                except ProtocolError:
                    self.registry.counter("serve_protocol_errors_total").inc()
                    return "protocol_error"
                await self._apply(handled)
            if result.error is not None:
                self.core.handle_decode_error(session_id, result.error)
                return "decode_error"

    async def _apply(self, handled) -> None:
        """Carry out a HandleResult: sends first, then forced closes.

        Outbound frames are coalesced per target session — one
        ``write()`` of the joined encodings and one ``drain()`` per
        writer, instead of a write+drain syscall pair per frame.  A
        wide fan-out (one publish, hundreds of recipients) is the
        broker's hottest path, and the per-frame drain was most of it.
        """
        if handled.outbound:
            batches: Dict[int, List[bytes]] = {}
            for target, frame in handled.outbound:
                batches.setdefault(target, []).append(encode_frame(frame))
            for target, encoded in batches.items():
                await self._send_batch(target, encoded)
        for target, reason in handled.close:
            writer = self._writers.get(target)
            if writer is not None:
                # The target's own session loop sees EOF and accounts
                # the disconnect; superseded sessions must not keep the
                # node's delivery route.
                self.core.disconnect(target, reason=reason)
                self._writers.pop(target, None)
                writer.close()
        if handled.peer_casts and self._peer_send is not None:
            for op in handled.peer_casts:
                self._peer_send(op)

    async def _send(self, session_id: int, frame: Frame) -> None:
        await self._send_batch(session_id, [encode_frame(frame)])

    async def _send_batch(
        self, session_id: int, encoded: List[bytes]
    ) -> None:
        writer = self._writers.get(session_id)
        if writer is None or writer.is_closing():
            self.registry.counter("serve_send_drops_total").inc(len(encoded))
            return
        try:
            writer.write(b"".join(encoded) if len(encoded) > 1 else encoded[0])
            await writer.drain()
            self.registry.counter("serve_frames_out_total").inc(len(encoded))
        except ConnectionError:
            self.registry.counter("serve_send_drops_total").inc(len(encoded))

    async def apply_peer_op(self, op: dict) -> None:
        """Apply one fleet peer-cast and carry out its effects (the
        worker runtime calls this for every op received on the mesh)."""
        await self._apply(self.core.apply_peer_op(op))

    def _close_session(
        self, session_id: int, reason: str, decoder: StreamDecoder
    ) -> None:
        writer = self._writers.pop(session_id, None)
        if writer is not None:
            writer.close()
        self.registry.counter("serve_bytes_in_total").inc(decoder.bytes_fed)
        self.core.disconnect(session_id, reason=reason)

    # -- metrics endpoint ---------------------------------------------------

    async def _on_metrics_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP GET: /metrics, /healthz, 404 otherwise."""
        try:
            # Read the request head; the body of a GET is empty.
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            writer.close()
            return
        path = parse_request_path(head)
        if path is None:
            response = http_response(400, b"bad request\n")
        elif path == "/metrics":
            if self.tailer is not None:
                self.tailer.refresh_registry()
            response = http_response(
                200,
                self.registry.to_prom().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            response = http_response(
                200,
                json.dumps(self.healthz(), sort_keys=True).encode("utf-8")
                + b"\n",
                content_type="application/json",
            )
        else:
            response = http_response(404, b"not found\n")
        try:
            writer.write(response)
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    def healthz(self) -> dict:
        """The liveness document served on ``GET /healthz``."""
        return {
            "status": "ok" if not self._stopping else "stopping",
            "sessions_open": self.registry.gauge("serve_sessions_open").value,
            "live": self.tailer is not None,
            "workers": [{"worker": self._worker_index, "alive": True}],
        }


def run_broker(
    spec: ServeSpec,
    duration_s: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Blocking entry point: serve until *duration_s* (or Ctrl-C).

    Returns the shutdown summary dict.  This is what ``bsub serve``
    calls; library code embedding a broker should drive
    :class:`BrokerServer` inside its own event loop instead.

    ``spec.workers > 1`` hands off to the multi-process fleet
    supervisor (:func:`repro.serve.supervisor.run_fleet`) — same
    signature, same summary shape, plus per-worker detail.
    """
    if spec.workers > 1:
        from .supervisor import run_fleet

        return run_fleet(spec, duration_s, registry)
    install_event_loop_policy()

    async def _main() -> dict:
        server = BrokerServer(spec, registry=registry)
        await server.start()
        try:
            return await server.serve_for(duration_s)
        except (KeyboardInterrupt, asyncio.CancelledError):
            return await server.stop()

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return {"interrupted": True}


def parse_hostport(value: str) -> Tuple[str, int]:
    """``"host:port"`` -> tuple (CLI convenience)."""
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected host:port, got {value!r}")
    return host, int(port)
