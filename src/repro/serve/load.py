"""Asyncio load driver for the broker daemon.

Replays a synthetic pub-sub workload against a live
:class:`~repro.serve.broker.BrokerServer` over real sockets.  The
workload is planned *deterministically* from ``LoadSpec.seed`` before
the first socket opens, reusing the repository's existing generators:

* Interests and message keys are drawn from the Table-II
  :func:`~repro.workload.keys.twitter_trends_2009` distribution (the
  same keys every simulated experiment uses).
* Publish instants are drawn from the :mod:`repro.traces.synthetic`
  diurnal profiles (``flat`` / ``conference`` / ``campus``), compressed
  onto the driver's run window — so a 30 s soak exercises the same
  bursty arrival shape as a day-long simulated trace.

Each session is one asyncio task: connect, ``Hello``, ``Subscribe`` its
interests, then (for the publisher fraction) send ``MessageBundle``
frames at the planned instants while a shared
:class:`~repro.pubsub.wire.StreamDecoder` consumes deliveries.  All
sessions share one run clock, and publishers stamp ``created_at`` with
run-relative send time, so the driver measures true end-to-end
publish->delivery latency across sessions without clock games.

Chaos modes: when ``LoadSpec.faults`` is set, each planned publish may
be dropped (``frame_loss``), have one byte of its encoding flipped
(``corruption`` — the broker must count a decode error, not crash), or
be truncated mid-frame followed by a hard disconnect (``truncation`` —
the broker must count a mid-frame disconnect).  All draws come from a
per-node :class:`random.Random`, so a chaos run is reproducible.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..pubsub.messages import Message
from ..pubsub.wire import (
    Hello,
    MessageBundle,
    StreamDecoder,
    Subscribe,
    encode_frame,
)
from ..traces.synthetic import (
    CAMPUS_PROFILE,
    CONFERENCE_PROFILE,
    FLAT_PROFILE,
)
from ..workload.keys import KeyDistribution, twitter_trends_2009
from .session import BROKER_NODE_ID  # noqa: F401  (re-exported context)
from .spec import LoadSpec

__all__ = ["LoadDriver", "LoadReport", "run_load"]

_PROFILES = {
    "flat": FLAT_PROFILE,
    "conference": CONFERENCE_PROFILE,
    "campus": CAMPUS_PROFILE,
}

#: Sessions ramp up over at most this long (avoids a thundering-herd
#: connect burst at t=0 that measures the OS backlog, not the broker).
_MAX_RAMP_S = 2.0


@dataclass(frozen=True)
class _NodePlan:
    """One session's precomputed script."""

    node_id: int
    interests: Tuple[str, ...]
    #: (run-relative send time, message keys) per planned publish.
    publishes: Tuple[Tuple[float, Tuple[str, ...]], ...]


@dataclass(frozen=True)
class LoadReport:
    """What one load run measured (client side).

    Latency is true end-to-end: run-relative send stamp at the
    publisher to decode completion at the subscriber, across real
    sockets and the broker.
    """

    sessions_requested: int
    sessions_connected: int
    connect_failures: int
    frames_sent: int
    messages_published: int
    deliveries_received: int
    broker_hellos: int
    decode_errors: int
    bytes_received: int
    faults_injected: int
    duration_s: float
    latency_count: int
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_max_ms: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "sessions_requested": self.sessions_requested,
            "sessions_connected": self.sessions_connected,
            "connect_failures": self.connect_failures,
            "frames_sent": self.frames_sent,
            "messages_published": self.messages_published,
            "deliveries_received": self.deliveries_received,
            "broker_hellos": self.broker_hellos,
            "decode_errors": self.decode_errors,
            "bytes_received": self.bytes_received,
            "faults_injected": self.faults_injected,
            "duration_s": self.duration_s,
            "latency": {
                "count": self.latency_count,
                "mean_ms": self.latency_mean_ms,
                "p50_ms": self.latency_p50_ms,
                "p95_ms": self.latency_p95_ms,
                "max_ms": self.latency_max_ms,
            },
        }


class LoadDriver:
    """Plans and executes one load run against a live broker."""

    def __init__(
        self,
        spec: LoadSpec,
        distribution: Optional[KeyDistribution] = None,
    ):
        self.spec = spec
        self.distribution = distribution or twitter_trends_2009()
        self.plans = self._plan()
        # Encoded-frame caches: with Table-II interests most sessions
        # share a handful of distinct subscription sets, and every
        # publish carries the same zero payload — encode each once
        # instead of per session/tick (driver CPU belongs to the
        # broker under bench).
        self._subscribe_cache: Dict[Tuple[str, ...], bytes] = {}
        self._payload = b"\0" * spec.size_bytes
        # -- tallies (mutated by session tasks; single event loop, so
        # no locking needed) --
        self.sessions_connected = 0
        self.connect_failures = 0
        self.frames_sent = 0
        self.messages_published = 0
        self.deliveries_received = 0
        self.broker_hellos = 0
        self.decode_errors = 0
        self.bytes_received = 0
        self.faults_injected = 0
        self.latencies_s: List[float] = []

    # -- planning (pure, deterministic) ------------------------------------

    def _plan(self) -> List[_NodePlan]:
        spec = self.spec
        rng = np.random.default_rng(spec.seed)
        profile = _PROFILES[spec.arrival]
        num_publishers = spec.num_publishers
        plans: List[_NodePlan] = []
        for index in range(1, spec.sessions + 1):
            # node_offset shifts ids (not draws): several drivers can
            # share one broker with disjoint node-id ranges while each
            # replays its own deterministic workload.
            node_id = index + spec.node_offset
            interests = tuple(
                sorted(
                    set(
                        self.distribution.sample_many(
                            rng, spec.interests_per_node
                        )
                    )
                )
            )
            publishes: List[Tuple[float, Tuple[str, ...]]] = []
            if index <= num_publishers:
                count = max(
                    1, round(spec.publish_rate_per_s * spec.duration_s)
                )
                # The diurnal profiles shape a *day*; sample over one
                # canonical day and compress onto the run window so a
                # 30 s soak keeps the day's burst structure.
                day = profile.sample_times(count, 86400.0, rng)
                times = np.sort(day / 86400.0 * spec.duration_s * 0.9)
                for t in times:
                    keys = tuple(
                        sorted(
                            set(
                                self.distribution.sample_many(
                                    rng, spec.keys_per_message
                                )
                            )
                        )
                    )
                    publishes.append((float(t), keys))
            plans.append(
                _NodePlan(
                    node_id=node_id,
                    interests=interests,
                    publishes=tuple(publishes),
                )
            )
        return plans

    # -- execution ----------------------------------------------------------

    async def run(self) -> LoadReport:
        """Run every planned session; returns the aggregate report."""
        loop = asyncio.get_running_loop()
        t0 = loop.time()
        if self.spec.ramp_s is not None:
            ramp = min(self.spec.ramp_s, self.spec.duration_s)
        else:
            ramp = min(_MAX_RAMP_S, self.spec.duration_s / 5.0)
        tasks = [
            asyncio.ensure_future(
                self._session(plan, t0, ramp * i / max(1, len(self.plans)))
            )
            for i, plan in enumerate(self.plans)
        ]
        await asyncio.gather(*tasks, return_exceptions=True)
        wall = loop.time() - t0
        lat = sorted(self.latencies_s)

        def _pct(q: float) -> float:
            if not lat:
                return 0.0
            return lat[min(len(lat) - 1, int(q * len(lat)))] * 1000.0

        return LoadReport(
            sessions_requested=self.spec.sessions,
            sessions_connected=self.sessions_connected,
            connect_failures=self.connect_failures,
            frames_sent=self.frames_sent,
            messages_published=self.messages_published,
            deliveries_received=self.deliveries_received,
            broker_hellos=self.broker_hellos,
            decode_errors=self.decode_errors,
            bytes_received=self.bytes_received,
            faults_injected=self.faults_injected,
            duration_s=wall,
            latency_count=len(lat),
            latency_mean_ms=(
                sum(lat) / len(lat) * 1000.0 if lat else 0.0
            ),
            latency_p50_ms=_pct(0.50),
            latency_p95_ms=_pct(0.95),
            latency_max_ms=lat[-1] * 1000.0 if lat else 0.0,
        )

    async def _session(
        self, plan: _NodePlan, t0: float, ramp_delay: float
    ) -> None:
        spec = self.spec
        loop = asyncio.get_running_loop()
        if ramp_delay > 0:
            await asyncio.sleep(ramp_delay)
        try:
            reader, writer = await asyncio.open_connection(
                spec.host, spec.port,
                local_addr=(
                    (spec.bind_host, 0) if spec.bind_host else None
                ),
            )
        except OSError:
            self.connect_failures += 1
            return
        self.sessions_connected += 1
        chaos = (
            random.Random(spec.seed * 1000003 + plan.node_id)
            if spec.faults is not None and spec.faults.channel_faults
            else None
        )
        decoder = StreamDecoder(
            # Client-side decoding only sees Hello / MessageBundle, but
            # a shared family keeps any filter frame decodable too.
            family=self._family(),
            initial_value=spec.initial_value,
        )
        end_at = t0 + spec.duration_s
        reader_task = asyncio.ensure_future(
            self._consume(reader, decoder, t0, end_at)
        )
        try:
            writer.write(
                encode_frame(
                    Hello(
                        node_id=plan.node_id, is_broker=False,
                        degree=0, time=loop.time() - t0,
                    )
                )
            )
            self.frames_sent += 1
            if plan.interests:
                writer.write(self._encoded_subscribe(plan.interests))
                self.frames_sent += 1
            await writer.drain()
            truncated = await self._publish_loop(
                plan, writer, t0, end_at, chaos
            )
            if not truncated:
                remaining = end_at - loop.time()
                if remaining > 0:
                    await asyncio.sleep(remaining)
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            reader_task.cancel()
            try:
                await reader_task
            except (asyncio.CancelledError, ConnectionError, OSError):
                pass

    async def _publish_loop(
        self,
        plan: _NodePlan,
        writer: asyncio.StreamWriter,
        t0: float,
        end_at: float,
        chaos: Optional[random.Random],
    ) -> bool:
        """Send the planned bundles; True if chaos truncated the session."""
        spec = self.spec
        loop = asyncio.get_running_loop()
        payload = self._payload
        for send_at, keys in plan.publishes:
            delay = (t0 + send_at) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            if loop.time() >= end_at:
                break
            message = Message.create(
                keys=frozenset(keys),
                source=plan.node_id,
                created_at=loop.time() - t0,
                ttl_s=spec.ttl_s,
                size_bytes=spec.size_bytes,
            )
            encoded = encode_frame(MessageBundle((message,), (payload,)))
            if chaos is not None:
                draw = chaos.random()
                faults = spec.faults
                if draw < faults.frame_loss:
                    self.faults_injected += 1
                    continue
                if draw < faults.frame_loss + faults.corruption:
                    self.faults_injected += 1
                    index = chaos.randrange(len(encoded))
                    encoded = (
                        encoded[:index]
                        + bytes((encoded[index] ^ 0xFF,))
                        + encoded[index + 1:]
                    )
                elif draw < (
                    faults.frame_loss + faults.corruption + faults.truncation
                ):
                    self.faults_injected += 1
                    writer.write(encoded[: max(1, len(encoded) // 2)])
                    await writer.drain()
                    return True
            writer.write(encoded)
            await writer.drain()
            self.frames_sent += 1
            self.messages_published += 1
        return False

    async def _consume(
        self,
        reader: asyncio.StreamReader,
        decoder: StreamDecoder,
        t0: float,
        end_at: float,
    ) -> None:
        """Decode broker frames until the run window closes."""
        loop = asyncio.get_running_loop()
        while True:
            remaining = end_at - loop.time() + 0.5
            if remaining <= 0:
                return
            try:
                chunk = await asyncio.wait_for(
                    reader.read(1 << 16), timeout=remaining
                )
            except asyncio.TimeoutError:
                return
            if not chunk:
                return
            self.bytes_received += len(chunk)
            result = decoder.feed(chunk, time=loop.time() - t0)
            now = loop.time() - t0
            for frame in result.frames:
                if isinstance(frame, MessageBundle):
                    self.deliveries_received += len(frame.messages)
                    for message in frame.messages:
                        self.latencies_s.append(
                            max(0.0, now - message.created_at)
                        )
                elif isinstance(frame, Hello):
                    self.broker_hellos += 1
            if result.error is not None:
                self.decode_errors += 1
                return

    def _encoded_subscribe(self, interests: Tuple[str, ...]) -> bytes:
        encoded = self._subscribe_cache.get(interests)
        if encoded is None:
            encoded = self._subscribe_cache[interests] = encode_frame(
                Subscribe(interests)
            )
        return encoded

    def _family(self):
        from ..core.hashing import HashFamily

        return HashFamily(
            num_hashes=self.spec.num_hashes, num_bits=self.spec.num_bits
        )


def run_load(
    spec: LoadSpec, distribution: Optional[KeyDistribution] = None
) -> LoadReport:
    """Blocking entry point: run one load and return its report.

    This is what ``bsub load`` calls; embed :class:`LoadDriver` in your
    own event loop for programmatic use alongside a broker.
    """
    driver = LoadDriver(spec, distribution=distribution)
    return asyncio.run(driver.run())
