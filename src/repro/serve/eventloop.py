"""Event-loop policy selection for the serve layer.

``BSUB_EVENT_LOOP=uvloop`` opts the broker, fleet workers, and load
driver into `uvloop <https://github.com/MagicStack/uvloop>`_ when it
is importable; anything else (unset, ``asyncio``, or uvloop missing)
keeps the stdlib loop.  The selection is deliberately *soft*: uvloop
is an optional accelerator, never a dependency, so a bare container
runs identically with the flag set — it just reports
``asyncio (uvloop requested, not installed)`` in bench metadata
instead of silently differing.
"""

from __future__ import annotations

import asyncio
import os

__all__ = ["install_event_loop_policy", "event_loop_name"]

_ENV_VAR = "BSUB_EVENT_LOOP"


def _uvloop_requested() -> bool:
    return os.environ.get(_ENV_VAR, "").strip().lower() == "uvloop"


def install_event_loop_policy() -> str:
    """Honour ``BSUB_EVENT_LOOP``; returns the active loop name.

    Call once per process before ``asyncio.run`` (the fleet supervisor
    calls it in every worker it spawns).  Idempotent.
    """
    if _uvloop_requested():
        try:
            import uvloop  # type: ignore[import-not-found]
        except ImportError:
            return "asyncio (uvloop requested, not installed)"
        if not isinstance(
            asyncio.get_event_loop_policy(), uvloop.EventLoopPolicy
        ):
            asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
        return "uvloop"
    return "asyncio"


def event_loop_name() -> str:
    """What :func:`install_event_loop_policy` would (or did) select —
    for bench/report metadata, without mutating the policy."""
    if _uvloop_requested():
        try:
            import uvloop  # noqa: F401  type: ignore[import-not-found]
        except ImportError:
            return "asyncio (uvloop requested, not installed)"
        return "uvloop"
    return "asyncio"
