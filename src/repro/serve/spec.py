"""Typed specs for the live broker (`bsub serve`) and load driver (`bsub load`).

:class:`ServeSpec` and :class:`LoadSpec` follow the
:class:`repro.api.ExperimentSpec` conventions exactly: frozen
dataclasses validated in ``__post_init__``, a compact
``key=value,key=value`` :meth:`parse` grammar for the CLI, a
human-readable :meth:`describe`, and ``with_*`` derivation helpers.
The ``filter_spec`` field (a :mod:`repro.core.filter_zoo` spec string)
and the ``faults`` field (a :class:`repro.faults.FaultSpec`) are reused
verbatim from the experiment facade, and the paper-style geometry
aliases (``m``/``k``/``df``) resolve through
:data:`repro.core.params.SPEC_KEY_ALIASES` — the same spellings mean
the same thing in every spec string the project accepts.

Inside a ``parse()`` string the nested fault spec uses ``:`` for ``=``
and ``+`` for ``,`` (the outer grammar owns those characters), e.g.
``ServeSpec.parse("port=0,faults=loss:0.1+seed:3")``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

from ..core.params import canonical_spec_key
from ..faults.spec import FaultSpec

__all__ = ["ServeSpec", "LoadSpec", "ARRIVAL_PROFILES", "MATCHING_MODES"]

#: Delivery-matching modes for the broker.  ``exact`` keeps a
#: key -> subscribers index over the durable exact subscriptions
#: (the ``interest_encoding="raw"`` model — O(message keys) per
#: publish, no false positives, the mode that scales to 10k+
#: sessions); ``bloom`` queries every connected consumer's genuine
#: Bloom filter per publish (the paper-faithful Sec. V matching,
#: complete with Bloom false-positive deliveries).
MATCHING_MODES = ("exact", "bloom")

#: Arrival-pattern names accepted by :class:`LoadSpec`, mapping onto
#: the diurnal profiles of :mod:`repro.traces.synthetic`.
ARRIVAL_PROFILES = ("flat", "conference", "campus")


def _parse_fault_value(raw: str) -> FaultSpec:
    """Decode the nested fault grammar (``loss:0.1+crash:2``)."""
    return FaultSpec.parse(raw.replace("+", ",").replace(":", "="))


def _parse_kv(cls, text: str) -> Dict[str, object]:
    """Shared ``key=value,key=value`` scanner for both spec classes."""
    converters = cls._PARSE_FIELDS
    kwargs: Dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad spec item {part!r}: expected key=value")
        key, _, raw = part.partition("=")
        field_name = canonical_spec_key(key.strip())
        convert = converters.get(field_name)
        if convert is None:
            raise ValueError(
                f"unknown {cls.__name__} key {key.strip()!r}; expected one "
                f"of {sorted(converters)} (or aliases m/k/df)"
            )
        kwargs[field_name] = convert(raw.strip())
    return kwargs


def _opt_int(raw: str) -> Optional[int]:
    return None if raw.lower() in ("none", "off") else int(raw)


def _opt_str(raw: str) -> Optional[str]:
    return None if raw.lower() in ("none", "off") else raw


def _opt_float(raw: str) -> Optional[float]:
    return None if raw.lower() in ("none", "off") else float(raw)


def _parse_bool(raw: str) -> bool:
    lowered = raw.lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"expected a boolean, got {raw!r}")


@dataclass(frozen=True)
class ServeSpec:
    """Everything one broker daemon needs, as a single typed value.

    Attributes
    ----------
    host / port:
        TCP listen address; port 0 binds an ephemeral port (the bound
        port is reported by the running broker).
    metrics_port:
        When set, a plain-HTTP Prometheus exposition endpoint is served
        on this port (0 = ephemeral); ``None`` disables it.
    num_bits / num_hashes / initial_value / df_per_min:
        Filter geometry shared with every client — the TCBF frames on
        the wire only decode against the same
        :class:`~repro.core.hashing.HashFamily`.  ``df_per_min`` is the
        broker relay filter's decay factor (0 = no decay).
    matching:
        Delivery matching mode — see :data:`MATCHING_MODES`.
    filter_spec:
        :mod:`repro.core.filter_zoo` spec string selecting the broker's
        relay filter implementation (``None`` = the paper's single
        TCBF), reused verbatim from :class:`repro.api.ExperimentSpec`.
    faults:
        Optional :class:`~repro.faults.FaultSpec`.  The broker honours
        the channel-fault family — ``frame_loss`` / ``corruption``
        drop inbound frames after decode, deterministically seeded —
        for chaos-testing live clients; churn fields are inert here
        (the broker process is the node).
    idle_timeout_s:
        A session that stays silent this long is closed (clients keep
        sessions alive by re-sending ``Hello``, which doubles as the
        keepalive frame).
    max_frame_bytes:
        Per-session bound on a frame's declared body length; larger
        declarations are rejected as ``oversized_body`` and the
        session is dropped without buffering the claimed bytes.
    max_sessions:
        Accept limit; further connections are closed immediately
        (``None`` = unbounded).
    trace_path:
        When set, the broker streams its schema-v2 event trace to this
        JSONL file; ``bsub analyze`` on that file reproduces the
        broker's own registry counters exactly (the online/offline
        observability-parity guarantee).  With ``workers > 1`` each
        worker streams its own shard (``<path>.wN``) and the fleet
        supervisor merges them deterministically into ``trace_path``
        at shutdown.
    workers:
        Broker processes sharing the listen port via ``SO_REUSEPORT``.
        The default ``1`` keeps today's single-process asyncio broker
        byte-for-byte; ``N > 1`` runs an N-worker fleet under
        :class:`~repro.serve.supervisor.BrokerFleet` (one event loop
        and one :class:`~repro.serve.dispatcher.BrokerCore` per
        worker, durable state shared through ``state_dir``, publishes
        relayed worker-to-worker so fan-out spans the whole fleet).
    state_dir:
        Directory for the durable subscription store, sharded by
        node-id hash (see :mod:`repro.serve.state_shard`).  ``None``
        keeps durable state in-memory only (the single-process
        default); a fleet without an explicit ``state_dir`` gets a
        supervisor-managed temporary directory so a restarted worker
        can rebuild its subscription index.
    live:
        Attach a :class:`~repro.obs.live.LiveTailer` to the broker's
        trace recorder (requires ``trace_path``): the ``/metrics``
        exposition grows ``live_*`` rolling series, and shutdown
        cross-checks the tailer's running totals against the
        dispatcher's parity counters (``live_parity_ok`` in the
        summary).  Default off — the tailer costs one callback per
        event on the emit path.
    """

    host: str = "127.0.0.1"
    port: int = 7410
    metrics_port: Optional[int] = None
    num_bits: int = 256
    num_hashes: int = 4
    initial_value: float = 50.0
    df_per_min: float = 0.0
    matching: str = "exact"
    filter_spec: Optional[str] = None
    faults: Optional[FaultSpec] = None
    idle_timeout_s: float = 300.0
    max_frame_bytes: int = 1 << 20
    max_sessions: Optional[int] = None
    trace_path: Optional[str] = None
    workers: int = 1
    state_dir: Optional[str] = None
    live: bool = False

    _PARSE_FIELDS = {
        "host": str,
        "port": int,
        "metrics_port": _opt_int,
        "num_bits": int,
        "num_hashes": int,
        "initial_value": float,
        "df_per_min": float,
        "matching": str,
        "filter_spec": _opt_str,
        "faults": _parse_fault_value,
        "idle_timeout_s": float,
        "max_frame_bytes": int,
        "max_sessions": _opt_int,
        "trace_path": _opt_str,
        "workers": int,
        "state_dir": _opt_str,
        "live": _parse_bool,
    }

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.metrics_port is not None and not 0 <= self.metrics_port <= 65535:
            raise ValueError(
                f"metrics_port must be in [0, 65535], got {self.metrics_port}"
            )
        if self.num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {self.num_bits}")
        if self.num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {self.num_hashes}")
        if not (math.isfinite(self.initial_value) and self.initial_value > 0):
            raise ValueError(
                f"initial_value must be positive, got {self.initial_value}"
            )
        if not (math.isfinite(self.df_per_min) and self.df_per_min >= 0):
            raise ValueError(
                f"df_per_min must be >= 0, got {self.df_per_min}"
            )
        if self.matching not in MATCHING_MODES:
            raise ValueError(
                f"matching must be one of {MATCHING_MODES}, "
                f"got {self.matching!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec or None, "
                f"got {type(self.faults).__name__}"
            )
        if not (math.isfinite(self.idle_timeout_s) and self.idle_timeout_s > 0):
            raise ValueError(
                f"idle_timeout_s must be positive, got {self.idle_timeout_s}"
            )
        if self.max_frame_bytes < 64:
            raise ValueError(
                f"max_frame_bytes must be >= 64, got {self.max_frame_bytes}"
            )
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "ServeSpec":
        """Build a spec from ``key=value,key=value`` (the CLI surface).

        Field names and the ``m``/``k``/``df`` aliases are accepted;
        a nested fault spec uses ``:``/``+``, e.g.
        ``"port=0,matching=bloom,faults=loss:0.1"``.
        """
        return cls(**_parse_kv(cls, text))

    # -- derivation helpers -------------------------------------------------

    def with_port(self, port: int) -> "ServeSpec":
        return replace(self, port=port)

    def with_metrics_port(self, metrics_port: Optional[int]) -> "ServeSpec":
        return replace(self, metrics_port=metrics_port)

    def with_matching(self, matching: str) -> "ServeSpec":
        return replace(self, matching=matching)

    def with_faults(self, faults: Optional[FaultSpec]) -> "ServeSpec":
        return replace(self, faults=faults)

    def with_filter(self, filter_spec: Optional[str]) -> "ServeSpec":
        return replace(self, filter_spec=filter_spec)

    def with_trace(self, trace_path: Optional[str]) -> "ServeSpec":
        return replace(self, trace_path=trace_path)

    def with_workers(
        self, workers: int, state_dir: Optional[str] = None
    ) -> "ServeSpec":
        return replace(self, workers=workers, state_dir=state_dir)

    def with_live(self, live: bool = True) -> "ServeSpec":
        return replace(self, live=live)

    def describe(self) -> str:
        """Compact human-readable summary (CLI banner / report label)."""
        parts = [
            f"{self.host}:{self.port}",
            f"matching={self.matching}",
            f"m={self.num_bits}", f"k={self.num_hashes}",
            f"df={self.df_per_min:g}/min",
            f"idle={self.idle_timeout_s:g}s",
        ]
        if self.metrics_port is not None:
            parts.append(f"metrics:{self.metrics_port}")
        if self.filter_spec:
            parts.append(f"filter={self.filter_spec}")
        if self.faults is not None and self.faults.enabled:
            parts.append(f"faults[{self.faults.describe()}]")
        if self.trace_path:
            parts.append(f"trace={self.trace_path}")
        if self.workers > 1:
            parts.append(f"workers={self.workers}")
        if self.state_dir:
            parts.append(f"state={self.state_dir}")
        if self.live:
            parts.append("live")
        return " ".join(parts)


@dataclass(frozen=True)
class LoadSpec:
    """One live-traffic replay: sessions, workload shape, and chaos.

    Attributes
    ----------
    host / port:
        The broker to connect to.
    sessions:
        Concurrent client sessions to hold open; every session
        subscribes, a ``publisher_fraction`` slice also publishes.
    publisher_fraction:
        Fraction of sessions acting as producers (at least one).
    duration_s:
        How long the replay runs before sessions disconnect.
    publish_rate_per_s:
        Mean per-publisher message rate; inter-arrival times are drawn
        from the :mod:`repro.traces.synthetic` diurnal profile named by
        ``arrival`` (``flat`` = homogeneous Poisson).
    arrival:
        Arrival-pattern profile — see :data:`ARRIVAL_PROFILES`.
    interests_per_node / keys_per_message:
        Workload shape, drawn from the Table II Twitter-trend key
        distribution (:func:`repro.workload.keys.twitter_trends_2009`)
        exactly like the simulator's workload generator.
    ttl_s / size_bytes:
        Message TTL and payload size (the Twitter-scale 140 default).
    seed:
        Root seed for interests, arrival times, and key choices — the
        same spec replays the same workload.
    node_offset:
        Added to every session's node id (ids become
        ``node_offset + 1 .. node_offset + sessions``).  Lets several
        load-driver processes share one broker without colliding on
        node ids (a collision triggers the broker's latest-wins
        supersede and silently drops the older session).
    ramp_s:
        Connection-ramp length: session connects spread evenly over
        ``min(ramp_s, duration_s)`` seconds.  ``None`` keeps the
        historical ``min(2 s, duration/5)``; soaks with tens of
        thousands of sockets through one accept queue need a longer
        ramp.
    bind_host:
        Optional local source address for every client socket.
        A TCP connection is identified by its 4-tuple, so all
        loopback clients sharing one source IP cap out at the
        ephemeral port range (~28k concurrent connections to a
        single broker address on a default Linux host).  Sharded
        drivers pass a distinct ``127.0.0.x`` per process — the
        whole ``127.0.0.0/8`` block routes to loopback with no
        configuration — and each shard gets its own full port
        space.  ``None`` lets the kernel pick (single-shard
        default).
    num_bits / num_hashes / initial_value:
        Filter geometry; must match the broker's :class:`ServeSpec`
        for the optional filter frames to decode.
    faults:
        Optional client-side chaos, reusing
        :class:`~repro.faults.FaultSpec` verbatim: ``frame_loss``
        skips sending a frame, ``corruption`` flips bytes in an
        encoded frame before sending (the broker must count a decode
        error, never crash), ``truncation`` disconnects mid-frame.
        Churn fields are inert here.
    """

    host: str = "127.0.0.1"
    port: int = 7410
    sessions: int = 100
    publisher_fraction: float = 0.1
    duration_s: float = 10.0
    publish_rate_per_s: float = 1.0
    arrival: str = "flat"
    interests_per_node: int = 1
    keys_per_message: int = 1
    ttl_s: float = 3600.0
    size_bytes: int = 140
    seed: int = 7
    num_bits: int = 256
    num_hashes: int = 4
    initial_value: float = 50.0
    faults: Optional[FaultSpec] = None
    node_offset: int = 0
    ramp_s: Optional[float] = None
    bind_host: Optional[str] = None

    _PARSE_FIELDS = {
        "host": str,
        "port": int,
        "sessions": int,
        "publisher_fraction": float,
        "duration_s": float,
        "publish_rate_per_s": float,
        "arrival": str,
        "interests_per_node": int,
        "keys_per_message": int,
        "ttl_s": float,
        "size_bytes": int,
        "seed": int,
        "num_bits": int,
        "num_hashes": int,
        "initial_value": float,
        "faults": _parse_fault_value,
        "node_offset": int,
        "ramp_s": _opt_float,
        "bind_host": _opt_str,
    }

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.sessions < 1:
            raise ValueError(f"sessions must be >= 1, got {self.sessions}")
        if not 0.0 <= self.publisher_fraction <= 1.0:
            raise ValueError(
                f"publisher_fraction must be in [0, 1], "
                f"got {self.publisher_fraction}"
            )
        if not (math.isfinite(self.duration_s) and self.duration_s > 0):
            raise ValueError(
                f"duration_s must be positive, got {self.duration_s}"
            )
        if not (
            math.isfinite(self.publish_rate_per_s)
            and self.publish_rate_per_s > 0
        ):
            raise ValueError(
                f"publish_rate_per_s must be positive, "
                f"got {self.publish_rate_per_s}"
            )
        if self.arrival not in ARRIVAL_PROFILES:
            raise ValueError(
                f"arrival must be one of {ARRIVAL_PROFILES}, "
                f"got {self.arrival!r}"
            )
        if self.interests_per_node < 1:
            raise ValueError(
                f"interests_per_node must be >= 1, "
                f"got {self.interests_per_node}"
            )
        if self.keys_per_message < 1:
            raise ValueError(
                f"keys_per_message must be >= 1, got {self.keys_per_message}"
            )
        if not (math.isfinite(self.ttl_s) and self.ttl_s > 0):
            raise ValueError(f"ttl_s must be positive, got {self.ttl_s}")
        if self.size_bytes < 1:
            raise ValueError(f"size_bytes must be >= 1, got {self.size_bytes}")
        if self.num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {self.num_bits}")
        if self.num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {self.num_hashes}")
        if not (math.isfinite(self.initial_value) and self.initial_value > 0):
            raise ValueError(
                f"initial_value must be positive, got {self.initial_value}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec or None, "
                f"got {type(self.faults).__name__}"
            )
        if self.node_offset < 0:
            raise ValueError(
                f"node_offset must be >= 0, got {self.node_offset}"
            )
        if self.ramp_s is not None and not (
            math.isfinite(self.ramp_s) and self.ramp_s > 0
        ):
            raise ValueError(f"ramp_s must be positive, got {self.ramp_s}")
        if self.bind_host is not None and not self.bind_host.strip():
            raise ValueError("bind_host must be a non-empty address or None")

    @property
    def num_publishers(self) -> int:
        """Publisher count implied by the fraction (at least one)."""
        return max(1, round(self.sessions * self.publisher_fraction))

    # -- construction -------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "LoadSpec":
        """Build a spec from ``key=value,key=value`` (the CLI surface)."""
        return cls(**_parse_kv(cls, text))

    # -- derivation helpers -------------------------------------------------

    def with_sessions(self, sessions: int) -> "LoadSpec":
        return replace(self, sessions=sessions)

    def with_duration(self, duration_s: float) -> "LoadSpec":
        return replace(self, duration_s=duration_s)

    def with_seed(self, seed: int) -> "LoadSpec":
        return replace(self, seed=seed)

    def with_faults(self, faults: Optional[FaultSpec]) -> "LoadSpec":
        return replace(self, faults=faults)

    def with_target(self, host: str, port: int) -> "LoadSpec":
        return replace(self, host=host, port=port)

    def describe(self) -> str:
        """Compact human-readable summary (CLI banner / report label)."""
        parts = [
            f"{self.sessions} sessions -> {self.host}:{self.port}",
            f"{self.num_publishers} publishers"
            f"@{self.publish_rate_per_s:g}/s[{self.arrival}]",
            f"{self.duration_s:g}s",
            f"seed={self.seed}",
        ]
        if self.faults is not None and self.faults.enabled:
            parts.append(f"faults[{self.faults.describe()}]")
        return " ".join(parts)


# The class-level parse tables are implementation detail, not dataclass
# fields; make sure dataclasses agrees (a stray annotation would turn
# them into fields and break freezing).
assert "_PARSE_FIELDS" not in {f.name for f in fields(ServeSpec)}
assert "_PARSE_FIELDS" not in {f.name for f in fields(LoadSpec)}
