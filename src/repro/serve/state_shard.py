"""Durable subscription store, sharded by node-id hash.

The multi-worker broker fleet (:mod:`repro.serve.supervisor`) keeps
its session/matching state per-process, but the *durable* part — each
node's exact subscription key set — must survive a worker crash so the
restarted process can rebuild its index and a reconnecting session
lands on any worker with its subscriptions intact.  This module is
that durability layer: one small JSON record per node, grouped into
``shard_NN/`` directories by node-id hash so a directory never grows
beyond ``nodes / num_shards`` entries.

Writes are atomic (``tmp`` + ``os.replace``) and last-writer-wins,
which matches the broker's own latest-wins session semantics: two
workers racing on the same node id can only happen across a reconnect,
and the newer subscription is the one that must stick.  The single
process broker (``workers=1``) never touches this module unless a
``state_dir`` is configured explicitly.

The record format deliberately stores the raw key set rather than a
serialized filter: ``BsubNodeState`` is cheap to rebuild from keys
(the dispatcher already does exactly that on every ``Subscribe``), and
keys survive geometry changes where a serialized Bloom image would
not.
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Tuple

__all__ = ["StateShardStore", "SubscriptionRecord", "DEFAULT_NUM_SHARDS"]

logger = logging.getLogger(__name__)

#: Default shard-directory fan-out; 64 keeps directories small up to
#: ~1M nodes while staying trivial to `ls` by hand.
DEFAULT_NUM_SHARDS = 64


@dataclass(frozen=True)
class SubscriptionRecord:
    """One node's durable subscription state, as persisted."""

    node_id: int
    keys: Tuple[str, ...]
    updated_at: float

    def as_dict(self) -> dict:
        return {
            "node": self.node_id,
            "keys": list(self.keys),
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SubscriptionRecord":
        return cls(
            node_id=int(doc["node"]),
            keys=tuple(str(k) for k in doc["keys"]),
            updated_at=float(doc["updated_at"]),
        )


class StateShardStore:
    """On-disk per-node subscription records under ``root/shard_NN/``.

    Parameters
    ----------
    root:
        Store directory (created on first use).
    num_shards:
        Hash-shard fan-out; must match across every process sharing
        the store (it is part of the on-disk layout, so the supervisor
        passes one value to all workers).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  Corrupt
        records found during recovery are still treated as absent (the
        client resubscribes on reconnect) but are no longer silent:
        each one bumps the ``state_shard_corrupt_records`` counter and
        logs a warning, so operators can see recovery data loss.
    """

    def __init__(
        self,
        root: os.PathLike,
        num_shards: int = DEFAULT_NUM_SHARDS,
        registry=None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.root = Path(root)
        self.num_shards = num_shards
        self.registry = registry
        self.corrupt_records = 0

    def _note_corrupt(self, path: Path, error: Exception) -> None:
        """Account one unreadable record (data loss an operator should see)."""
        self.corrupt_records += 1
        if self.registry is not None:
            self.registry.counter("state_shard_corrupt_records").inc()
        logger.warning(
            "state shard record %s is corrupt (%s: %s); treating as absent "
            "— the node must resubscribe on reconnect",
            path, type(error).__name__, error,
        )

    # -- layout -------------------------------------------------------------

    def shard_of(self, node_id: int) -> int:
        """Deterministic shard index for a node (stable across runs:
        plain modulo, not the salted built-in ``hash``)."""
        return node_id % self.num_shards

    def _record_path(self, node_id: int) -> Path:
        shard = self.shard_of(node_id)
        return self.root / f"shard_{shard:02d}" / f"node_{node_id}.json"

    # -- io -----------------------------------------------------------------

    def save(
        self, node_id: int, keys, updated_at: float
    ) -> SubscriptionRecord:
        """Persist one node's subscription set atomically.

        The tmp name embeds the pid so two workers racing on the same
        node never scribble over each other's half-written tmp file;
        ``os.replace`` makes the final rename atomic (last writer
        wins).
        """
        record = SubscriptionRecord(
            node_id=node_id,
            keys=tuple(sorted(keys)),
            updated_at=updated_at,
        )
        path = self._record_path(node_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(record.as_dict(), sort_keys=True))
        os.replace(tmp, path)
        return record

    def load(self, node_id: int) -> Optional[SubscriptionRecord]:
        """The node's record, or ``None`` if it was never saved.

        A record caught mid-crash (unreadable JSON, wrong shape) is
        treated as absent — counted and logged via
        ``state_shard_corrupt_records``, never raised.
        """
        path = self._record_path(node_id)
        try:
            doc = json.loads(path.read_text())
            return SubscriptionRecord.from_dict(doc)
        except FileNotFoundError:
            return None
        except (
            json.JSONDecodeError, OSError, KeyError, TypeError, ValueError,
        ) as error:
            self._note_corrupt(path, error)
            return None

    def delete(self, node_id: int) -> bool:
        """Remove a node's record; ``True`` if one existed."""
        try:
            os.unlink(self._record_path(node_id))
            return True
        except FileNotFoundError:
            return False

    def load_all(self) -> Iterator[SubscriptionRecord]:
        """Every readable record, ordered by node id.

        Used by a restarted worker to rebuild its key index before
        accepting traffic; corrupt or half-written files are skipped
        exactly as in :meth:`load` — counted and logged, never raised.
        """
        records = []
        if not self.root.is_dir():
            return iter(())
        for shard_dir in sorted(self.root.glob("shard_*")):
            for path in shard_dir.glob("node_*.json"):
                try:
                    records.append(
                        SubscriptionRecord.from_dict(
                            json.loads(path.read_text())
                        )
                    )
                except (
                    json.JSONDecodeError, OSError, KeyError, TypeError,
                    ValueError,
                ) as error:
                    self._note_corrupt(path, error)
                    continue
        records.sort(key=lambda r: r.node_id)
        return iter(records)

    def __len__(self) -> int:
        return sum(1 for _ in self.load_all())
