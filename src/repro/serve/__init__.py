"""Live serving: an asyncio TCP broker daemon + load driver.

The simulator replays contacts; this package *serves* them: a real
socket daemon speaking the :mod:`repro.pubsub.wire` binary format,
with durable subscriptions, live Prometheus metrics, and schema-v2
trace emission that keeps ``bsub analyze`` exactly in agreement with
the broker's own registry.  See ``docs/serving.md``.

Layering (transport-free core under an asyncio shell):

* :class:`ServeSpec` / :class:`LoadSpec` — frozen typed configuration
  (the :mod:`repro.api` facade re-exports these).
* :class:`SessionContext` — the typed per-connection identity record.
* :class:`BrokerCore` + :class:`Dispatcher` — socket-free protocol
  engine (fully unit-testable).
* :class:`BrokerServer` / :func:`run_broker` — the asyncio daemon.
* :class:`BrokerFleet` / :func:`run_fleet` — the multi-process
  SO_REUSEPORT worker fleet (``ServeSpec(workers=N)``), with
  :class:`StateShardStore` as its shared durable subscription store.
* :class:`LoadDriver` / :func:`run_load` — the asyncio load driver.
"""

from .broker import BrokerServer, run_broker
from .dispatcher import BrokerCore, Dispatcher, HandleResult, ProtocolError
from .eventloop import event_loop_name, install_event_loop_policy
from .load import LoadDriver, LoadReport, run_load
from .session import BROKER_NODE_ID, SessionContext
from .spec import LoadSpec, ServeSpec
from .state_shard import StateShardStore, SubscriptionRecord
from .supervisor import BrokerFleet, run_fleet, sum_parity

__all__ = [
    "BROKER_NODE_ID",
    "BrokerCore",
    "BrokerFleet",
    "BrokerServer",
    "Dispatcher",
    "HandleResult",
    "LoadDriver",
    "LoadReport",
    "LoadSpec",
    "ProtocolError",
    "ServeSpec",
    "SessionContext",
    "StateShardStore",
    "SubscriptionRecord",
    "event_loop_name",
    "install_event_loop_policy",
    "run_broker",
    "run_fleet",
    "run_load",
    "sum_parity",
]
