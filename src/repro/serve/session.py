"""The typed per-connection session record.

A :class:`SessionContext` is the broker's *identity* view of one TCP
connection: who connected, when, and — once the peer introduced itself
with a ``Hello`` frame — which protocol node it is.  It is frozen, so
every lifecycle transition produces a new context via a ``with_*``
helper; the mutable transport machinery (stream decoder, writer,
activity clock) lives with the connection handler, never here.

Lifecycle::

    connect  ->  SessionContext(session_id, peer, connected_at)
    Hello    ->  ctx.with_hello(node_id, t)     # identified, keepalive
    Hello    ->  ctx.with_hello(node_id, t)     # later Hellos refresh
    close    ->  (context discarded; durable subscription state for
                  ctx.node_id survives in the BrokerCore)

A session must identify before any other frame is accepted — the
broker needs a node id to anchor durable subscriptions, delivery
routing, and trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["SessionContext", "BROKER_NODE_ID"]

#: The broker's own protocol node id.  Client ``Hello`` frames must
#: carry ids >= 1; 0 is reserved so trace events can always distinguish
#: the daemon from its peers.
BROKER_NODE_ID = 0


@dataclass(frozen=True)
class SessionContext:
    """Immutable identity snapshot of one live connection.

    Attributes
    ----------
    session_id:
        Broker-local connection counter (unique per accept, never
        reused within one broker lifetime).
    peer:
        Remote address as ``"host:port"`` (diagnostics only).
    connected_at:
        Broker-relative time of the accept, seconds.
    node_id:
        The protocol node id the peer claimed via ``Hello``; ``None``
        until the session identified.
    hello_at:
        Broker-relative time of the most recent ``Hello`` (the
        keepalive timestamp); ``None`` until identified.
    """

    session_id: int
    peer: str
    connected_at: float
    node_id: Optional[int] = None
    hello_at: Optional[float] = None

    @property
    def identified(self) -> bool:
        """True once the peer has introduced itself with ``Hello``."""
        return self.node_id is not None

    def with_hello(self, node_id: int, t: float) -> "SessionContext":
        """The context after a ``Hello`` frame at broker time *t*.

        A repeated ``Hello`` with the same id refreshes ``hello_at``
        (keepalive); changing the node id mid-session is a protocol
        error the caller must reject before getting here.
        """
        if node_id < 1:
            raise ValueError(
                f"client node ids must be >= 1 "
                f"({BROKER_NODE_ID} is the broker), got {node_id}"
            )
        if self.node_id is not None and node_id != self.node_id:
            raise ValueError(
                f"session {self.session_id} is bound to node "
                f"{self.node_id}; cannot rebind to {node_id}"
            )
        return replace(self, node_id=node_id, hello_at=t)
