"""The multi-process broker fleet: SO_REUSEPORT workers + supervisor.

``ServeSpec(workers=N)`` turns the single asyncio broker into a fleet:

* The supervisor (this module) spawns N worker processes.  Each binds
  the *same* TCP port with ``SO_REUSEPORT`` — the kernel shards
  accepted connections across the workers' listen sockets — and runs
  its own event loop + :class:`~repro.serve.dispatcher.BrokerCore`.
* Durable subscription state is shared through an on-disk
  :class:`~repro.serve.state_shard.StateShardStore` (hash-sharded,
  atomic per-node records), so a restarted worker rebuilds its index
  before accepting traffic and a reconnecting session keeps its
  subscriptions whichever worker it lands on.
* The workers gossip over a loopback mesh (newline-delimited JSON
  ops, one dialed link per ordered peer pair): durable subscriptions
  replicate to every worker, a ``Hello`` claims the node fleet-wide
  (cross-process latest-wins), and every publish is relayed so its
  fan-out spans sessions on all workers.  The intended-recipient set
  is stamped once, at the origin worker — per-worker parity counters
  sum to exactly what the analyzer reads off the merged trace.
* Each worker streams its own schema-v2 trace shard
  (``<trace_path>.wN``); on shutdown the supervisor merges them with
  :func:`repro.obs.recorder.merge_traces` into a single deterministic
  trace at ``spec.trace_path``.
* Supervision: a worker that dies is restarted (sessions reconnect
  and land on a survivor or the replacement, latest-wins); SIGTERM or
  SIGINT to the supervisor drains the whole fleet gracefully.
* Metrics: with ``spec.metrics_port`` set, each worker serves its own
  Prometheus endpoint on an ephemeral port (reported in the summary)
  and the supervisor serves the fleet-wide *aggregated* registry on
  ``spec.metrics_port`` (``GET /metrics``, summing worker snapshots on
  every scrape) plus ``GET /healthz`` reporting per-worker liveness.

The control plane is one duplex pipe per worker carrying small
``(kind, payload)`` tuples: ``ready`` / ``peers`` / ``metrics`` /
``stop`` / ``summary``.  Everything data-plane stays on sockets.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import os
import shutil
import signal
import tempfile
import time as _time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..obs.recorder import merge_traces
from ..obs.registry import MetricsRegistry
from .broker import BrokerServer, http_response, parse_request_path
from .eventloop import event_loop_name, install_event_loop_policy
from .spec import ServeSpec
from .state_shard import StateShardStore

__all__ = ["BrokerFleet", "run_fleet", "sum_parity"]

#: Seconds a worker gets to report its drain summary before the
#: supervisor gives up and terminates it.
_DRAIN_TIMEOUT_S = 30.0
#: Seconds to wait for a worker's ready report at (re)start.
_READY_TIMEOUT_S = 30.0
#: Backoff between peer-mesh redial attempts, seconds.
_REDIAL_BACKOFF_S = 0.2
#: Stream buffer limit for inbound peer-mesh links.  A ``pub`` op
#: carries the origin-stamped intended node set, which at city scale
#: is hundreds of kilobytes of JSON on one line — far past asyncio's
#: default 64 KiB readline() limit, which would kill the link with a
#: LimitOverrunError mid-run.
_MESH_STREAM_LIMIT = 64 * 1024 * 1024

_PARITY_KEYS = (
    "messages_created",
    "intended_pairs",
    "forwards_direct",
    "deliveries_total",
    "deliveries_intended",
    "deliveries_false",
)


def sum_parity(parities: List[Dict[str, int]]) -> Dict[str, int]:
    """Sum per-worker parity counters into the fleet totals the merged
    trace's analyzer output must match exactly."""
    return {
        key: sum(p.get(key, 0) for p in parities) for key in _PARITY_KEYS
    }


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _PeerMesh:
    """Worker-to-worker op transport: one loopback listener, one
    dialed send-only link per peer, newline-delimited JSON.

    ``broadcast`` is synchronous (called from the broker's dispatch
    path) and only enqueues; per-peer sender tasks own the sockets and
    reconnect with backoff when a peer restarts on a new port.
    """

    def __init__(self, worker_index: int, host: str, on_op):
        self.worker_index = worker_index
        self.host = host
        self._on_op = on_op  # async callable(dict)
        self._server: Optional[asyncio.AbstractServer] = None
        self._queues: Dict[int, asyncio.Queue] = {}
        self._senders: Dict[int, asyncio.Task] = {}
        self._peer_ports: Dict[int, int] = {}
        self._closing = False

    async def listen(self) -> int:
        self._server = await asyncio.start_server(
            self._on_peer_connect, host=self.host, port=0,
            limit=_MESH_STREAM_LIMIT,
        )
        return self._server.sockets[0].getsockname()[1]

    def set_peers(self, mesh_ports: List[Optional[int]]) -> None:
        """(Re)wire the outbound links from an index-aligned port list
        (``None`` marks self and not-yet-started workers)."""
        for peer, port in enumerate(mesh_ports):
            if peer == self.worker_index or port is None:
                continue
            if self._peer_ports.get(peer) == port:
                continue
            self._peer_ports[peer] = port
            if peer not in self._queues:
                self._queues[peer] = asyncio.Queue()
            sender = self._senders.get(peer)
            if sender is not None:
                sender.cancel()
            self._senders[peer] = asyncio.ensure_future(
                self._sender_loop(peer)
            )

    def broadcast(self, op: dict) -> None:
        line = json.dumps(op, separators=(",", ":")) + "\n"
        for queue in self._queues.values():
            queue.put_nowait(line)

    async def _sender_loop(self, peer: int) -> None:
        queue = self._queues[peer]
        writer: Optional[asyncio.StreamWriter] = None
        pending: Optional[str] = None
        try:
            while not self._closing:
                if writer is None:
                    try:
                        _, writer = await asyncio.open_connection(
                            self.host, self._peer_ports[peer]
                        )
                    except OSError:
                        await asyncio.sleep(_REDIAL_BACKOFF_S)
                        continue
                if pending is None:
                    pending = await queue.get()
                try:
                    writer.write(pending.encode("utf-8"))
                    await writer.drain()
                    pending = None
                except (ConnectionError, OSError):
                    writer.close()
                    writer = None
        except asyncio.CancelledError:
            # Replaced after a peer restart: hand the in-flight op to
            # the successor sender rather than dropping it.
            if pending is not None:
                queue.put_nowait(pending)
            raise

    async def _on_peer_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                await self._on_op(json.loads(line))
        except (ConnectionError, ValueError):
            # ValueError covers both malformed JSON and a line
            # overrunning even the raised stream limit: drop the link
            # (the sender redials) instead of leaving an
            # unhandled-exception stack in the logs.
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels live inbound links; exit quietly so
            # the streams completion callback doesn't log the stack.
            pass
        finally:
            writer.close()

    async def close(self) -> None:
        self._closing = True
        for sender in self._senders.values():
            sender.cancel()
        if self._senders:
            await asyncio.gather(
                *self._senders.values(), return_exceptions=True
            )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


def _worker_main(worker_index: int, spec: ServeSpec, conn, origin: float):
    """Entry point of one fleet worker process (spawn target)."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # supervisor drives drain
    install_event_loop_policy()
    try:
        asyncio.run(_worker_async(worker_index, spec, conn, origin))
    except (KeyboardInterrupt, EOFError, BrokenPipeError):
        pass


async def _worker_async(
    worker_index: int, spec: ServeSpec, conn, origin: float
) -> None:
    loop = asyncio.get_running_loop()
    registry = MetricsRegistry()
    # Store and broker share one registry so shard-store health
    # counters (corrupt records seen during recovery) surface on the
    # same /metrics the broker serves.
    store = StateShardStore(spec.state_dir, registry=registry)
    server = BrokerServer(
        spec,
        registry=registry,
        clock_origin=origin,
        worker_index=worker_index,
        num_workers=spec.workers,
        state_store=store,
    )
    mesh = _PeerMesh(worker_index, spec.host, server.apply_peer_op)
    server._peer_send = mesh.broadcast
    # A restarted worker rebuilds the fleet-wide subscription index
    # from the shard store before it accepts a single connection.
    server.core.restore_all_subscriptions()
    mesh_port = await mesh.listen()
    await server.start()

    inbox: asyncio.Queue = asyncio.Queue()

    def _pump_control() -> None:
        try:
            while conn.poll():
                inbox.put_nowait(conn.recv())
        except (EOFError, OSError):
            # Supervisor died: drain and exit rather than orphan.
            inbox.put_nowait(("stop", {}))
            loop.remove_reader(conn.fileno())

    loop.add_reader(conn.fileno(), _pump_control)
    conn.send((
        "ready",
        {
            "worker": worker_index,
            "pid": os.getpid(),
            "port": server.port,
            "mesh_port": mesh_port,
            "metrics_port": server.metrics_port,
            "restored": len(server.core.subscriptions),
            "event_loop": event_loop_name(),
        },
    ))

    while True:
        kind, payload = await inbox.get()
        if kind == "peers":
            mesh.set_peers(payload["mesh_ports"])
        elif kind == "metrics":
            conn.send(("metrics", server.registry.to_dict()))
        elif kind == "stop":
            break
    loop.remove_reader(conn.fileno())
    summary = await server.stop()
    await mesh.close()
    try:
        conn.send((
            "summary",
            {
                "worker": worker_index,
                "summary": summary,
                "parity": server.core.parity_counters(),
                "metrics": server.registry.to_dict(),
            },
        ))
    except (BrokenPipeError, OSError):
        pass


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------


@dataclass
class _Worker:
    """Supervisor-side handle on one worker process."""

    index: int
    proc: mp.process.BaseProcess
    conn: object
    ready: Optional[dict] = None
    result: Optional[dict] = None
    restarts: int = 0


class BrokerFleet:
    """Supervisor for an N-worker SO_REUSEPORT broker fleet.

    Drive it inside an event loop (tests, embedders)::

        fleet = await BrokerFleet(spec).start()
        ...  # clients connect to fleet.port
        summary = await fleet.stop()

    or use the blocking :func:`run_fleet` (what ``bsub serve`` calls
    for ``workers > 1``).  ``stop()`` drains every worker, merges the
    trace shards, and returns the aggregated summary.
    """

    def __init__(
        self, spec: ServeSpec, registry: Optional[MetricsRegistry] = None
    ):
        if spec.workers < 2:
            raise ValueError(
                "BrokerFleet needs workers >= 2; use BrokerServer for one"
            )
        self.spec = spec
        self.registry = registry
        self._ctx = mp.get_context("spawn")
        self._origin = _time.monotonic()
        self._workers: List[_Worker] = []
        self._owns_state_dir = spec.state_dir is None
        self._state_dir = (
            spec.state_dir
            if spec.state_dir is not None
            else tempfile.mkdtemp(prefix="bsub-fleet-state-")
        )
        self._port: Optional[int] = None
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        self._inboxes: Dict[int, Dict[str, asyncio.Queue]] = {}
        self._stopping = False
        self._summary: Optional[dict] = None

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> "BrokerFleet":
        """Spawn the workers, wire the mesh, start aggregated metrics."""
        # Worker 0 resolves an ephemeral spec.port for everyone else.
        first = self._spawn(0, port=self.spec.port)
        self._workers.append(first)
        await self._await_ready(first)
        self._port = first.ready["port"]
        for index in range(1, self.spec.workers):
            self._workers.append(self._spawn(index, port=self._port))
        for worker in self._workers[1:]:
            await self._await_ready(worker)
        self._broadcast_peers()
        loop = asyncio.get_running_loop()
        for worker in self._workers:
            self._watch_sentinel(loop, worker)
        if self.spec.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._on_metrics_client,
                host=self.spec.host,
                port=self.spec.metrics_port,
            )
        return self

    @property
    def port(self) -> int:
        """The shared SO_REUSEPORT broker port."""
        assert self._port is not None, "fleet not started"
        return self._port

    @property
    def metrics_port(self) -> Optional[int]:
        """The aggregated metrics port, if exposition is enabled."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def worker_pids(self) -> List[int]:
        return [w.proc.pid for w in self._workers]

    @property
    def summary(self) -> Optional[dict]:
        return self._summary

    async def serve_for(self, duration_s: Optional[float]) -> dict:
        """Serve for *duration_s* seconds (forever when ``None``), stop."""
        try:
            if duration_s is None:
                await asyncio.Event().wait()
            else:
                await asyncio.sleep(duration_s)
        finally:
            return await self.stop()  # noqa: B012

    async def stop(self) -> dict:
        """Drain every worker, merge trace shards, aggregate. Idempotent."""
        if self._summary is not None:
            return self._summary
        self._stopping = True
        loop = asyncio.get_running_loop()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
        for worker in self._workers:
            self._unwatch_sentinel(loop, worker)
            try:
                worker.conn.send(("stop", {}))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            summaries = self._inboxes[worker.index]["summary"]
            if not worker.proc.is_alive() and summaries.empty():
                # Died without draining (e.g. group-wide SIGKILL);
                # don't hold the whole drain for its timeout.
                worker.result = None
                self._detach(loop, worker)
                continue
            try:
                worker.result = await asyncio.wait_for(
                    summaries.get(), timeout=_DRAIN_TIMEOUT_S
                )
            except (asyncio.TimeoutError, EOFError):
                worker.result = None
            self._detach(loop, worker)
            await loop.run_in_executor(None, worker.proc.join, 5.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
        self._summary = self._aggregate()
        if self._owns_state_dir:
            shutil.rmtree(self._state_dir, ignore_errors=True)
        return self._summary

    # -- crash supervision --------------------------------------------------

    def _watch_sentinel(self, loop, worker: _Worker) -> None:
        loop.add_reader(
            worker.proc.sentinel, self._on_worker_exit, worker
        )

    def _unwatch_sentinel(self, loop, worker: _Worker) -> None:
        try:
            loop.remove_reader(worker.proc.sentinel)
        except (OSError, ValueError):
            pass

    def _on_worker_exit(self, worker: _Worker) -> None:
        """A worker died outside a drain: restart it in place."""
        loop = asyncio.get_running_loop()
        self._unwatch_sentinel(loop, worker)
        if self._stopping:
            return
        self._detach(loop, worker)
        replacement = self._spawn(worker.index, port=self._port)
        replacement.restarts = worker.restarts + 1
        self._workers[worker.index] = replacement

        async def _rewire() -> None:
            await self._await_ready(replacement)
            self._watch_sentinel(loop, replacement)
            self._broadcast_peers()

        asyncio.ensure_future(_rewire())

    def _detach(self, loop, worker: _Worker) -> None:
        try:
            loop.remove_reader(worker.conn.fileno())
        except (OSError, ValueError):
            pass
        try:
            worker.conn.close()
        except OSError:
            pass

    # -- worker plumbing ----------------------------------------------------

    def _worker_spec(self, index: int, port: int) -> ServeSpec:
        return replace(
            self.spec,
            port=port,
            state_dir=self._state_dir,
            # Workers expose their own metrics ephemerally; the
            # supervisor owns the aggregated spec.metrics_port.
            metrics_port=0 if self.spec.metrics_port is not None else None,
            trace_path=(
                f"{self.spec.trace_path}.w{index}"
                if self.spec.trace_path is not None
                else None
            ),
        )

    def _spawn(self, index: int, port: int) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                index,
                self._worker_spec(index, port),
                child_conn,
                self._origin,
            ),
            name=f"bsub-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        worker = _Worker(index=index, proc=proc, conn=parent_conn)
        self._inboxes[index] = {
            kind: asyncio.Queue() for kind in ("ready", "metrics", "summary")
        }
        asyncio.get_running_loop().add_reader(
            parent_conn.fileno(), self._pump_worker, worker
        )
        return worker

    def _pump_worker(self, worker: _Worker) -> None:
        try:
            while worker.conn.poll():
                kind, payload = worker.conn.recv()
                queues = self._inboxes[worker.index]
                if kind in queues:
                    queues[kind].put_nowait(payload)
        except (EOFError, OSError):
            self._detach(asyncio.get_running_loop(), worker)

    async def _await_ready(self, worker: _Worker) -> None:
        worker.ready = await asyncio.wait_for(
            self._inboxes[worker.index]["ready"].get(),
            timeout=_READY_TIMEOUT_S,
        )

    def _broadcast_peers(self) -> None:
        mesh_ports: List[Optional[int]] = [
            w.ready["mesh_port"] if w.ready is not None else None
            for w in self._workers
        ]
        for worker in self._workers:
            try:
                worker.conn.send(("peers", {"mesh_ports": mesh_ports}))
            except (BrokenPipeError, OSError):
                pass

    # -- aggregated metrics -------------------------------------------------

    async def scrape_metrics(self) -> MetricsRegistry:
        """One aggregated snapshot: the sum of every live worker's
        registry (dead/unresponsive workers are skipped)."""
        merged = MetricsRegistry()
        for worker in self._workers:
            try:
                worker.conn.send(("metrics", {}))
                snapshot = await asyncio.wait_for(
                    self._inboxes[worker.index]["metrics"].get(), timeout=5.0
                )
            except (asyncio.TimeoutError, BrokenPipeError, OSError):
                continue
            merged.merge_snapshot(snapshot)
        return merged

    async def _on_metrics_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Answer one HTTP GET: /metrics (aggregated), /healthz, 404."""
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=5.0
            )
        except (
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            writer.close()
            return
        path = parse_request_path(head)
        if path is None:
            response = http_response(400, b"bad request\n")
        elif path == "/metrics":
            merged = await self.scrape_metrics()
            response = http_response(
                200,
                merged.to_prom().encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/healthz":
            response = http_response(
                200,
                json.dumps(self.healthz(), sort_keys=True).encode("utf-8")
                + b"\n",
                content_type="application/json",
            )
        else:
            response = http_response(404, b"not found\n")
        try:
            writer.write(response)
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()

    def healthz(self) -> dict:
        """Fleet liveness: per-worker alive/pid/restarts, overall status."""
        workers = [
            {
                "worker": w.index,
                "alive": w.proc.is_alive(),
                "pid": w.proc.pid,
                "restarts": w.restarts,
            }
            for w in self._workers
        ]
        all_alive = all(w["alive"] for w in workers)
        return {
            "status": (
                "stopping"
                if self._stopping
                else ("ok" if all_alive else "degraded")
            ),
            "workers": workers,
        }

    # -- aggregation --------------------------------------------------------

    def _aggregate(self) -> dict:
        results = [w.result for w in self._workers if w.result is not None]
        parity = sum_parity([r["parity"] for r in results])
        if self.registry is not None:
            for result in results:
                self.registry.merge_snapshot(result["metrics"])
        merged_events = None
        if self.spec.trace_path is not None:
            shards = [
                f"{self.spec.trace_path}.w{w.index}"
                for w in self._workers
                if os.path.exists(f"{self.spec.trace_path}.w{w.index}")
            ]
            merged_events = merge_traces(shards, self.spec.trace_path)
        intended = parity["intended_pairs"]
        live_parity_ok = None
        if self.spec.live:
            live_parity_ok = bool(results) and all(
                r["summary"].get("live_parity_ok", False) for r in results
            )
        return {
            "workers": self.spec.workers,
            "live_parity_ok": live_parity_ok,
            "port": self._port,
            "event_loop": event_loop_name(),
            "end_time_s": max(
                (r["summary"]["end_time_s"] for r in results), default=0.0
            ),
            "sessions_served": sum(
                r["summary"]["sessions_served"] for r in results
            ),
            "messages": sum(r["summary"]["messages"] for r in results),
            "deliveries": parity["deliveries_total"],
            "delivery_ratio": (
                parity["deliveries_intended"] / intended if intended else 0.0
            ),
            "parity": parity,
            "restarts": sum(w.restarts for w in self._workers),
            "merged_trace_events": merged_events,
            "per_worker": [
                {
                    "worker": w.index,
                    "restarts": w.restarts,
                    "metrics_port": (
                        w.ready.get("metrics_port") if w.ready else None
                    ),
                    "summary": w.result["summary"] if w.result else None,
                    "parity": w.result["parity"] if w.result else None,
                }
                for w in self._workers
            ],
        }


def run_fleet(
    spec: ServeSpec,
    duration_s: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Blocking fleet entry point (the ``workers > 1`` arm of
    :func:`repro.serve.broker.run_broker`).

    SIGTERM and SIGINT both drain the whole fleet gracefully; the
    return value is the aggregated summary (per-worker summaries under
    ``per_worker``, fleet parity counters under ``parity``).
    """
    install_event_loop_policy()

    async def _main() -> dict:
        fleet = BrokerFleet(spec, registry=registry)
        await fleet.start()
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except (NotImplementedError, RuntimeError):
                pass

        async def _stopper() -> None:
            await stop_requested.wait()

        waiter = asyncio.ensure_future(_stopper())
        sleeper: Optional[asyncio.Task] = None
        try:
            if duration_s is None:
                await waiter
            else:
                sleeper = asyncio.ensure_future(asyncio.sleep(duration_s))
                await asyncio.wait(
                    [waiter, sleeper], return_when=asyncio.FIRST_COMPLETED
                )
        finally:
            waiter.cancel()
            if sleeper is not None:
                sleeper.cancel()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError, ValueError):
                    pass
            return await fleet.stop()  # noqa: B012

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        return {"interrupted": True}
