"""Typed public API: build a spec, hand it a trace, get results.

This facade is the supported way to run experiments::

    from repro import ExperimentSpec, FaultSpec, run

    spec = ExperimentSpec(protocol="B-SUB", ttl_min=600.0,
                          faults=FaultSpec(frame_loss=0.1))
    result = run(trace, spec)

One frozen :class:`ExperimentSpec` carries the protocol name, every
simulation knob, and an optional :class:`~repro.faults.FaultSpec`; the
entry points :func:`run`, :func:`sweep`, :func:`replicate`, and
:func:`resilience` take (trace, spec) and delegate to the experiment
harness.  The legacy free-function signatures
(``run_experiment`` / ``ttl_sweep`` / ``df_sweep`` / ``run_replicated``)
still work but emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Callable, Optional, Sequence, Tuple

from .dtn.bandwidth import BLUETOOTH_EFFECTIVE_BPS
from .experiments.config import ExperimentConfig
from .experiments.replication import ReplicatedResult, _run_replicated
from .experiments.resilience import ResilienceReport, resilience_report
from .experiments.runner import (
    ALL_PROTOCOLS,
    PROTOCOL_NAMES,
    RunResult,
    _run_experiment,
)
from .experiments.sweeps import _df_sweep, _ttl_sweep
from .faults.spec import FaultSpec
from .obs import Observability
from .pubsub.adaptive import AdaptiveDecayConfig
from .serve.spec import LoadSpec, ServeSpec
from .traces.model import ContactTrace
from .workload.keys import KeyDistribution

__all__ = [
    "ExperimentSpec",
    "LoadSpec",
    "ServeSpec",
    "load",
    "replicate",
    "resilience",
    "run",
    "serve",
    "sweep",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything one experiment needs, as a single typed value.

    Field-for-field this mirrors
    :class:`~repro.experiments.config.ExperimentConfig` plus the
    protocol name, with one renaming: the decay factor is ``df_per_min``
    (the paper's DF), not ``decay_factor_per_min``.  ``None`` keeps the
    Eq. 5 automatic derivation.  Specs are frozen — derive variants with
    :func:`dataclasses.replace` or the ``with_*`` helpers.
    """

    protocol: str = "B-SUB"
    ttl_min: float = 600.0
    df_per_min: Optional[float] = None  # None → derive via Eq. 5
    num_bits: int = 256
    num_hashes: int = 4
    initial_value: float = 50.0
    copy_limit: int = 3
    election_lower: int = 3
    election_upper: int = 5
    election_window_s: float = 5 * 3600.0
    rate_bps: Optional[float] = BLUETOOTH_EFFECTIVE_BPS
    min_rate_per_s: float = 1.0 / 1800.0
    interests_per_node: int = 1
    keys_per_message: int = 1
    workload_seed: int = 7
    interest_seed: int = 11
    df_delta_per_min: float = 0.01
    broker_broker_additive_merge: bool = False
    static_brokers: Optional[Tuple[int, ...]] = None
    relay_fill_threshold: Optional[float] = None
    relay_max_filters: Optional[int] = None
    adaptive_df: Optional[AdaptiveDecayConfig] = None
    carried_capacity: Optional[int] = None
    eviction: str = "oldest"
    push_buffer_capacity: Optional[int] = None
    push_summary_exchange: str = "free"
    spray_copies: int = 8
    interest_encoding: str = "tcbf"
    #: Relay filter backend spec (:mod:`repro.core.filter_zoo`), e.g.
    #: ``"multi:mem=384"`` or ``"countbf:rows=16"``; ``None`` keeps the
    #: paper's single array-backed TCBF relay.
    filter_spec: Optional[str] = None
    #: Fault-injection model; ``None`` (or an all-zero spec) runs the
    #: exact fault-free code path.
    faults: Optional[FaultSpec] = None
    #: Simulator shard count (bit-deterministic; see
    #: :class:`~repro.experiments.config.ExperimentConfig.shards`).
    shards: Optional[int] = None

    def __post_init__(self) -> None:
        if self.protocol not in ALL_PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; "
                f"expected one of {ALL_PROTOCOLS}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultSpec):
            raise TypeError(
                f"faults must be a FaultSpec or None, "
                f"got {type(self.faults).__name__}"
            )

    # -- conversion ---------------------------------------------------------

    def to_config(self) -> ExperimentConfig:
        """The equivalent :class:`ExperimentConfig` (drops ``protocol``)."""
        values = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("protocol", "df_per_min")
        }
        return ExperimentConfig(
            decay_factor_per_min=self.df_per_min, **values
        )

    @classmethod
    def from_config(
        cls, config: ExperimentConfig, protocol: str = "B-SUB"
    ) -> "ExperimentSpec":
        """Lift a legacy config (plus a protocol name) into a spec."""
        values = {
            f.name: getattr(config, f.name)
            for f in fields(ExperimentConfig)
            if f.name != "decay_factor_per_min"
        }
        return cls(
            protocol=protocol,
            df_per_min=config.decay_factor_per_min,
            **values,
        )

    # -- derivation helpers -------------------------------------------------

    def with_protocol(self, protocol: str) -> "ExperimentSpec":
        return replace(self, protocol=protocol)

    def with_ttl(self, ttl_min: float) -> "ExperimentSpec":
        return replace(self, ttl_min=ttl_min)

    def with_df(self, df_per_min: Optional[float]) -> "ExperimentSpec":
        return replace(self, df_per_min=df_per_min)

    def with_faults(self, faults: Optional[FaultSpec]) -> "ExperimentSpec":
        return replace(self, faults=faults)

    def with_shards(self, shards: Optional[int]) -> "ExperimentSpec":
        return replace(self, shards=shards)


def run(
    trace: ContactTrace,
    spec: Optional[ExperimentSpec] = None,
    *,
    distribution: Optional[KeyDistribution] = None,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Run one simulation described by *spec* on *trace*.

    The default spec is B-SUB under the paper's Sec. VII-A settings.
    Pass an :class:`~repro.obs.Observability` bundle to trace/meter the
    run; it never changes results.
    """
    spec = spec or ExperimentSpec()
    return _run_experiment(
        trace, spec.protocol, spec.to_config(), distribution, obs
    )


def sweep(
    trace: ContactTrace,
    spec: Optional[ExperimentSpec] = None,
    *,
    ttl_min: Optional[Sequence[float]] = None,
    df_per_min: Optional[Sequence[float]] = None,
    protocols: Optional[Sequence[str]] = None,
    jobs: Optional[int] = None,
    distribution: Optional[KeyDistribution] = None,
):
    """Sweep one axis: TTL (Figs. 7–8) or DF (Fig. 9).

    Exactly one of ``ttl_min`` / ``df_per_min`` must be given.

    * ``ttl_min=[...]`` runs every protocol in *protocols* (default:
      the paper's PUSH / B-SUB / PULL) at every TTL and returns
      ``{protocol: [RunResult, ...]}`` ordered like the sweep values.
    * ``df_per_min=[...]`` runs B-SUB at ``spec.ttl_min`` for each
      explicit DF and returns ``[RunResult, ...]``; *protocols* is not
      accepted on this axis (Fig. 9 is B-SUB only).

    ``jobs`` fans the grid across processes (<=0 → all CPUs, default
    serial); results are identical to the serial path.
    """
    if (ttl_min is None) == (df_per_min is None):
        raise TypeError("pass exactly one of ttl_min=... or df_per_min=...")
    spec = spec or ExperimentSpec()
    base = spec.to_config()
    if ttl_min is not None:
        return _ttl_sweep(
            trace,
            ttl_values_min=tuple(ttl_min),
            protocols=tuple(protocols) if protocols else PROTOCOL_NAMES,
            base_config=base,
            distribution=distribution,
            jobs=jobs,
        )
    if protocols is not None:
        raise TypeError(
            "protocols is only valid for a TTL sweep; "
            "the DF sweep runs B-SUB only"
        )
    return _df_sweep(
        trace,
        df_values_per_min=tuple(df_per_min),
        ttl_min=spec.ttl_min,
        base_config=base,
        distribution=distribution,
        jobs=jobs,
    )


def replicate(
    trace_factory: Callable[[int], ContactTrace],
    spec: Optional[ExperimentSpec] = None,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    jobs: Optional[int] = None,
    distribution: Optional[KeyDistribution] = None,
) -> ReplicatedResult:
    """Run *spec* once per seed and aggregate into mean ± std.

    Each seed regenerates the trace via ``trace_factory(seed)`` and
    shifts the workload/interest seeds, so replications are independent
    realisations of the same configuration.
    """
    spec = spec or ExperimentSpec()
    return _run_replicated(
        trace_factory,
        spec.protocol,
        spec.to_config(),
        seeds,
        distribution,
        jobs,
    )


def resilience(
    trace: ContactTrace,
    spec: ExperimentSpec,
    *,
    distribution: Optional[KeyDistribution] = None,
    obs: Optional[Observability] = None,
) -> ResilienceReport:
    """Run *spec* (which must enable faults) plus its fault-free twin.

    Returns a :class:`~repro.experiments.resilience.ResilienceReport`
    comparing delivery and cost against the identical-workload twin.
    """
    if spec.faults is None or not spec.faults.enabled:
        raise ValueError(
            "resilience() needs a spec with an enabled FaultSpec; "
            "use run() for fault-free experiments"
        )
    return resilience_report(
        trace,
        spec.protocol,
        spec.to_config(),
        distribution=distribution,
        obs=obs,
    )


def serve(
    spec: Optional[ServeSpec] = None,
    *,
    duration_s: Optional[float] = None,
    registry=None,
) -> dict:
    """Run a live broker daemon per *spec*; blocks until done.

    Serves the :mod:`repro.pubsub.wire` binary format over TCP until
    *duration_s* elapses (forever when ``None``; Ctrl-C stops cleanly),
    then shuts down gracefully and returns the run summary.  With
    ``spec.trace_path`` set, the broker streams a schema-v2 trace whose
    :func:`repro.obs.analyze_trace` totals match the live registry
    exactly — same numbers online and offline.

    ``spec.workers > 1`` runs the multi-process SO_REUSEPORT fleet
    (:class:`repro.serve.BrokerFleet`): N worker processes share the
    port, durable subscriptions shard onto ``spec.state_dir``, each
    worker emits a trace shard, and the shards merge deterministically
    into ``spec.trace_path`` on shutdown — the analyzer over the
    merged trace equals the *sum* of the workers' parity counters.
    """
    from .serve.broker import run_broker

    return run_broker(spec or ServeSpec(), duration_s, registry=registry)


def load(spec: Optional[LoadSpec] = None, *, distribution=None):
    """Replay a synthetic workload against a live broker; blocks.

    Plans the whole workload deterministically from ``spec.seed``
    (Table-II key distribution, diurnal arrival profiles), runs
    ``spec.sessions`` concurrent socket sessions, and returns the
    client-side :class:`~repro.serve.load.LoadReport` with true
    end-to-end latency percentiles.
    """
    from .serve.load import run_load

    return run_load(spec or LoadSpec(), distribution=distribution)
