"""Exact (raw-string) interest relay — the TCBF's ablation twin.

Sec. IV-B claims the TCBF "reduces storage for representing interests"
and "reduces bandwidth requirements in interests propagation" relative
to raw strings, at the price of false positives.  To measure that claim
*inside the protocol* (not just statically), this module provides a
drop-in replacement for the relay filter that keeps interests as exact
strings with per-key counters — the representation the paper's
string-matching strawman [1] implies:

* same temporal semantics (insertion value ``C``, decay, A-/M-merge,
  preferential queries) so the forwarding behaviour is comparable;
* exact membership — no false positives, no falsely injected messages;
* wire size = the raw-string encoding of Sec. VI-C
  (Σ key bytes + per-key control overhead), which is what the contact
  bandwidth gets charged.

Run B-SUB with ``BsubConfig(interest_encoding="raw")`` to reproduce the
trade-off: zero FPR, larger control traffic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..core.analysis import raw_string_memory_bytes

__all__ = ["ExactInterestRelay", "raw_interest_wire_bytes"]

#: Per-key control overhead on the wire (length prefix + separator).
PER_KEY_OVERHEAD_BYTES = 2


def raw_interest_wire_bytes(keys: Iterable[str], with_counters: bool = False) -> float:
    """Wire size of a raw-string interest list (Sec. VI-C comparison).

    One byte per key is added for the counter when *with_counters*.
    """
    lengths = [len(k.encode("utf-8")) for k in keys]
    size = raw_string_memory_bytes(lengths, per_key_overhead=PER_KEY_OVERHEAD_BYTES)
    if with_counters:
        size += len(lengths)
    return size


class ExactInterestRelay:
    """A relay 'filter' storing interests as exact keyed counters.

    Mirrors the TCBF interface the protocol uses (``advance``, ``copy``,
    ``a_merge``/``m_merge``, ``query``, ``min_counter``, ``preference``,
    ``is_empty``, ``time``) with exact semantics: one counter per key,
    no hashing, no collisions, no false positives.
    """

    __slots__ = ("initial_value", "decay_factor", "_counters", "_time")

    def __init__(
        self,
        initial_value: float = 50.0,
        decay_factor: float = 0.0,
        time: float = 0.0,
    ):
        if initial_value <= 0:
            raise ValueError(f"initial_value must be positive, got {initial_value}")
        if decay_factor < 0:
            raise ValueError(f"decay_factor must be >= 0, got {decay_factor}")
        self.initial_value = float(initial_value)
        self.decay_factor = float(decay_factor)
        self._counters: Dict[str, float] = {}
        self._time = float(time)

    # -- clock ----------------------------------------------------------------

    @property
    def time(self) -> float:
        return self._time

    def advance(self, now: float) -> None:
        if now < self._time:
            raise ValueError(
                f"cannot advance backwards: relay at t={self._time}, got {now}"
            )
        elapsed = now - self._time
        self._time = now
        if self.decay_factor > 0 and elapsed > 0:
            self.decay(self.decay_factor * elapsed)

    def decay(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"decay amount must be >= 0, got {amount}")
        if amount == 0 or not self._counters:
            return
        self._counters = {
            key: value - amount
            for key, value in self._counters.items()
            if value > amount
        }

    # -- merges ----------------------------------------------------------------

    def announce(self, keys: Iterable[str]) -> None:
        """A-merge a consumer's interest announcement (counters += C)."""
        for key in keys:
            self._counters[key] = (
                self._counters.get(key, 0.0) + self.initial_value
            )

    def a_merge(self, other: "ExactInterestRelay") -> None:
        """Additive merge of another exact relay."""
        self._align(other)
        for key, value in other._decayed_counters(self._time).items():
            self._counters[key] = self._counters.get(key, 0.0) + value

    def m_merge(self, other: "ExactInterestRelay") -> None:
        """Maximum merge of another exact relay (broker ↔ broker)."""
        self._align(other)
        for key, value in other._decayed_counters(self._time).items():
            self._counters[key] = max(self._counters.get(key, 0.0), value)

    def _align(self, other: "ExactInterestRelay") -> None:
        if other._time > self._time:
            self.advance(other._time)

    def _decayed_counters(self, at_time: float) -> Dict[str, float]:
        lag = (at_time - self._time) * self.decay_factor
        if lag <= 0:
            return dict(self._counters)
        return {k: v - lag for k, v in self._counters.items() if v > lag}

    # -- queries ----------------------------------------------------------------

    def query(self, key: str) -> bool:
        """Exact membership — never a false positive."""
        return self._counters.get(key, 0.0) > 0.0

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def min_counter(self, key: str) -> float:
        return self._counters.get(key, 0.0)

    def preference(self, key: str, other) -> float:
        """P_{self,other}(key) with the Sec. IV-A zero-case rule."""
        a = self.min_counter(key)
        b = other.min_counter(key)
        return a if b == 0.0 else a - b

    # -- batch queries (protocol-uniform with the TCBF relays) -----------------

    def query_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Exact membership for many keys as one boolean vector."""
        counters = self._counters
        return np.fromiter(
            (counters.get(k, 0.0) > 0.0 for k in keys), dtype=bool, count=len(keys)
        )

    def min_counter_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Counters for many keys as one float vector (0 when absent)."""
        counters = self._counters
        return np.fromiter(
            (counters.get(k, 0.0) for k in keys), dtype=np.float64, count=len(keys)
        )

    def preference_batch(self, keys: Sequence[str], other) -> np.ndarray:
        """Batched preferential query against *other* (same zero-case rule)."""
        keys = list(keys)
        a = self.min_counter_batch(keys)
        b = np.asarray(other.min_counter_batch(keys), dtype=np.float64)
        return np.where(b == 0.0, a, a - b)

    def is_empty(self) -> bool:
        return not self._counters

    def __len__(self) -> int:
        """Number of stored keys."""
        return len(self._counters)

    def keys(self) -> List[str]:
        return sorted(self._counters)

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self._counters.items())

    # -- wire ----------------------------------------------------------------

    def wire_bytes(self, with_counters: bool = True) -> float:
        """Transmission size of this relay's interest list."""
        return raw_interest_wire_bytes(self._counters, with_counters)

    def copy(self) -> "ExactInterestRelay":
        clone = ExactInterestRelay(
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            time=self._time,
        )
        clone._counters = dict(self._counters)
        return clone

    def __repr__(self) -> str:
        return (
            f"ExactInterestRelay(keys={len(self._counters)}, "
            f"DF={self.decay_factor}, t={self._time})"
        )
