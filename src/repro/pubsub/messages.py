"""Messages and their content keys.

In B-SUB "the content of a message is identified by a single key, which
is a string that indicates the content of the message" (Sec. V-A); the
paper scopes its presentation to single-key messages but notes the
multi-key extension is straightforward — the library supports both
(``keys`` is a frozenset, usually of size one).

Messages are small (Twitter-post scale, ≤ 140 bytes), have a TTL equal
to their maximum tolerable delay, and producers may replicate at most
``ℂ`` copies to brokers (direct deliveries to consumers don't count as
copies, Sec. V-D).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Union

__all__ = ["Message", "MAX_MESSAGE_BYTES", "DEFAULT_COPY_LIMIT"]

MAX_MESSAGE_BYTES = 140   # Twitter post limit (Sec. V-A / VII-A)
DEFAULT_COPY_LIMIT = 3    # the paper's ℂ (Sec. VII-A)

_next_id = itertools.count()


@dataclass(frozen=True)
class Message:
    """An immutable pub-sub message.

    Attributes
    ----------
    id:
        Unique message id (auto-assigned by :meth:`create`).
    keys:
        Content keys (usually a single key).
    source:
        Producer node id.
    created_at:
        Creation time, seconds from trace origin.
    ttl_s:
        Time-to-live in seconds — "identical to their maximum tolerable
        delay", counted from creation.
    size_bytes:
        Payload size charged to contact bandwidth.
    """

    id: int
    keys: FrozenSet[str]
    source: int
    created_at: float
    ttl_s: float
    size_bytes: int

    @classmethod
    def create(
        cls,
        keys: Union[str, Iterable[str]],
        source: int,
        created_at: float,
        ttl_s: float,
        size_bytes: int = MAX_MESSAGE_BYTES,
    ) -> "Message":
        """Create a message with a fresh id and validated fields."""
        if isinstance(keys, str):
            key_set = frozenset([keys])
        else:
            key_set = frozenset(keys)
        if not key_set:
            raise ValueError("a message needs at least one content key")
        if any(not k for k in key_set):
            raise ValueError("content keys must be non-empty strings")
        if ttl_s <= 0:
            raise ValueError(f"ttl must be positive, got {ttl_s}")
        if not 1 <= size_bytes:
            raise ValueError(f"size must be >= 1 byte, got {size_bytes}")
        return cls(
            id=next(_next_id),
            keys=key_set,
            source=source,
            created_at=float(created_at),
            ttl_s=float(ttl_s),
            size_bytes=int(size_bytes),
        )

    @property
    def key(self) -> str:
        """The single content key (raises if the message is multi-key)."""
        if len(self.keys) != 1:
            raise ValueError(
                f"message {self.id} has {len(self.keys)} keys; use .keys"
            )
        return next(iter(self.keys))

    @property
    def expires_at(self) -> float:
        return self.created_at + self.ttl_s

    def expired(self, now: float) -> bool:
        """True once *now* exceeds the TTL horizon."""
        return now > self.expires_at

    def matches(self, interests: FrozenSet[str]) -> bool:
        """Ground-truth interest match (no Bloom-filter involvement)."""
        return bool(self.keys & interests)
