"""Baseline protocols: PUSH (epidemic) and PULL (one-hop).

The paper compares B-SUB against these two extremes (Sec. VII-A):

* **PUSH** — "a node replicates an event it stores to every node it
  encounters that has not received a copy".  Pure epidemic flooding:
  its delivery ratio and delay "indicate the best results we can
  achieve", at maximal forwarding overhead.
* **PULL** — "a node only collects messages that it is interested in
  from its directly encountered neighbors".  One-hop, most
  conservative: overhead ≈ 1 forwarding per delivered message, at the
  cost of delivery ratio and delay.

Both use exact interest matching (no Bloom filters), so neither ever
delivers falsely — another reference point for Fig. 9(d).
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..dtn.bandwidth import ContactChannel
from ..dtn.simulator import Protocol
from ..traces.model import Contact, ContactTrace
from .messages import Message
from .metrics import MetricsCollector

__all__ = ["PushProtocol", "PullProtocol"]


class _Buffer:
    """A TTL-purged message buffer shared by both baselines.

    An optional *capacity* evicts the earliest-expiring message when a
    new one would overflow — the standard drop-oldest policy for
    epidemic routing under memory pressure.
    """

    __slots__ = ("messages", "capacity", "evictions", "_heap")

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.messages: Dict[int, Message] = {}
        self.capacity = capacity
        self.evictions = 0
        self._heap: List[Tuple[float, int]] = []

    def add(self, message: Message) -> None:
        if (
            self.capacity is not None
            and message.id not in self.messages
            and len(self.messages) >= self.capacity
        ):
            victim = min(
                self.messages.values(), key=lambda m: (m.expires_at, m.id)
            )
            del self.messages[victim.id]
            self.evictions += 1
        self.messages[message.id] = message
        heapq.heappush(self._heap, (message.expires_at, message.id))

    def purge(self, now: float) -> None:
        while self._heap and self._heap[0][0] < now:
            _, message_id = heapq.heappop(self._heap)
            self.messages.pop(message_id, None)

    def __contains__(self, message_id: int) -> bool:
        return message_id in self.messages

    def __len__(self) -> int:
        return len(self.messages)


class PushProtocol(Protocol):
    """Epidemic flooding (the paper's PUSH).

    Parameters
    ----------
    buffer_capacity:
        Optional per-node buffer bound (drop-oldest eviction).
    summary_exchange:
        How peers learn which messages the other already holds before
        replicating:

        * ``"free"`` (default) — the paper's idealised PUSH: perfect
          knowledge at zero cost;
        * ``"ids"`` — each side sends its buffered message-id list
          (8 bytes per id), the realistic anti-entropy summary vector;
        * ``"bloom"`` — each side sends a Bloom filter of its ids
          (2 bits per message), trading a little duplicate traffic for
          a much smaller summary — the classic Summary-Cache use of
          Bloom filters the paper cites as [22].
    """

    name = "PUSH"

    _SUMMARY_MODES = ("free", "ids", "bloom")

    def __init__(
        self,
        interests: Dict[int, FrozenSet[str]],
        metrics: MetricsCollector,
        buffer_capacity: Optional[int] = None,
        summary_exchange: str = "free",
    ):
        if summary_exchange not in self._SUMMARY_MODES:
            raise ValueError(
                f"summary_exchange must be one of {self._SUMMARY_MODES}, "
                f"got {summary_exchange!r}"
            )
        self.interests = interests
        self.metrics = metrics
        self.buffer_capacity = buffer_capacity
        self.summary_exchange = summary_exchange
        self.buffers: Dict[int, _Buffer] = {}
        self.seen: Dict[int, Set[int]] = {}

    def setup(self, trace: ContactTrace) -> None:
        self.buffers = {
            node: _Buffer(self.buffer_capacity) for node in trace.nodes
        }
        self.seen = {node: set() for node in trace.nodes}

    def total_evictions(self) -> int:
        """Messages dropped to capacity across all nodes."""
        return sum(buf.evictions for buf in self.buffers.values())

    def on_message_created(self, node: int, message: Message, now: float) -> None:
        self.metrics.register_message(message)
        self.buffers[node].add(message)
        self.seen[node].add(message.id)

    def _summary_bytes(self, node: int) -> float:
        """Wire size of one node's buffer summary."""
        count = len(self.buffers[node].messages)
        if self.summary_exchange == "ids":
            return 5.0 + 8.0 * count
        # bloom: ~2 bits per element keeps the summary compact; a real
        # deployment would size m from the expected buffer occupancy.
        return 5.0 + count * 2.0 / 8.0

    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        a, b = contact.a, contact.b
        buf_a, buf_b = self.buffers[a], self.buffers[b]
        buf_a.purge(now)
        buf_b.purge(now)
        if self.summary_exchange != "free":
            # Both summaries must cross before any replication; if the
            # contact cannot even carry them, nothing moves.
            if not channel.send(self._summary_bytes(a), sender=a, receiver=b):
                return
            if not channel.send(self._summary_bytes(b), sender=b, receiver=a):
                return
        self._replicate(a, b, channel, now)
        self._replicate(b, a, channel, now)

    def _replicate(
        self, sender: int, receiver: int, channel: ContactChannel, now: float
    ) -> None:
        sender_buffer = self.buffers[sender]
        receiver_seen = self.seen[receiver]
        # Set difference in C instead of per-message Python checks: the
        # candidate set is usually a small fraction of the buffer.
        candidate_ids = sender_buffer.messages.keys() - receiver_seen
        receiver_buffer = self.buffers[receiver]
        receiver_interests = self.interests.get(receiver, frozenset())
        for message_id in sorted(candidate_ids):
            message = sender_buffer.messages[message_id]
            if not channel.send(message.size_bytes, sender=sender, receiver=receiver):
                return
            self.metrics.record_forwarding(message)
            receiver_seen.add(message_id)
            receiver_buffer.add(message)
            if message.keys & receiver_interests:
                self.metrics.record_delivery(message, receiver, now)


class PullProtocol(Protocol):
    """One-hop interest-driven collection (the paper's PULL).

    Messages never leave their producer except to be handed directly to
    an interested consumer, so the buffer of each node holds only its
    own messages, indexed by key for O(1) interest lookups.
    """

    name = "PULL"

    def __init__(
        self,
        interests: Dict[int, FrozenSet[str]],
        metrics: MetricsCollector,
    ):
        self.interests = interests
        self.metrics = metrics
        self.by_key: Dict[int, Dict[str, List[Message]]] = {}
        self.buffers: Dict[int, _Buffer] = {}
        self.received: Dict[int, Set[int]] = {}

    def setup(self, trace: ContactTrace) -> None:
        self.by_key = {node: {} for node in trace.nodes}
        self.buffers = {node: _Buffer() for node in trace.nodes}
        self.received = {node: set() for node in trace.nodes}

    def on_message_created(self, node: int, message: Message, now: float) -> None:
        self.metrics.register_message(message)
        self.buffers[node].add(message)
        index = self.by_key[node]
        for key in message.keys:
            index.setdefault(key, []).append(message)

    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        a, b = contact.a, contact.b
        self.buffers[a].purge(now)
        self.buffers[b].purge(now)
        self._collect(consumer=a, producer=b, channel=channel, now=now)
        self._collect(consumer=b, producer=a, channel=channel, now=now)

    def _collect(
        self, consumer: int, producer: int, channel: ContactChannel, now: float
    ) -> None:
        producer_live = self.buffers[producer]
        producer_index = self.by_key[producer]
        consumer_received = self.received[consumer]
        for key in self.interests.get(consumer, frozenset()):
            for message in producer_index.get(key, ()):
                if message.id not in producer_live:
                    continue  # expired
                if message.id in consumer_received:
                    continue
                if not channel.send(
                    message.size_bytes, sender=producer, receiver=consumer
                ):
                    return
                self.metrics.record_forwarding(message)
                consumer_received.add(message.id)
                self.metrics.record_delivery(message, consumer, now)
