"""Evaluation metrics (paper Sec. VII).

The paper evaluates three metrics — *delivery ratio*, *delay*, and
*overhead* (forwardings per delivered message) — plus the *false
positive rate* of delivered messages (Fig. 9(d)).  Definitions used
here, matching the paper's wording:

* A message's *intended recipients* are the consumers whose interests
  ground-truth-match its keys (excluding the producer itself).
* **Delivery ratio** — delivered (message, intended-recipient) pairs
  over all intended pairs.
* **Delay** — time from message creation to delivery, averaged over
  delivered intended pairs ("we only consider the delay of delivered
  messages").
* **Forwardings per delivered message** — total message transmissions
  in the network divided by the number of deliveries.
* **False positive rate** — "the ratio of the number of falsely
  delivered messages to the total number of delivered messages": a
  delivery to a node *not* interested in the message is false (it can
  only happen through Bloom-filter false positives).
* **False injection rate** — the Sec. VI-B quantity: the fraction of
  producer-to-broker replications carrying a message *no consumer is
  interested in*.  Such messages enter the network purely through
  relay-filter false positives ("B-SUB may falsely inject useless
  messages into the network", Sec. I); this is the observable whose
  worst case Eq. 1 bounds at ≈ 0.04 for the 38-key workload, because
  the injection decision queries a many-key relay filter, whereas the
  final delivery decision queries a single-interest consumer filter
  whose false-positive probability is negligible (~1e-7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from .messages import Message

__all__ = ["DeliveryRecord", "MetricsCollector", "MetricsSummary"]


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery of a message to a node."""

    message_id: int
    node: int
    time: float
    delay_s: float
    intended: bool


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregated results of one simulation run."""

    protocol: str
    num_messages: int
    num_intended_pairs: int
    num_deliveries: int
    num_intended_deliveries: int
    num_false_deliveries: int
    num_forwardings: int
    num_injections: int
    num_false_injections: int
    num_useless_injections: int
    delivery_ratio: float
    mean_delay_s: float
    median_delay_s: float
    forwardings_per_delivered: float
    false_positive_ratio: float
    false_injection_ratio: float
    useless_injection_ratio: float

    @property
    def mean_delay_min(self) -> float:
        """Mean delay in minutes (the paper's Fig. 7/8/9(b) unit)."""
        return self.mean_delay_s / 60.0


class MetricsCollector:
    """Accumulates deliveries and transmissions during a run.

    Parameters
    ----------
    interests:
        Ground-truth node -> interest-set map, used to classify
        deliveries as intended or false.
    protocol_name:
        Label carried into the summary.
    """

    def __init__(
        self,
        interests: Dict[int, FrozenSet[str]],
        protocol_name: str = "protocol",
    ):
        self.interests = interests
        self.protocol_name = protocol_name
        self._all_interest_keys: FrozenSet[str] = frozenset(
            key for keys in interests.values() for key in keys
        )
        self._intended_recipients: Dict[int, FrozenSet[int]] = {}
        self._messages: Dict[int, Message] = {}
        self._message_index: Dict[int, int] = {}
        self._delivered_pairs: Set[Tuple[int, int]] = set()
        self._records: List[DeliveryRecord] = []
        self._num_forwardings = 0
        self._num_injections = 0
        self._num_false_injections = 0
        self._num_useless_injections = 0

    # -- recording -------------------------------------------------------------

    def register_message(self, message: Message) -> None:
        """Declare a newly created message (computes intended recipients)."""
        if message.id in self._messages:
            raise ValueError(f"message {message.id} registered twice")
        self._message_index[message.id] = len(self._messages)
        self._messages[message.id] = message
        self._intended_recipients[message.id] = frozenset(
            node
            for node, keys in self.interests.items()
            if node != message.source and message.keys & keys
        )

    def record_forwarding(self, message: Message, count: int = 1) -> None:
        """Count *count* transmissions of *message*."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        self._num_forwardings += count

    def record_injection(self, message: Message) -> Tuple[bool, bool]:
        """Count one producer-to-broker replication of *message*.

        Returns ``(is_false, is_useless)`` so instrumentation can react
        to the classification without recomputing it.

        Two flavours of waste are distinguished:

        * *false* — no node in the network, not even the producer, is
          interested in any of the message's keys: such a key was never
          announced, so the relay filter can only have matched through
          a Bloom-filter false positive (the Sec. VI-B quantity);
        * *useless* — the message has no intended recipients (the
          superset: it also covers keys only the producer itself is
          interested in, which genuinely sit in relay filters but can
          never produce a delivery — wasted bandwidth either way).
        """
        if message.id not in self._messages:
            raise ValueError(
                f"message {message.id} injected but never registered"
            )
        self._num_injections += 1
        is_false = not message.keys & self._all_interest_keys
        is_useless = not self._intended_recipients[message.id]
        if is_false:
            self._num_false_injections += 1
        if is_useless:
            self._num_useless_injections += 1
        return is_false, is_useless

    def record_delivery(self, message: Message, node: int, now: float) -> bool:
        """Record a delivery; returns False for duplicate (message, node) pairs.

        Duplicates are not an error — protocols may legitimately hand a
        node a copy it already has — but they count neither as
        deliveries nor as false positives.
        """
        if message.id not in self._messages:
            raise ValueError(
                f"message {message.id} delivered but never registered"
            )
        pair = (message.id, node)
        if pair in self._delivered_pairs:
            return False
        self._delivered_pairs.add(pair)
        intended = node in self._intended_recipients[message.id]
        self._records.append(
            DeliveryRecord(
                message_id=message.id,
                node=node,
                time=now,
                delay_s=now - message.created_at,
                intended=intended,
            )
        )
        return True

    def was_delivered_to(self, message: Message, node: int) -> bool:
        """Whether (message, node) has already been recorded."""
        return (message.id, node) in self._delivered_pairs

    def is_intended(self, message: Message, node: int) -> bool:
        """Ground truth: is *node* an intended recipient of *message*?"""
        return node in self._intended_recipients[message.id]

    def num_intended_recipients(self, message: Message) -> int:
        """Ground truth: how many intended recipients *message* has."""
        return len(self._intended_recipients[message.id])

    def message_index(self, message: Message) -> int:
        """The 0-based creation index of *message* within this run.

        Raw :attr:`Message.id` values come from a process-global
        counter, so they depend on how many messages earlier runs in
        the same process created; the creation index is the
        run-relative, reproducible identifier the event trace uses.
        """
        return self._message_index[message.id]

    # -- aggregation ---------------------------------------------------------------

    @property
    def num_messages(self) -> int:
        return len(self._messages)

    @property
    def num_intended_pairs(self) -> int:
        return sum(len(r) for r in self._intended_recipients.values())

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        return list(self._records)

    @property
    def num_forwardings(self) -> int:
        return self._num_forwardings

    @property
    def num_injections(self) -> int:
        return self._num_injections

    @property
    def num_false_injections(self) -> int:
        return self._num_false_injections

    @property
    def num_useless_injections(self) -> int:
        return self._num_useless_injections

    def summary(self) -> MetricsSummary:
        """Aggregate everything recorded so far."""
        intended_records = [r for r in self._records if r.intended]
        false_records = [r for r in self._records if not r.intended]
        delays = sorted(r.delay_s for r in intended_records)
        num_deliveries = len(self._records)
        intended_pairs = self.num_intended_pairs
        if delays:
            mean_delay = sum(delays) / len(delays)
            mid = len(delays) // 2
            median_delay = (
                delays[mid]
                if len(delays) % 2
                else (delays[mid - 1] + delays[mid]) / 2.0
            )
        else:
            mean_delay = median_delay = math.nan
        return MetricsSummary(
            protocol=self.protocol_name,
            num_messages=len(self._messages),
            num_intended_pairs=intended_pairs,
            num_deliveries=num_deliveries,
            num_intended_deliveries=len(intended_records),
            num_false_deliveries=len(false_records),
            num_forwardings=self._num_forwardings,
            num_injections=self._num_injections,
            num_false_injections=self._num_false_injections,
            num_useless_injections=self._num_useless_injections,
            delivery_ratio=(
                len(intended_records) / intended_pairs if intended_pairs else math.nan
            ),
            mean_delay_s=mean_delay,
            median_delay_s=median_delay,
            forwardings_per_delivered=(
                self._num_forwardings / len(intended_records)
                if intended_records
                else math.nan
            ),
            false_positive_ratio=(
                len(false_records) / num_deliveries if num_deliveries else 0.0
            ),
            false_injection_ratio=(
                self._num_false_injections / self._num_injections
                if self._num_injections
                else 0.0
            ),
            useless_injection_ratio=(
                self._num_useless_injections / self._num_injections
                if self._num_injections
                else 0.0
            ),
        )
