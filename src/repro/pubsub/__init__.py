"""The B-SUB publish-subscribe system and its baselines."""

from .adaptive import AdaptiveDecayConfig, AdaptiveDecayController
from .baselines import PullProtocol, PushProtocol
from .broker_allocation import FIVE_HOURS_S, BrokerElection, StaticBrokerSet
from .exact import ExactInterestRelay, raw_interest_wire_bytes
from .extra_baselines import SprayAndWaitProtocol
from .messages import DEFAULT_COPY_LIMIT, MAX_MESSAGE_BYTES, Message
from .metrics import DeliveryRecord, MetricsCollector, MetricsSummary
from .node import BsubNodeState
from .protocol import BsubConfig, BsubProtocol

__all__ = [
    "AdaptiveDecayConfig",
    "AdaptiveDecayController",
    "BrokerElection",
    "BsubConfig",
    "BsubNodeState",
    "BsubProtocol",
    "DEFAULT_COPY_LIMIT",
    "DeliveryRecord",
    "ExactInterestRelay",
    "raw_interest_wire_bytes",
    "FIVE_HOURS_S",
    "MAX_MESSAGE_BYTES",
    "Message",
    "MetricsCollector",
    "MetricsSummary",
    "PullProtocol",
    "PushProtocol",
    "SprayAndWaitProtocol",
    "StaticBrokerSet",
]
