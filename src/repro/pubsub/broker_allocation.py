"""Decentralised broker allocation (paper Sec. V-B).

B-SUB elects a swarm of socially-active nodes as brokers.  Each
*non-broker* node tracks the brokers it has met within a sliding time
window ``W`` and holds two thresholds:

* if the number of distinct brokers met in ``W`` drops below the lower
  bound ``T_l``, it designates the next node it meets as a broker;
* if it exceeds the upper bound ``T_u``, it tries to demote the broker
  it is currently meeting back to a normal node — but only if that
  broker's *degree* (distinct nodes met in ``W``) is below the average
  degree of the brokers the user knows, so that "less popular nodes are
  more likely to be removed from the brokers set".

Brokers themselves do not run the election.  The paper's simulation
uses ``T_l = 3``, ``T_u = 5`` and ``W = 5`` hours, which keeps roughly
30 % of nodes acting as brokers.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, Set, Tuple

from ..obs.recorder import NULL_RECORDER

__all__ = ["BrokerElection", "StaticBrokerSet"]

FIVE_HOURS_S = 5 * 3600.0


class _WindowedMeetings:
    """A node's meeting log pruned to the trailing window."""

    __slots__ = ("window_s", "_events", "_counts")

    def __init__(self, window_s: float):
        self.window_s = window_s
        self._events: Deque[Tuple[float, int]] = deque()
        self._counts: Dict[int, int] = {}

    def record(self, time: float, peer: int) -> None:
        self._events.append((time, peer))
        self._counts[peer] = self._counts.get(peer, 0) + 1

    def prune(self, now: float) -> None:
        horizon = now - self.window_s
        events = self._events
        counts = self._counts
        while events and events[0][0] < horizon:
            _, peer = events.popleft()
            remaining = counts[peer] - 1
            if remaining:
                counts[peer] = remaining
            else:
                del counts[peer]

    def distinct_peers(self) -> Set[int]:
        return set(self._counts)

    def degree(self) -> int:
        """Distinct nodes met within the window (the paper's degree)."""
        return len(self._counts)


class BrokerElection:
    """The election state of the whole population.

    Per-node state is strictly partitioned (each node only ever reads
    its own meeting log and the degree its *contacted* peer would
    report), so the algorithm remains faithfully decentralised even
    though one object holds everyone's state.

    Parameters
    ----------
    nodes:
        The node population.
    lower_bound, upper_bound:
        ``T_l`` and ``T_u``.
    window_s:
        ``W`` in seconds.
    initial_brokers:
        Optional broker seed set (default: start with none and let the
        lower-bound rule bootstrap brokers from first meetings).
    recorder:
        Observability recorder; promotions/demotions are emitted as
        ``broker_role`` events when it is enabled.
    """

    def __init__(
        self,
        nodes: Iterable[int],
        lower_bound: int = 3,
        upper_bound: int = 5,
        window_s: float = FIVE_HOURS_S,
        initial_brokers: Iterable[int] = (),
        recorder=NULL_RECORDER,
    ):
        if lower_bound < 0:
            raise ValueError(f"lower_bound must be >= 0, got {lower_bound}")
        if upper_bound < lower_bound:
            raise ValueError(
                f"upper_bound {upper_bound} < lower_bound {lower_bound}"
            )
        if window_s <= 0:
            raise ValueError(f"window must be positive, got {window_s}")
        self.lower_bound = lower_bound
        self.upper_bound = upper_bound
        self.window_s = window_s
        self._nodes = tuple(sorted(set(nodes)))
        node_set = set(self._nodes)
        self._is_broker: Dict[int, bool] = {n: False for n in self._nodes}
        for broker in initial_brokers:
            if broker not in node_set:
                raise ValueError(f"initial broker {broker} not in population")
            self._is_broker[broker] = True
        self._meetings: Dict[int, _WindowedMeetings] = {
            n: _WindowedMeetings(window_s) for n in self._nodes
        }
        # node -> broker -> degree that broker reported at their last meeting
        self._known_broker_degrees: Dict[int, Dict[int, int]] = {
            n: {} for n in self._nodes
        }
        self._promotions = 0
        self._demotions = 0
        self.recorder = recorder

    # -- queries ---------------------------------------------------------------

    def is_broker(self, node: int) -> bool:
        return self._is_broker[node]

    def brokers(self) -> Set[int]:
        return {n for n, b in self._is_broker.items() if b}

    def broker_fraction(self) -> float:
        return len(self.brokers()) / len(self._nodes)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def promotions(self) -> int:
        """Total designations of a node as broker."""
        return self._promotions

    @property
    def demotions(self) -> int:
        """Total designations of a broker back to normal user."""
        return self._demotions

    def degree_of(self, node: int) -> int:
        """The degree *node* would currently report."""
        return self._meetings[node].degree()

    def reset_node(self, node: int) -> None:
        """Wipe *node*'s election state after a crash (fault injection).

        The node reboots as a normal user with an empty meeting log and
        no remembered broker degrees.  This is not an election decision
        — no ``broker_role`` event, no demotion tally — just state
        loss.  Other users' stale degree reports about this node are
        pruned by their own ``_decide`` pass (the ``met_brokers``
        membership check), which is exactly the sliding-window ``W``
        semantics surviving the restart.
        """
        self._is_broker[node] = False
        self._meetings[node] = _WindowedMeetings(self.window_s)
        self._known_broker_degrees[node] = {}

    # -- the election step --------------------------------------------------------

    def on_contact(self, a: int, b: int, now: float) -> None:
        """Update meeting logs and run both endpoints' election rules.

        The identity exchange happens first (Sec. V-C), so both sides
        decide against the *pre-contact* roles; decisions then apply
        simultaneously — when two broker-less users first meet, each
        designates the other.
        """
        for node in (a, b):
            self._meetings[node].prune(now)
        self._meetings[a].record(now, b)
        self._meetings[b].record(now, a)
        decisions = [self._decide(user=a, peer=b), self._decide(user=b, peer=a)]
        for decision in decisions:
            if decision is None:
                continue
            action, user, peer = decision
            if action == "promote" and not self._is_broker[peer]:
                self._is_broker[peer] = True
                self._known_broker_degrees[user][peer] = self.degree_of(peer)
                self._promotions += 1
                if self.recorder.enabled:
                    self.recorder.emit(
                        "broker_role", t=now, action="promote",
                        node=peer, by=user, degree=self.degree_of(peer),
                    )
            elif action == "demote" and self._is_broker[peer]:
                self._is_broker[peer] = False
                self._known_broker_degrees[user].pop(peer, None)
                self._demotions += 1
                if self.recorder.enabled:
                    self.recorder.emit(
                        "broker_role", t=now, action="demote",
                        node=peer, by=user, degree=self.degree_of(peer),
                    )

    def _decide(self, user: int, peer: int):
        """The user's election decision for this contact, if any."""
        if self._is_broker[user]:
            return None  # brokers do not perform election operations
        known = self._known_broker_degrees[user]
        if self._is_broker[peer]:
            known[peer] = self.degree_of(peer)
        # Brokers met within the window, per the user's own log.
        met_brokers = {
            p for p in self._meetings[user].distinct_peers() if self._is_broker[p]
        }
        # Forget degree reports from brokers outside the window or demoted.
        for stale in [p for p in known if p not in met_brokers]:
            del known[stale]
        count = len(met_brokers)
        if count < self.lower_bound and not self._is_broker[peer]:
            return ("promote", user, peer)
        if count > self.upper_bound and self._is_broker[peer]:
            average = sum(known.values()) / len(known) if known else 0.0
            if self.degree_of(peer) < average:
                return ("demote", user, peer)
        return None


class StaticBrokerSet:
    """A fixed broker assignment (ablation baseline for the election).

    Useful for isolating forwarding behaviour from election dynamics,
    e.g. "top 30 % of nodes by trace centrality are brokers".
    """

    def __init__(self, nodes: Iterable[int], brokers: Iterable[int]):
        self._nodes = tuple(sorted(set(nodes)))
        self._brokers = set(brokers)
        unknown = self._brokers - set(self._nodes)
        if unknown:
            raise ValueError(f"brokers outside population: {sorted(unknown)}")

    @classmethod
    def top_fraction(
        cls, centrality: Dict[int, float], fraction: float
    ) -> "StaticBrokerSet":
        """The *fraction* most central nodes become brokers."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        ranked = sorted(centrality, key=lambda n: -centrality[n])
        count = max(1, round(len(ranked) * fraction))
        return cls(centrality.keys(), ranked[:count])

    def is_broker(self, node: int) -> bool:
        return node in self._brokers

    def brokers(self) -> Set[int]:
        return set(self._brokers)

    def broker_fraction(self) -> float:
        return len(self._brokers) / len(self._nodes)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    def on_contact(self, a: int, b: int, now: float) -> None:
        """No-op: the assignment is static."""

    def reset_node(self, node: int) -> None:
        """No-op: a pinned broker assignment survives crashes."""
