"""Online decaying-factor adaptation (paper Sec. VI-B).

"In practice, we can not get a close-form function of the DF and the
FPR.  However, we can tentatively adjust the DF, then re-adjust its
value by observing the resultant FPR; until a desirable FPR is
achieved."

The controller implements exactly that loop, decentralised per broker:

* the broker's relay-filter *fill ratio* is an observable; by Eq. 1/3
  the filter's own false-positive rate is ``FR^k``, so no probe traffic
  is needed;
* every ``interval_s`` of simulated time the controller compares the
  observed FPR against the target band and adjusts the DF
  multiplicatively — up when the filter is too full (too many stale
  interests -> false positives), down when it is emptier than needed
  (delivery scope is being strangled for no FPR benefit).

A second mode closes the loop on the *measured* signal instead of the
analytic one: with ``mode="attribution"`` the controller ignores fill
ratios and consumes the live false-injection outcomes the PR-5 lineage
taxonomy attributes on every producer->broker replication (the same
per-event ``is_false`` bit ``bsub analyze`` aggregates into
``relay_filter_fp``).  The broker then steers its DF so the observed
false-injection *ratio* over a sliding window hits the target — the
closest realisable form of the paper's "observe the resultant FPR"
sentence, since real FPRs are only visible as false injections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AdaptiveDecayConfig", "AdaptiveDecayController"]


@dataclass(frozen=True)
class AdaptiveDecayConfig:
    """Parameters of the Sec. VI-B adaptation loop.

    Attributes
    ----------
    target_fpr:
        The "desirable FPR" the broker steers towards.
    band:
        Relative tolerance around the target within which the DF is
        left alone (avoids oscillation).
    adjust_factor:
        Multiplicative step (> 1) applied per adjustment.
    min_df_per_s, max_df_per_s:
        Clamp range for the decaying factor.
    interval_s:
        Minimum simulated time between adjustments.
    mode:
        ``"fill_ratio"`` (default, the analytic Sec. VI-B loop) or
        ``"attribution"`` (steer on measured false-injection outcomes).
    target_false_ratio:
        Attribution mode's target: desired fraction of injections that
        are false over the observation window.
    min_injections:
        Attribution mode: injections that must accumulate in the window
        before an adjustment is considered (shields the controller from
        early small-sample noise).
    """

    target_fpr: float = 0.02
    band: float = 0.25
    adjust_factor: float = 1.3
    min_df_per_s: float = 1e-5
    max_df_per_s: float = 10.0
    interval_s: float = 1800.0
    mode: str = "fill_ratio"
    target_false_ratio: float = 0.2
    min_injections: int = 20

    def __post_init__(self):
        if not 0.0 < self.target_fpr < 1.0:
            raise ValueError(f"target_fpr must be in (0, 1), got {self.target_fpr}")
        if self.band < 0:
            raise ValueError("band must be >= 0")
        if self.adjust_factor <= 1.0:
            raise ValueError("adjust_factor must be > 1")
        if not 0 < self.min_df_per_s <= self.max_df_per_s:
            raise ValueError("need 0 < min_df_per_s <= max_df_per_s")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if self.mode not in ("fill_ratio", "attribution"):
            raise ValueError(
                "mode must be 'fill_ratio' or 'attribution', got "
                f"{self.mode!r}"
            )
        if not 0.0 < self.target_false_ratio < 1.0:
            raise ValueError(
                "target_false_ratio must be in (0, 1), got "
                f"{self.target_false_ratio}"
            )
        if self.min_injections < 1:
            raise ValueError(
                f"min_injections must be >= 1, got {self.min_injections}"
            )


class AdaptiveDecayController:
    """One broker's DF-tuning loop.

    Call :meth:`observe` with the broker's relay filter on every
    contact; the controller estimates the filter's FPR from its fill
    ratio and, at most once per ``interval_s``, writes an adjusted
    ``decay_factor`` back into the filter.
    """

    def __init__(self, config: AdaptiveDecayConfig, initial_df_per_s: float):
        self.config = config
        self._df = self._clamp(initial_df_per_s)
        self._last_adjust_time: Optional[float] = None
        self.adjustments = 0
        # Attribution-mode window tallies (unused in fill_ratio mode).
        self._injections = 0
        self._false_injections = 0

    @property
    def df_per_s(self) -> float:
        """The currently commanded decaying factor."""
        return self._df

    def _clamp(self, df: float) -> float:
        return min(max(df, self.config.min_df_per_s), self.config.max_df_per_s)

    @staticmethod
    def estimate_fpr(relay) -> float:
        """The relay filter's own FPR from its observable state.

        By Eq. 1 and Eq. 3, ``FPR = FR^k`` — the fill ratio raised to
        the number of hash functions.  Works for a single TCBF and for
        a Sec. VI-D collection (joint FPR over the constituent
        filters, Eq. 7).
        """
        filters = getattr(relay, "filters", None)
        if filters is None:
            filters = [relay]
        joint_correct = 1.0
        for filt in filters:
            if not hasattr(filt, "fill_ratio"):
                continue  # exact relays have no false positives at all
            joint_correct *= 1.0 - filt.fill_ratio() ** filt.num_hashes
        return 1.0 - joint_correct

    def observe(self, relay, now: float) -> bool:
        """Inspect *relay* at time *now*; returns True if the DF changed.

        The new DF is written into the relay filter(s) so the lazy
        decay picks it up from this instant onwards.  In attribution
        mode this is a no-op — :meth:`record_injection` drives the loop.
        """
        if self.config.mode == "attribution":
            return False
        if (
            self._last_adjust_time is not None
            and now - self._last_adjust_time < self.config.interval_s
        ):
            return False
        self._last_adjust_time = now
        fpr = self.estimate_fpr(relay)
        target = self.config.target_fpr
        if fpr > target * (1.0 + self.config.band):
            new_df = self._clamp(self._df * self.config.adjust_factor)
        elif fpr < target * (1.0 - self.config.band):
            new_df = self._clamp(self._df / self.config.adjust_factor)
        else:
            return False
        if new_df == self._df:
            return False
        self._df = new_df
        self._apply(relay)
        self.adjustments += 1
        return True

    def record_injection(self, is_false: bool, now: float, relay) -> bool:
        """Feed one attributed injection outcome; True if the DF changed.

        *is_false* is the live taxonomy bit — True when the relay
        filter's preferential query injected a message no current
        subscriber wants (a ``relay_filter_fp`` /
        ``genuine_but_stale`` outcome).  Once at least
        ``min_injections`` outcomes accumulated and ``interval_s`` has
        elapsed since the last adjustment, the observed false ratio is
        steered towards ``target_false_ratio`` exactly like the
        fill-ratio loop steers the analytic FPR; the window then
        resets.  No-op in fill-ratio mode.
        """
        if self.config.mode != "attribution":
            return False
        self._injections += 1
        if is_false:
            self._false_injections += 1
        if self._injections < self.config.min_injections:
            return False
        if (
            self._last_adjust_time is not None
            and now - self._last_adjust_time < self.config.interval_s
        ):
            return False
        ratio = self._false_injections / self._injections
        self._last_adjust_time = now
        self._injections = 0
        self._false_injections = 0
        target = self.config.target_false_ratio
        if ratio > target * (1.0 + self.config.band):
            new_df = self._clamp(self._df * self.config.adjust_factor)
        elif ratio < target * (1.0 - self.config.band):
            new_df = self._clamp(self._df / self.config.adjust_factor)
        else:
            return False
        if new_df == self._df:
            return False
        self._df = new_df
        self._apply(relay)
        self.adjustments += 1
        return True

    def _apply(self, relay) -> None:
        filters = getattr(relay, "filters", None)
        if filters is None:
            relay.decay_factor = self._df
        else:
            for filt in filters:
                filt.decay_factor = self._df
            relay.decay_factor = self._df
