"""Online decaying-factor adaptation (paper Sec. VI-B).

"In practice, we can not get a close-form function of the DF and the
FPR.  However, we can tentatively adjust the DF, then re-adjust its
value by observing the resultant FPR; until a desirable FPR is
achieved."

The controller implements exactly that loop, decentralised per broker:

* the broker's relay-filter *fill ratio* is an observable; by Eq. 1/3
  the filter's own false-positive rate is ``FR^k``, so no probe traffic
  is needed;
* every ``interval_s`` of simulated time the controller compares the
  observed FPR against the target band and adjusts the DF
  multiplicatively — up when the filter is too full (too many stale
  interests -> false positives), down when it is emptier than needed
  (delivery scope is being strangled for no FPR benefit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AdaptiveDecayConfig", "AdaptiveDecayController"]


@dataclass(frozen=True)
class AdaptiveDecayConfig:
    """Parameters of the Sec. VI-B adaptation loop.

    Attributes
    ----------
    target_fpr:
        The "desirable FPR" the broker steers towards.
    band:
        Relative tolerance around the target within which the DF is
        left alone (avoids oscillation).
    adjust_factor:
        Multiplicative step (> 1) applied per adjustment.
    min_df_per_s, max_df_per_s:
        Clamp range for the decaying factor.
    interval_s:
        Minimum simulated time between adjustments.
    """

    target_fpr: float = 0.02
    band: float = 0.25
    adjust_factor: float = 1.3
    min_df_per_s: float = 1e-5
    max_df_per_s: float = 10.0
    interval_s: float = 1800.0

    def __post_init__(self):
        if not 0.0 < self.target_fpr < 1.0:
            raise ValueError(f"target_fpr must be in (0, 1), got {self.target_fpr}")
        if self.band < 0:
            raise ValueError("band must be >= 0")
        if self.adjust_factor <= 1.0:
            raise ValueError("adjust_factor must be > 1")
        if not 0 < self.min_df_per_s <= self.max_df_per_s:
            raise ValueError("need 0 < min_df_per_s <= max_df_per_s")
        if self.interval_s <= 0:
            raise ValueError("interval_s must be positive")


class AdaptiveDecayController:
    """One broker's DF-tuning loop.

    Call :meth:`observe` with the broker's relay filter on every
    contact; the controller estimates the filter's FPR from its fill
    ratio and, at most once per ``interval_s``, writes an adjusted
    ``decay_factor`` back into the filter.
    """

    def __init__(self, config: AdaptiveDecayConfig, initial_df_per_s: float):
        self.config = config
        self._df = self._clamp(initial_df_per_s)
        self._last_adjust_time: Optional[float] = None
        self.adjustments = 0

    @property
    def df_per_s(self) -> float:
        """The currently commanded decaying factor."""
        return self._df

    def _clamp(self, df: float) -> float:
        return min(max(df, self.config.min_df_per_s), self.config.max_df_per_s)

    @staticmethod
    def estimate_fpr(relay) -> float:
        """The relay filter's own FPR from its observable state.

        By Eq. 1 and Eq. 3, ``FPR = FR^k`` — the fill ratio raised to
        the number of hash functions.  Works for a single TCBF and for
        a Sec. VI-D collection (joint FPR over the constituent
        filters, Eq. 7).
        """
        filters = getattr(relay, "filters", None)
        if filters is None:
            filters = [relay]
        joint_correct = 1.0
        for filt in filters:
            if not hasattr(filt, "fill_ratio"):
                continue  # exact relays have no false positives at all
            joint_correct *= 1.0 - filt.fill_ratio() ** filt.num_hashes
        return 1.0 - joint_correct

    def observe(self, relay, now: float) -> bool:
        """Inspect *relay* at time *now*; returns True if the DF changed.

        The new DF is written into the relay filter(s) so the lazy
        decay picks it up from this instant onwards.
        """
        if (
            self._last_adjust_time is not None
            and now - self._last_adjust_time < self.config.interval_s
        ):
            return False
        self._last_adjust_time = now
        fpr = self.estimate_fpr(relay)
        target = self.config.target_fpr
        if fpr > target * (1.0 + self.config.band):
            new_df = self._clamp(self._df * self.config.adjust_factor)
        elif fpr < target * (1.0 - self.config.band):
            new_df = self._clamp(self._df / self.config.adjust_factor)
        else:
            return False
        if new_df == self._df:
            return False
        self._df = new_df
        self._apply(relay)
        self.adjustments += 1
        return True

    def _apply(self, relay) -> None:
        filters = getattr(relay, "filters", None)
        if filters is None:
            relay.decay_factor = self._df
        else:
            for filt in filters:
                filt.decay_factor = self._df
            relay.decay_factor = self._df
