"""Wire protocol: the frames B-SUB exchanges during a contact.

The simulator charges transfer *sizes* to the contact bandwidth budget;
this module defines the actual byte layout those sizes correspond to,
so the protocol is deployable rather than merely simulated.  A contact
is a sequence of frames:

* ``HELLO`` — the identity exchange of Sec. V-C: node id, broker flag,
  and the node's current degree (the election's input).
* ``INTEREST_ANNOUNCEMENT`` — the consumer's genuine filter as a
  shared-counter TCBF (all counters equal ``C``), for the broker's
  A-merge.
* ``RELAY_FILTER`` — a broker's relay filter with counters (towards
  another broker, for the M-merge and preferential queries).
* ``FILTER_REQUEST`` — a counter-stripped filter: either a broker's
  relay filter sent to a producer ("when a broker requests messages
  from a source, it does not need to report the counters", Sec. V-D) or
  a consumer's interest BF.
* ``MESSAGE_BUNDLE`` — one or more messages (header + payload).
* ``SUBSCRIBE`` — the session-layer durable subscription frame (type
  bytes ``0x20`` and up are the live-broker session layer, see
  :mod:`repro.serve`): the consumer's exact interest keys in
  cleartext.  This is the wire form of the fact the paper leans on
  throughout — "a user's own subscription list is exact local state" —
  and is what lets a broker keep ground-truth interest sets (the
  ``interest_encoding="raw"`` model) across reconnects.

Every frame is ``[1-byte type][4-byte little-endian body length][body]``.
Frames are self-delimiting, so a contact transcript is just their
concatenation and can be cut short when the contact breaks — exactly
the truncation semantics the bandwidth budget models.

Decoding is *total*: :func:`decode_frames` never raises on garbage.
It returns a :class:`DecodeResult` — the frames decoded before the
first problem, plus an optional :class:`FrameError` describing what
stopped the parse (truncation, an unknown frame type, or a body that
fails validation).  Receivers in a faulty network (see
:mod:`repro.faults`) keep every frame that arrived intact and discard
the rest, instead of crashing on a flipped byte.

Decoding is also *incremental*: ``DecodeResult.consumed`` is the exact
byte count covered by cleanly decoded frames, so a streaming receiver
(a TCP session buffering partial reads) calls :func:`decode_frames` on
its buffer, keeps ``buffer[result.consumed:]`` as the leftover, and
treats ``truncated_header`` / ``truncated_body`` as "wait for more
bytes" rather than damage.  :class:`StreamDecoder` packages that
leftover-buffer contract (plus an oversized-declared-length guard) for
the live broker's sessions.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from ..core.bloom import BloomFilter
from ..core.hashing import HashFamily
from ..core.serialization import decode_bloom, decode_tcbf, encode_bloom, encode_tcbf
from ..core.tcbf import TemporalCountingBloomFilter
from .messages import Message

__all__ = [
    "Hello",
    "InterestAnnouncement",
    "RelayFilter",
    "FilterRequest",
    "MessageBundle",
    "Subscribe",
    "FrameError",
    "DecodeResult",
    "StreamDecoder",
    "encode_frame",
    "decode_frames",
    "encode_message",
    "decode_message",
]

FRAME_HELLO = 0x10
FRAME_INTEREST_ANNOUNCEMENT = 0x11
FRAME_RELAY_FILTER = 0x12
FRAME_FILTER_REQUEST = 0x13
FRAME_MESSAGE_BUNDLE = 0x14
# Session-layer frames (live broker, repro.serve) start at 0x20 so the
# contact-layer range keeps room for protocol growth; bytes between
# 0x15 and 0x1F remain deliberately unknown (the fuzz suite pins 0x15
# as a future-version byte that must be rejected).
FRAME_SUBSCRIBE = 0x20

_FRAME_HEADER = struct.Struct("<BI")  # type, body length
_HELLO_BODY = struct.Struct("<IBId")  # node id, broker flag, degree, time
_MESSAGE_HEADER = struct.Struct("<QIddBH")  # id, source, created, ttl, #keys, payload len


@dataclass(frozen=True)
class Hello:
    """Identity beacon: who am I, am I a broker, how connected am I."""

    node_id: int
    is_broker: bool
    degree: int
    time: float


@dataclass(frozen=True)
class InterestAnnouncement:
    """A consumer's genuine filter (shared-counter TCBF)."""

    filter: TemporalCountingBloomFilter


@dataclass(frozen=True)
class RelayFilter:
    """A broker's relay filter with per-bit counters."""

    filter: TemporalCountingBloomFilter


@dataclass(frozen=True)
class FilterRequest:
    """A counter-stripped filter used as a matching request."""

    filter: BloomFilter


@dataclass(frozen=True)
class MessageBundle:
    """One or more messages with payloads."""

    messages: Tuple[Message, ...]
    payloads: Tuple[bytes, ...]

    def __post_init__(self):
        if len(self.messages) != len(self.payloads):
            raise ValueError(
                f"{len(self.messages)} messages but {len(self.payloads)} payloads"
            )


@dataclass(frozen=True)
class Subscribe:
    """A consumer's exact, durable interest keys (session layer).

    Replaces the node's whole subscription set on receipt — sending it
    again is the live-broker form of the paper's genuine-filter
    re-announcement, and sending it with an updated key set is both
    subscribe and unsubscribe in one idempotent operation.
    """

    keys: Tuple[str, ...]

    def __post_init__(self):
        if len(self.keys) > 65535:
            raise ValueError("at most 65535 keys per subscribe frame")
        for key in self.keys:
            if not key:
                raise ValueError("subscription keys must be non-empty")
            if len(key.encode("utf-8")) > 255:
                raise ValueError("subscription keys are at most 255 bytes")


Frame = Union[
    Hello, InterestAnnouncement, RelayFilter, FilterRequest, MessageBundle,
    Subscribe,
]


@dataclass(frozen=True)
class FrameError:
    """Why a frame-stream parse stopped early.

    Attributes
    ----------
    offset:
        Byte offset of the offending frame's header in the input.
    frame_type:
        The frame's declared type byte, when the header was readable.
    reason:
        ``"truncated_header"`` — fewer than 5 header bytes remained;
        ``"truncated_body"`` — the declared body length runs past the
        end of the buffer (never over-read);
        ``"oversized_body"`` — the declared body length exceeds the
        caller's ``max_body_len`` bound (a hostile or corrupted length
        a streaming receiver must not wait to buffer);
        ``"unknown_frame_type"`` — an unrecognised type byte (a flipped
        bit, or a frame from a future protocol version);
        ``"bad_body"`` — the body failed structural validation while
        decoding.
    detail:
        Free-form diagnostic text.
    """

    offset: int
    frame_type: Optional[int]
    reason: str
    detail: str = ""


@dataclass(frozen=True)
class DecodeResult:
    """The outcome of parsing a (possibly damaged) frame stream.

    Iterable and indexable like the frame list; :attr:`ok` is True when
    the whole input parsed cleanly.  ``consumed`` is the number of
    input bytes covered by successfully decoded frames — everything
    after it was truncated or rejected.
    """

    frames: Tuple[Frame, ...]
    error: Optional[FrameError]
    consumed: int

    @property
    def ok(self) -> bool:
        return self.error is None

    def __iter__(self) -> Iterator[Frame]:
        return iter(self.frames)

    def __len__(self) -> int:
        return len(self.frames)

    def __getitem__(self, index):
        return self.frames[index]


# -- message codec -----------------------------------------------------------


def encode_message(message: Message, payload: Optional[bytes] = None) -> bytes:
    """Serialise one message (header + payload).

    The payload defaults to ``size_bytes`` zero bytes — the simulator
    carries sizes, not content — but real content of exactly
    ``size_bytes`` bytes is accepted.
    """
    if payload is None:
        payload = bytes(message.size_bytes)
    if len(payload) != message.size_bytes:
        raise ValueError(
            f"payload is {len(payload)} bytes; message declares "
            f"{message.size_bytes}"
        )
    keys = sorted(message.keys)
    if len(keys) > 255:
        raise ValueError("at most 255 keys per message on the wire")
    header = _MESSAGE_HEADER.pack(
        message.id,
        message.source,
        message.created_at,
        message.ttl_s,
        len(keys),
        message.size_bytes,
    )
    key_block = b"".join(
        len(k.encode("utf-8")).to_bytes(1, "little") + k.encode("utf-8")
        for k in keys
    )
    return header + key_block + payload


def decode_message(data: bytes, offset: int = 0) -> Tuple[Message, bytes, int]:
    """Decode one message at *offset*; returns (message, payload, next offset).

    The decoded :class:`Message` preserves the original id (it is not
    re-allocated), so receipt bookkeeping stays consistent end-to-end.
    """
    if offset + _MESSAGE_HEADER.size > len(data):
        raise ValueError("truncated message header")
    msg_id, source, created_at, ttl_s, num_keys, payload_len = (
        _MESSAGE_HEADER.unpack_from(data, offset)
    )
    offset += _MESSAGE_HEADER.size
    keys = []
    for _ in range(num_keys):
        if offset >= len(data):
            raise ValueError("truncated message key block")
        length = data[offset]
        offset += 1
        if offset + length > len(data):
            raise ValueError("truncated message key")
        keys.append(data[offset : offset + length].decode("utf-8"))
        offset += length
    payload = bytes(data[offset : offset + payload_len])
    if len(payload) != payload_len:
        raise ValueError("truncated message payload")
    offset += payload_len
    message = Message(
        id=msg_id,
        keys=frozenset(keys),
        source=source,
        created_at=created_at,
        ttl_s=ttl_s,
        size_bytes=payload_len,
    )
    return message, payload, offset


# -- frame codec ---------------------------------------------------------------


def _frame(frame_type: int, body: bytes) -> bytes:
    return _FRAME_HEADER.pack(frame_type, len(body)) + body


def encode_frame(frame: Frame) -> bytes:
    """Serialise one frame (type + length + body)."""
    if isinstance(frame, Hello):
        body = _HELLO_BODY.pack(
            frame.node_id, int(frame.is_broker), frame.degree, frame.time
        )
        return _frame(FRAME_HELLO, body)
    if isinstance(frame, InterestAnnouncement):
        return _frame(
            FRAME_INTEREST_ANNOUNCEMENT,
            encode_tcbf(frame.filter, counters="identical"),
        )
    if isinstance(frame, RelayFilter):
        return _frame(FRAME_RELAY_FILTER, encode_tcbf(frame.filter, counters="full"))
    if isinstance(frame, FilterRequest):
        return _frame(FRAME_FILTER_REQUEST, encode_bloom(frame.filter))
    if isinstance(frame, MessageBundle):
        parts = [len(frame.messages).to_bytes(2, "little")]
        parts.extend(
            encode_message(m, p) for m, p in zip(frame.messages, frame.payloads)
        )
        return _frame(FRAME_MESSAGE_BUNDLE, b"".join(parts))
    if isinstance(frame, Subscribe):
        parts = [len(frame.keys).to_bytes(2, "little")]
        parts.extend(
            len(k.encode("utf-8")).to_bytes(1, "little") + k.encode("utf-8")
            for k in frame.keys
        )
        return _frame(FRAME_SUBSCRIBE, b"".join(parts))
    raise TypeError(f"not a wire frame: {type(frame).__name__}")


_KNOWN_FRAME_TYPES = frozenset(
    (
        FRAME_HELLO,
        FRAME_INTEREST_ANNOUNCEMENT,
        FRAME_RELAY_FILTER,
        FRAME_FILTER_REQUEST,
        FRAME_MESSAGE_BUNDLE,
        FRAME_SUBSCRIBE,
    )
)


def _decode_body(
    frame_type: int,
    body: bytes,
    family: HashFamily,
    initial_value: float,
    decay_factor: float,
    time: float,
) -> Frame:
    """Decode one validated-length frame body (raises on bad content)."""
    if frame_type == FRAME_HELLO:
        node_id, broker_flag, degree, timestamp = _HELLO_BODY.unpack(body)
        return Hello(node_id, bool(broker_flag), degree, timestamp)
    if frame_type == FRAME_INTEREST_ANNOUNCEMENT:
        return InterestAnnouncement(
            decode_tcbf(body, family, initial_value, decay_factor, time)
        )
    if frame_type == FRAME_RELAY_FILTER:
        return RelayFilter(
            decode_tcbf(body, family, initial_value, decay_factor, time)
        )
    if frame_type == FRAME_FILTER_REQUEST:
        return FilterRequest(decode_bloom(body, family))
    if frame_type == FRAME_SUBSCRIBE:
        if len(body) < 2:
            raise ValueError("truncated subscribe count")
        key_count = int.from_bytes(body[:2], "little")
        subscribe_keys: List[str] = []
        position = 2
        for _ in range(key_count):
            if position >= len(body):
                raise ValueError("truncated subscribe key block")
            length = body[position]
            position += 1
            if position + length > len(body):
                raise ValueError("truncated subscribe key")
            subscribe_keys.append(
                body[position : position + length].decode("utf-8")
            )
            position += length
        if position != len(body):
            raise ValueError(
                f"{len(body) - position} trailing bytes after subscribe keys"
            )
        return Subscribe(tuple(subscribe_keys))
    # FRAME_MESSAGE_BUNDLE
    if len(body) < 2:
        raise ValueError("truncated bundle count")
    count = int.from_bytes(body[:2], "little")
    messages: List[Message] = []
    payloads: List[bytes] = []
    cursor = 2
    for _ in range(count):
        message, payload, cursor = decode_message(body, cursor)
        messages.append(message)
        payloads.append(payload)
    return MessageBundle(tuple(messages), tuple(payloads))


#: FrameError reasons that mean "the tail might still be completed by
#: more bytes" — the incremental half of the decode contract.  Every
#: other reason is damage: more input cannot repair it.
RESUMABLE_REASONS = frozenset(("truncated_header", "truncated_body"))


def decode_frames(
    data: bytes,
    family: HashFamily,
    initial_value: float,
    decay_factor: float = 0.0,
    time: float = 0.0,
    max_body_len: Optional[int] = None,
) -> DecodeResult:
    """Decode a contact transcript back into frames — never raises.

    Parsing stops at the first problem: a trailing partial frame (the
    contact broke mid-transfer — received prefixes of a frame are
    useless), an unrecognised type byte, a declared body length running
    past the buffer (rejected *without* over-reading), or a body that
    fails structural validation.  Everything decoded before that point
    is returned; the problem itself is described by
    :attr:`DecodeResult.error` (``None`` for a clean parse).

    **Leftover-buffer contract (incremental decoding).**  The function
    is usable as a streaming decoder: ``consumed`` always lands on a
    frame boundary, so a receiver accumulating partial reads decodes
    its buffer, processes ``result.frames``, and carries
    ``buffer[result.consumed:]`` forward into the next read.  An error
    whose ``reason`` is in :data:`RESUMABLE_REASONS` (``truncated_header``
    / ``truncated_body``) is not damage in that setting — it merely
    marks where the undecoded tail begins — while any other reason is
    unrecoverable for a length-prefixed stream (there is no way to
    resynchronise past a lying header).  :class:`StreamDecoder` wraps
    this contract.

    ``max_body_len`` bounds the declared body length a caller is
    willing to buffer: a header declaring more is rejected as
    ``oversized_body`` (non-resumable) *before* any waiting-for-bytes,
    so a hostile 4 GiB length can never pin a session's memory.
    """
    frames: List[Frame] = []
    offset = 0
    error: Optional[FrameError] = None
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            error = FrameError(
                offset, None, "truncated_header",
                f"{len(data) - offset} header bytes of {_FRAME_HEADER.size}",
            )
            break
        frame_type, body_len = _FRAME_HEADER.unpack_from(data, offset)
        if frame_type not in _KNOWN_FRAME_TYPES:
            error = FrameError(
                offset, frame_type, "unknown_frame_type",
                f"type byte {frame_type:#x}",
            )
            break
        if max_body_len is not None and body_len > max_body_len:
            error = FrameError(
                offset, frame_type, "oversized_body",
                f"declared {body_len} body bytes exceeds the "
                f"{max_body_len}-byte bound",
            )
            break
        start = offset + _FRAME_HEADER.size
        end = start + body_len
        if end > len(data):
            error = FrameError(
                offset, frame_type, "truncated_body",
                f"declared {body_len} body bytes, {len(data) - start} remain",
            )
            break
        body = bytes(data[start:end])
        try:
            frame = _decode_body(
                frame_type, body, family, initial_value, decay_factor, time
            )
        except (ValueError, struct.error, IndexError, KeyError, OverflowError) as exc:
            error = FrameError(offset, frame_type, "bad_body", str(exc))
            break
        frames.append(frame)
        offset = end
    return DecodeResult(frames=tuple(frames), error=error, consumed=offset)


class StreamDecoder:
    """Incremental frame decoder for a byte stream (one per session).

    Feed it the chunks a socket yields — split mid-frame, coalescing
    several frames, or one byte at a time — and it returns the frames
    completed so far, holding the unfinished tail in an internal
    buffer.  The contract mirrors :func:`decode_frames`:

    * ``feed(chunk)`` returns a :class:`DecodeResult` whose ``frames``
      are newly completed frames and whose ``error`` is ``None`` while
      the stream is merely mid-frame (resumable truncation is the
      *expected* steady state, not an error).
    * A non-resumable problem (unknown type byte, oversized declared
      length, a body failing validation) sets :attr:`fatal` and is
      returned as the result's ``error``; a length-prefixed stream
      cannot resynchronise past it, so the session must be dropped.
      Further ``feed`` calls return the same error and no frames.
    * ``pending`` exposes the buffered tail size; ``at_boundary`` is
      True when the stream currently sits exactly on a frame boundary
      (the clean-disconnect test: EOF mid-frame means the peer died
      mid-transfer).

    ``max_frame_bytes`` bounds both the declared body length *and* the
    buffered tail, so a peer can never grow the buffer past one
    maximum-size frame plus one chunk.
    """

    __slots__ = (
        "family", "initial_value", "decay_factor", "max_frame_bytes",
        "_buffer", "_fatal", "bytes_fed", "frames_decoded",
    )

    def __init__(
        self,
        family: HashFamily,
        initial_value: float,
        decay_factor: float = 0.0,
        max_frame_bytes: int = 1 << 20,
    ):
        if max_frame_bytes < 1:
            raise ValueError(
                f"max_frame_bytes must be >= 1, got {max_frame_bytes}"
            )
        self.family = family
        self.initial_value = initial_value
        self.decay_factor = decay_factor
        self.max_frame_bytes = max_frame_bytes
        self._buffer = b""
        self._fatal: Optional[FrameError] = None
        self.bytes_fed = 0
        self.frames_decoded = 0

    @property
    def fatal(self) -> Optional[FrameError]:
        """The unrecoverable error that poisoned the stream, if any."""
        return self._fatal

    @property
    def pending(self) -> int:
        """Bytes buffered waiting for the rest of a frame."""
        return len(self._buffer)

    @property
    def at_boundary(self) -> bool:
        """True when no partial frame is buffered (clean cut point)."""
        return not self._buffer and self._fatal is None

    def feed(self, chunk: bytes, time: float = 0.0) -> DecodeResult:
        """Absorb *chunk*; return the frames it completed.

        ``time`` is passed through to TCBF body decoding (the
        receiver's clock, for decay alignment).  Never raises.
        """
        if self._fatal is not None:
            return DecodeResult(frames=(), error=self._fatal, consumed=0)
        self.bytes_fed += len(chunk)
        data = self._buffer + chunk if self._buffer else chunk
        result = decode_frames(
            data,
            self.family,
            self.initial_value,
            self.decay_factor,
            time=time,
            max_body_len=self.max_frame_bytes,
        )
        self.frames_decoded += len(result.frames)
        if result.error is None or result.error.reason in RESUMABLE_REASONS:
            # Mid-frame is the steady state: keep the tail, report no
            # error, and wait for the next chunk.
            self._buffer = data[result.consumed:]
            return DecodeResult(
                frames=result.frames, error=None, consumed=result.consumed
            )
        self._fatal = result.error
        self._buffer = b""
        return result
