"""Additional DTN baselines beyond the paper's PUSH/PULL.

**Extension, not reproduction**: the paper compares B-SUB only against
flooding and one-hop collection.  The classic quota-based DTN scheme —
binary *Spray and Wait* (Spyropoulos et al., WDTN'05) — sits between
those extremes and makes the comparison landscape more informative:
like B-SUB it bounds per-message copies; unlike B-SUB it is content- and
social-agnostic, so the gap between them isolates what B-SUB's
interest-driven, socially-aware relaying actually buys.

Adaptation to the pub-sub setting: destinations are unknown, so the
*wait*-phase direct delivery targets any encountered node whose
interests match the message (exact matching — like PUSH/PULL, this
baseline uses no Bloom filters and never delivers falsely).
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..dtn.bandwidth import ContactChannel
from ..dtn.simulator import Protocol
from ..traces.model import Contact, ContactTrace
from .messages import Message
from .metrics import MetricsCollector

__all__ = ["SprayAndWaitProtocol"]


class SprayAndWaitProtocol(Protocol):
    """Binary Spray and Wait, content-delivery flavoured.

    Each message starts with ``initial_copies`` logical copies at its
    producer.  A carrier holding ``c > 1`` copies that meets a node
    without the message hands over ``⌊c/2⌋`` of them (*spray*); a
    carrier down to one copy only passes the message to genuinely
    interested consumers (*wait*).  Interested consumers always get the
    message on contact, regardless of phase.
    """

    name = "SPRAY"

    def __init__(
        self,
        interests: Dict[int, FrozenSet[str]],
        metrics: MetricsCollector,
        initial_copies: int = 8,
    ):
        if initial_copies < 1:
            raise ValueError(
                f"initial_copies must be >= 1, got {initial_copies}"
            )
        self.interests = interests
        self.metrics = metrics
        self.initial_copies = initial_copies
        # node -> message id -> (message, copies held)
        self.carried: Dict[int, Dict[int, Tuple[Message, int]]] = {}
        self.received: Dict[int, Set[int]] = {}
        self._expiry: Dict[int, List[Tuple[float, int]]] = {}

    def setup(self, trace: ContactTrace) -> None:
        self.carried = {node: {} for node in trace.nodes}
        self.received = {node: set() for node in trace.nodes}
        self._expiry = {node: [] for node in trace.nodes}

    def on_message_created(self, node: int, message: Message, now: float) -> None:
        self.metrics.register_message(message)
        self.carried[node][message.id] = (message, self.initial_copies)
        self.received[node].add(message.id)
        heapq.heappush(self._expiry[node], (message.expires_at, message.id))

    def _purge(self, node: int, now: float) -> None:
        heap = self._expiry[node]
        while heap and heap[0][0] < now:
            _, message_id = heapq.heappop(heap)
            self.carried[node].pop(message_id, None)

    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        a, b = contact.a, contact.b
        self._purge(a, now)
        self._purge(b, now)
        self._exchange(a, b, channel, now)
        self._exchange(b, a, channel, now)

    def _exchange(
        self, sender: int, receiver: int, channel: ContactChannel, now: float
    ) -> None:
        receiver_interests = self.interests.get(receiver, frozenset())
        receiver_received = self.received[receiver]
        receiver_carried = self.carried[receiver]
        for message_id in sorted(self.carried[sender]):
            entry = self.carried[sender].get(message_id)
            if entry is None:
                continue
            message, copies = entry
            interested = bool(message.keys & receiver_interests)
            already_has = message_id in receiver_received
            if already_has:
                continue
            if interested:
                # direct delivery — costs a transmission, not a copy
                if not channel.send(
                    message.size_bytes, sender=sender, receiver=receiver
                ):
                    return
                self.metrics.record_forwarding(message)
                receiver_received.add(message_id)
                self.metrics.record_delivery(message, receiver, now)
                continue
            if copies > 1:
                # spray half the quota to the uninfected peer
                if not channel.send(
                    message.size_bytes, sender=sender, receiver=receiver
                ):
                    return
                self.metrics.record_forwarding(message)
                handed = copies // 2
                self.carried[sender][message_id] = (message, copies - handed)
                receiver_carried[message_id] = (message, handed)
                receiver_received.add(message_id)
                heapq.heappush(
                    self._expiry[receiver], (message.expires_at, message_id)
                )

    def total_copies_in_flight(self) -> int:
        """Sum of copy quotas across all carriers (bounded by L per msg)."""
        return sum(
            copies
            for per_node in self.carried.values()
            for _, copies in per_node.values()
        )
