"""The B-SUB protocol (paper Sec. V).

One :class:`BsubProtocol` instance manages every node's state and
implements the full contact procedure:

1. **Identity exchange & election** — both endpoints learn each other's
   role and run the Sec. V-B broker-allocation rules.
2. **Interest propagation** (Sec. V-C) — any node meeting a broker
   uploads its genuine filter, which the broker **A-merges** into its
   relay filter (repeat meetings *reinforce* the counters); two brokers
   exchange relay filters and **M-merge** them (max counters prevent
   the Fig. 6 bogus-counter loop).
3. **Message forwarding** (Sec. V-D) —

   * *direct*: each endpoint sends its interests as a counter-stripped
     BF; the peer forwards matching buffered messages (false positives
     in this BF are exactly the falsely-delivered messages Fig. 9(d)
     measures);
   * *producer → broker*: the broker sends its relay filter stripped of
     counters; the producer replicates matching own messages, up to the
     copy limit ℂ, to distinct brokers;
   * *broker → broker*: carried messages are ranked by the
     **preferential query** against the peer's pre-merge relay filter
     and forwarded largest-positive-preference-first; forwarded
     messages leave the sender's buffer.

Every transmission — filters included — is charged to the contact's
bandwidth budget; what doesn't fit doesn't happen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..core.analysis import filter_memory_bytes
from ..core.filter_zoo import parse_filter_spec
from ..core.hashing import DEFAULT_SEED, HashFamily
from ..core.tcbf import DEFAULT_INITIAL_VALUE, TemporalCountingBloomFilter
from ..dtn.bandwidth import ContactChannel
from ..dtn.simulator import Protocol
from ..obs.introspect import relay_max_counter
from ..obs.recorder import NULL_RECORDER
from ..obs.registry import MetricsRegistry
from ..traces.model import Contact, ContactTrace
from .adaptive import AdaptiveDecayConfig, AdaptiveDecayController
from .broker_allocation import FIVE_HOURS_S, BrokerElection, StaticBrokerSet
from .exact import raw_interest_wire_bytes
from .messages import DEFAULT_COPY_LIMIT, Message
from .metrics import MetricsCollector
from .node import BsubNodeState

__all__ = ["BsubConfig", "BsubProtocol"]

#: Fixed per-filter wire header (format tag + geometry + counter scale).
_FILTER_HEADER_BYTES = 9.0


@dataclass(frozen=True)
class BsubConfig:
    """Tunable parameters of B-SUB (defaults = the paper's Sec. VII-A).

    Attributes
    ----------
    num_bits, num_hashes:
        Filter geometry (256 bits, 4 hashes).
    seed:
        Hash-family seed shared network-wide.
    initial_value:
        TCBF counter initial value ``C`` (50).
    decay_factor_per_min:
        DF, in counter units per *minute* (the paper's Fig. 9 axis
        unit).  0 disables decay.
    copy_limit:
        ℂ — max replicas a producer hands to brokers (3).
    election_lower, election_upper:
        ``T_l`` / ``T_u`` broker-election thresholds (3 and 5).
    election_window_s:
        ``W`` (5 hours).
    broker_broker_additive_merge:
        Ablation switch: use A-merge instead of M-merge between brokers
        to reproduce the Fig. 6 bogus-counter pathology.
    static_brokers:
        When set, disables the election and pins exactly these nodes as
        brokers for the whole run (tests and election ablations).
    relay_fill_threshold, relay_max_filters:
        When ``relay_fill_threshold`` is set, relays use the Sec. VI-D
        dynamic multi-TCBF allocation: a new filter is grown whenever
        the current one's fill ratio exceeds the threshold, up to
        ``relay_max_filters``.  Use :func:`repro.core.plan_allocation`
        to derive both from a memory bound.
    adaptive_df:
        When set, each broker runs the Sec. VI-B online DF-adjustment
        loop (:class:`~repro.pubsub.adaptive.AdaptiveDecayController`)
        seeded from ``decay_factor_per_min``.
    carried_capacity, eviction:
        Broker buffer bound and its policy (``"oldest"`` evicts the
        earliest-expiring carried message, ``"reject"`` refuses
        incoming); ``None`` capacity = unbounded, the paper's implicit
        setting.
    interest_encoding:
        ``"tcbf"`` (the paper's design) or ``"raw"`` — the Sec. IV-B
        ablation where interests travel as exact strings: zero false
        positives, but control traffic pays full raw-string sizes.
    filter_spec:
        A :mod:`repro.core.filter_zoo` spec string selecting the relay
        filter implementation (``"multi"``, ``"retouched:clear=3+17"``,
        ``"countbf:rows=16"``, ...).  ``None`` (default) keeps the
        paper's single array-backed TCBF relay byte-identical.
        Mutually exclusive with ``relay_fill_threshold`` (use
        ``"multi:..."``) and the ``"raw"`` interest encoding.
    """

    num_bits: int = 256
    num_hashes: int = 4
    seed: int = DEFAULT_SEED
    initial_value: float = DEFAULT_INITIAL_VALUE
    decay_factor_per_min: float = 0.0
    copy_limit: int = DEFAULT_COPY_LIMIT
    election_lower: int = 3
    election_upper: int = 5
    election_window_s: float = FIVE_HOURS_S
    broker_broker_additive_merge: bool = False
    static_brokers: Optional[Tuple[int, ...]] = None
    relay_fill_threshold: Optional[float] = None
    relay_max_filters: Optional[int] = None
    adaptive_df: Optional[AdaptiveDecayConfig] = None
    carried_capacity: Optional[int] = None
    eviction: str = "oldest"
    interest_encoding: str = "tcbf"
    filter_spec: Optional[str] = None

    def __post_init__(self):
        if self.decay_factor_per_min < 0:
            raise ValueError("decay_factor_per_min must be >= 0")
        if self.interest_encoding not in ("tcbf", "raw"):
            raise ValueError(
                f"interest_encoding must be 'tcbf' or 'raw', got "
                f"{self.interest_encoding!r}"
            )
        if self.filter_spec is not None:
            if self.interest_encoding == "raw":
                raise ValueError(
                    "filter_spec only applies to the TCBF encoding"
                )
            if self.relay_fill_threshold is not None:
                raise ValueError(
                    "filter_spec and relay_fill_threshold are mutually "
                    "exclusive relay selectors (use 'multi:threshold=...')"
                )
            parse_filter_spec(self.filter_spec)  # fail fast on bad specs

    @property
    def decay_factor_per_s(self) -> float:
        return self.decay_factor_per_min / 60.0


class BsubProtocol(Protocol):
    """B-SUB over a trace-driven DTN simulation."""

    name = "B-SUB"

    def __init__(
        self,
        interests: Dict[int, FrozenSet[str]],
        metrics: MetricsCollector,
        config: Optional[BsubConfig] = None,
        recorder=NULL_RECORDER,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.config = config or BsubConfig()
        self.interests = interests
        self.metrics = metrics
        self.recorder = recorder
        self.registry = registry
        self.family = HashFamily(
            self.config.num_hashes, self.config.num_bits, self.config.seed
        )
        self.states: Dict[int, BsubNodeState] = {}
        self.election: Optional[BrokerElection] = None
        self.df_controllers: Dict[int, AdaptiveDecayController] = {}
        # Always-on protocol-operation tallies (plain int increments on
        # contact-level operations; harvested into the registry at
        # finish()).  Kept outside the recorder so the metrics document
        # is identical whether or not event tracing ran.
        self.op_counts: Dict[str, int] = {
            "a_merge_broker": 0,
            "a_merge_consumer": 0,
            "decay_ticks": 0,
            "deliveries": 0,
            "forward_direct": 0,
            "forward_inject": 0,
            "forward_relay": 0,
            "m_merge": 0,
        }

    # -- engine hooks ------------------------------------------------------------

    def setup(self, trace: ContactTrace) -> None:
        """Build per-node state and the broker election for *trace*."""
        cfg = self.config
        start = trace.start_time
        self.states = {
            node: self._fresh_state(node, start) for node in trace.nodes
        }
        if cfg.adaptive_df is not None:
            self.df_controllers = {
                node: AdaptiveDecayController(
                    cfg.adaptive_df, initial_df_per_s=cfg.decay_factor_per_s
                )
                for node in trace.nodes
            }
        if cfg.static_brokers is not None:
            self.election = StaticBrokerSet(trace.nodes, cfg.static_brokers)
        else:
            self.election = BrokerElection(
                trace.nodes,
                lower_bound=cfg.election_lower,
                upper_bound=cfg.election_upper,
                window_s=cfg.election_window_s,
                recorder=self.recorder,
            )

    def _fresh_state(self, node: int, start_time: float) -> BsubNodeState:
        """A from-scratch state for *node*, as if it just booted."""
        cfg = self.config
        return BsubNodeState(
            node_id=node,
            interests=self.interests.get(node, frozenset()),
            family=self.family,
            initial_value=cfg.initial_value,
            decay_factor=cfg.decay_factor_per_s,
            copy_limit=cfg.copy_limit,
            start_time=start_time,
            relay_fill_threshold=cfg.relay_fill_threshold,
            relay_max_filters=cfg.relay_max_filters,
            carried_capacity=cfg.carried_capacity,
            eviction=cfg.eviction,
            interest_encoding=cfg.interest_encoding,
            filter_spec=cfg.filter_spec,
        )

    def on_message_created(self, node: int, message: Message, now: float) -> None:
        """A producer creates *message*: buffer it with a ℂ-copy budget."""
        self.metrics.register_message(message)
        self.states[node].produce(message)
        if self.recorder.enabled:
            self.recorder.emit(
                "create", t=now, msg=self.metrics.message_index(message),
                node=node, size=float(message.size_bytes),
                ttl=float(message.ttl_s),
                num_intended=self.metrics.num_intended_recipients(message),
            )

    def on_node_crashed(self, node: int, now: float, mode: str = "wipe") -> None:
        """Churn: *node* loses its volatile B-SUB state.

        Buffers (own + carried messages), receipt bookkeeping, copy
        budgets, and the broker role are always lost — they live in
        RAM.  Under ``mode="age"`` the relay filter survives (modelling
        filters checkpointed to flash) and simply keeps decaying
        through the outage via its lazy-decay clock; under ``"wipe"``
        it is lost too.  The genuine filter is rebuilt either way: a
        user's subscription list is durable configuration.

        Recovery needs no dedicated protocol machinery — re-announcing
        the genuine filter on the next broker contact (Sec. V-C) is the
        system's natural anti-entropy, which is exactly what the paper
        relies on for interest freshness.
        """
        state = self.states.get(node)
        if state is None:
            return
        old_relay = state.relay
        fresh = self._fresh_state(node, now)
        if mode == "age":
            fresh.relay = old_relay
        self.states[node] = fresh
        self.election.reset_node(node)
        if self.df_controllers:
            cfg = self.config
            self.df_controllers[node] = AdaptiveDecayController(
                cfg.adaptive_df, initial_df_per_s=cfg.decay_factor_per_s
            )

    def on_node_recovered(self, node: int, now: float) -> None:
        """Churn: *node* is back online.

        Nothing to do — the crash handler already left a bootable fresh
        state, and the election/interest layers re-converge through
        ordinary contacts.
        """

    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        """Run the full Sec. V contact procedure between the endpoints:
        election, interest propagation, and the three forwarding
        exchanges (see the module docstring for the walkthrough)."""
        a, b = contact.a, contact.b
        recorder = self.recorder
        self.election.on_contact(a, b, now)
        sa, sb = self.states[a], self.states[b]
        sa.purge_expired(now)
        sb.purge_expired(now)
        for state in (sa, sb):
            ticking = (
                state.relay.decay_factor > 0 and now > state.relay.time
            )
            if ticking:
                self.op_counts["decay_ticks"] += 1
                if recorder.enabled:
                    dt = now - state.relay.time
                    bits_before = len(state.relay)
                    state.relay.advance(now)
                    recorder.emit(
                        "decay_tick", t=now, node=state.node_id, dt=dt,
                        df=float(state.relay.decay_factor),
                        set_bits_before=bits_before,
                        set_bits_after=len(state.relay),
                    )
                    continue
            state.relay.advance(now)
        a_is_broker = self.election.is_broker(a)
        b_is_broker = self.election.is_broker(b)

        # Sec. VI-B: brokers re-tune their DF from the observed FPR.
        if self.df_controllers:
            if a_is_broker:
                self.df_controllers[a].observe(sa.relay, now)
            if b_is_broker:
                self.df_controllers[b].observe(sb.relay, now)

        # Snapshot relay filters: all matching/preference decisions in
        # this contact use pre-merge state (Sec. V-D: brokers "make
        # message forwarding decisions before merging").
        relay_snap_a = sa.relay.copy() if a_is_broker else None
        relay_snap_b = sb.relay.copy() if b_is_broker else None

        # -- control plane: interest filters ---------------------------------
        # Genuine filters travel whenever the peer needs them: as a
        # counter-carrying TCBF towards a broker (serves both the
        # A-merge and delivery matching), as a stripped BF otherwise.
        genuine_a_arrives = self._send_genuine(
            sa, towards_broker=b_is_broker, channel=channel, receiver=b
        )
        genuine_b_arrives = self._send_genuine(
            sb, towards_broker=a_is_broker, channel=channel, receiver=a
        )
        if genuine_a_arrives and b_is_broker:
            self._absorb_interests(sb, sa, now)
        if genuine_b_arrives and a_is_broker:
            self._absorb_interests(sa, sb, now)

        # Relay filters: full (with counters) between brokers, stripped
        # towards producers for the pull-by-filter request.
        relay_a_arrives = relay_b_arrives = False
        if a_is_broker:
            relay_a_arrives = channel.send(
                self._relay_wire_bytes(sa, full=b_is_broker), sender=a, receiver=b
            )
        if b_is_broker:
            relay_b_arrives = channel.send(
                self._relay_wire_bytes(sb, full=a_is_broker), sender=b, receiver=a
            )

        # -- data plane --------------------------------------------------------
        # 1. Direct delivery both ways (producer/broker -> consumer).
        if genuine_b_arrives:
            self._deliver_matching(sa, sb, channel, now)
        if genuine_a_arrives:
            self._deliver_matching(sb, sa, channel, now)

        # 2. Producer -> broker replication (the ℂ-copy relay path).
        if b_is_broker and relay_b_arrives:
            self._replicate_to_broker(sa, sb, relay_snap_b, channel, now)
        if a_is_broker and relay_a_arrives:
            self._replicate_to_broker(sb, sa, relay_snap_a, channel, now)

        # 3. Broker <-> broker preferential forwarding, then merge.
        if a_is_broker and b_is_broker:
            if relay_a_arrives:
                self._forward_broker_to_broker(
                    sb, sa, relay_snap_a, relay_snap_b, channel, now
                )
            if relay_b_arrives:
                self._forward_broker_to_broker(
                    sa, sb, relay_snap_b, relay_snap_a, channel, now
                )
            additive = self.config.broker_broker_additive_merge
            if relay_b_arrives:
                self._merge_relay(sa, b, relay_snap_b, additive, now)
            if relay_a_arrives:
                self._merge_relay(sb, a, relay_snap_a, additive, now)

    def finish(self, now: float) -> None:
        """Harvest end-of-run state into the metrics registry (if any).

        Delivery/forwarding metrics were recorded online by the
        :class:`MetricsCollector`; this adds the protocol-internal view
        — operation tallies, election churn, and per-node buffer/filter
        distributions — none of which changes behaviour.
        """
        registry = self.registry
        if registry is None:
            return
        for name in sorted(self.op_counts):
            registry.counter(f"bsub_{name}_total").inc(self.op_counts[name])
        registry.counter("bsub_broker_promotions_total").inc(
            getattr(self.election, "promotions", 0)
        )
        registry.counter("bsub_broker_demotions_total").inc(
            getattr(self.election, "demotions", 0)
        )
        registry.gauge("bsub_broker_fraction").set(self.broker_fraction())
        registry.gauge("bsub_buffered_messages").set(self.buffered_message_count())
        fill = registry.histogram(
            "bsub_relay_fill_ratio",
            edges=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
        )
        received = registry.histogram(
            "bsub_node_received_messages",
            edges=(0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0),
        )
        for node in sorted(self.states):
            stats = self.states[node].obs_stats()
            fill.observe(stats["relay_fill_ratio"])
            received.observe(stats["received"])
            for key in ("purged", "evictions", "rejected_carries"):
                registry.counter(f"bsub_{key}_total").inc(stats[key])

    # -- control-plane helpers ---------------------------------------------------

    def _send_genuine(
        self,
        sender: BsubNodeState,
        towards_broker: bool,
        channel: ContactChannel,
        receiver: Optional[int] = None,
    ) -> bool:
        """Charge the sender's genuine interests to the channel.

        TCBF encoding: a shared-counter filter towards brokers, a
        stripped BF otherwise.  Raw encoding: the exact key strings
        (the Sec. IV-B comparison point), with one counter byte per key
        towards brokers.
        """
        if not sender.interests:
            return False
        cache = sender.wire_cache
        cache_key = ("genuine", towards_broker)
        if self.config.interest_encoding == "raw":
            # Raw interests are immutable configuration — size is fixed.
            entry = cache.get(cache_key)
            if entry is not None:
                size = entry[2]
            else:
                size = 5.0 + raw_interest_wire_bytes(
                    sender.interests, with_counters=towards_broker
                )
                cache[cache_key] = (None, 0, size)
        else:
            genuine = sender.genuine
            version = genuine.version
            entry = cache.get(cache_key)
            if entry is not None and entry[0] is genuine and entry[1] == version:
                size = entry[2]
            else:
                set_bits = len(genuine)
                mode = "identical" if towards_broker else "none"
                size = _FILTER_HEADER_BYTES + filter_memory_bytes(
                    set_bits, self.config.num_bits, counters=mode
                )
                cache[cache_key] = (genuine, version, size)
        return channel.send(size, sender=sender.node_id, receiver=receiver)

    def _relay_wire_bytes(self, broker: BsubNodeState, full: bool) -> float:
        """Wire size of the broker's relay state (± counters).

        A Sec. VI-D multi-filter relay pays one frame header per
        constituent filter; a raw-string relay pays the exact key list.
        """
        relay = broker.relay
        if self.config.interest_encoding == "raw":
            return 5.0 + relay.wire_bytes(with_counters=full)
        version = getattr(relay, "version", None)
        if version is None:
            # TCBFCollection relays carry no aggregate version counter;
            # re-measure (the multi-filter ablation is not a hot path).
            num_frames = getattr(relay, "num_filters", 1)
            return num_frames * _FILTER_HEADER_BYTES + filter_memory_bytes(
                len(relay),
                self.config.num_bits,
                counters="full" if full else "none",
            )
        cache = broker.wire_cache
        cache_key = ("relay", full)
        entry = cache.get(cache_key)
        if entry is not None and entry[0] is relay and entry[1] == version:
            return entry[2]
        wire = getattr(relay, "wire_bytes", None)
        if wire is not None:
            # Zoo relays with their own geometry (countBF grids)
            # account their exact Sec. VI-C compact size themselves.
            size = _FILTER_HEADER_BYTES + wire(with_counters=full)
        else:
            size = _FILTER_HEADER_BYTES + filter_memory_bytes(
                len(relay),
                self.config.num_bits,
                counters="full" if full else "none",
            )
        cache[cache_key] = (relay, version, size)
        return size

    def _absorb_interests(
        self, broker: BsubNodeState, consumer: BsubNodeState, now: float
    ) -> None:
        """A-merge the consumer's genuine filter into the broker's relay.

        Repeat meetings re-add the full initial value, which is exactly
        the reinforcement mechanism of Sec. V-C: "the more frequently a
        broker meets a consumer, the higher its counter's value of the
        consumer's interests".
        """
        recorder = self.recorder
        max_before = (
            relay_max_counter(broker.relay) if recorder.enabled else 0.0
        )
        self.op_counts["a_merge_consumer"] += 1
        announce = getattr(broker.relay, "announce", None)
        if announce is not None:
            # Duck-typed announcement hook: exact relays (raw encoding)
            # and non-TCBF zoo relays (countBF) absorb the interest keys
            # natively instead of via a TCBF merge operand.
            announce(consumer.interests)
        else:
            announcement = TemporalCountingBloomFilter(
                family=self.family,
                initial_value=self.config.initial_value,
                decay_factor=0.0,
                time=now,
            )
            announcement.insert_batch(list(consumer.interests))
            broker.relay.a_merge(announcement)
        if recorder.enabled:
            keys = sorted(consumer.interests)
            minima = [float(broker.relay.min_counter(k)) for k in keys]
            recorder.emit(
                "a_merge", t=now, kind="consumer",
                node=broker.node_id, src=consumer.node_id,
                num_keys=len(keys),
                min_key_counter_after=min(minima) if minima else 0.0,
                max_before=max_before,
                max_after=relay_max_counter(broker.relay),
            )

    def _merge_relay(
        self,
        broker: BsubNodeState,
        peer: int,
        peer_relay_snapshot: TemporalCountingBloomFilter,
        additive: bool,
        now: float,
    ) -> None:
        recorder = self.recorder
        max_before = (
            relay_max_counter(broker.relay) if recorder.enabled else 0.0
        )
        if additive:
            self.op_counts["a_merge_broker"] += 1
            broker.relay.a_merge(peer_relay_snapshot)
        else:
            self.op_counts["m_merge"] += 1
            broker.relay.m_merge(peer_relay_snapshot)
        if recorder.enabled:
            recorder.emit(
                "a_merge" if additive else "m_merge", t=now,
                node=broker.node_id, peer=peer,
                max_before=max_before,
                max_peer=relay_max_counter(peer_relay_snapshot),
                max_after=relay_max_counter(broker.relay),
                **({"kind": "broker"} if additive else {}),
            )

    # -- data-plane helpers ----------------------------------------------------------

    def _deliver_matching(
        self,
        holder: BsubNodeState,
        consumer: BsubNodeState,
        channel: ContactChannel,
        now: float,
    ) -> None:
        """Forward the holder's buffered messages that match the
        consumer's (received) genuine Bloom filter.

        The BF query is where false positives enter: a message whose
        keys merely collide with the consumer's interest bits is still
        transmitted — and counted by the metrics as a false delivery.
        Under the raw interest encoding the match is exact and the
        false-positive path disappears entirely.
        """
        match_kind = "exact" if self.config.interest_encoding == "raw" else "bloom"
        if self.config.interest_encoding == "raw":
            if not consumer.interests:
                return
            interests = consumer.interests

            def matching(keys: List[str]) -> List[str]:
                return [k for k in keys if k in interests]
        else:
            bloom = consumer.genuine_bloom
            if bloom.is_empty():
                return

            def matching(keys: List[str]) -> List[str]:
                hits = bloom.query_batch(keys)
                return [k for k, hit in zip(keys, hits) if hit]
        for buffer in (holder.own, holder.carried):
            for key in matching(list(buffer.keys())):
                for message_id in buffer.ids_for(key):
                    if consumer.has(message_id):
                        continue
                    message = buffer.messages[message_id]
                    if not channel.send(
                        message.size_bytes,
                        sender=holder.node_id,
                        receiver=consumer.node_id,
                    ):
                        return
                    self.metrics.record_forwarding(message)
                    self.op_counts["forward_direct"] += 1
                    if self.recorder.enabled:
                        self.recorder.emit(
                            "forward", t=now, kind="direct", msg=self.metrics.message_index(message),
                            src=holder.node_id, dst=consumer.node_id,
                            size=float(message.size_bytes), match=match_kind,
                        )
                    consumer.mark_received(message.id)
                    if self.metrics.record_delivery(
                        message, consumer.node_id, now
                    ):
                        self.op_counts["deliveries"] += 1
                        if self.recorder.enabled:
                            self.recorder.emit(
                                "delivery", t=now, msg=self.metrics.message_index(message),
                                node=consumer.node_id,
                                intended=self.metrics.is_intended(
                                    message, consumer.node_id
                                ),
                                cause="direct",
                            )

    def _replicate_to_broker(
        self,
        producer: BsubNodeState,
        broker: BsubNodeState,
        relay_snapshot: TemporalCountingBloomFilter,
        channel: ContactChannel,
        now: float,
    ) -> None:
        """Push own messages matching the broker's relay filter (ℂ-limited)."""
        if relay_snapshot.is_empty():
            return
        own_keys = list(producer.own.keys())
        hits = relay_snapshot.query_batch(own_keys)
        matching_keys = [k for k, hit in zip(own_keys, hits) if hit]
        for key in matching_keys:
            for message_id in producer.own.ids_for(key):
                if broker.has(message_id):
                    continue
                if producer.copies_left.get(message_id, 0) <= 0:
                    continue
                if not broker.can_accept_carry(message_id):
                    continue  # the broker's buffer policy refuses it
                message = producer.own.messages.get(message_id)
                if message is None:
                    continue  # multi-key message already replicated under another key
                if not channel.send(
                    message.size_bytes,
                    sender=producer.node_id,
                    receiver=broker.node_id,
                ):
                    return
                self.metrics.record_forwarding(message)
                self.op_counts["forward_inject"] += 1
                is_false, is_useless = self.metrics.record_injection(message)
                if self.df_controllers:
                    # Attribution-mode Sec. VI-B loop: feed the broker's
                    # controller the live taxonomy bit for this
                    # injection (no-op in fill-ratio mode).
                    controller = self.df_controllers.get(broker.node_id)
                    if controller is not None:
                        controller.record_injection(
                            is_false or is_useless, now, broker.relay
                        )
                if self.recorder.enabled:
                    # Ground-truth provenance of the relay-filter match:
                    # "fp" — no node anywhere wants any key (a pure
                    # Bloom collision), "stale" — the key is genuinely
                    # in the filter but can never produce a delivery,
                    # "genuine" — intended recipients exist.
                    match = (
                        "fp" if is_false
                        else "stale" if is_useless
                        else "genuine"
                    )
                    self.recorder.emit(
                        "forward", t=now, kind="inject", msg=self.metrics.message_index(message),
                        src=producer.node_id, dst=broker.node_id,
                        size=float(message.size_bytes), match=match,
                    )
                    if is_false:
                        self.recorder.emit(
                            "false_injection", t=now, msg=self.metrics.message_index(message),
                            src=producer.node_id, dst=broker.node_id,
                        )
                broker.carry(message)
                producer.consume_copy(message.id)
                self._maybe_self_delivery(
                    broker, message, channel_time=relay_snapshot.time
                )

    def _forward_broker_to_broker(
        self,
        sender: BsubNodeState,
        receiver: BsubNodeState,
        receiver_relay_snapshot: TemporalCountingBloomFilter,
        sender_relay_snapshot: TemporalCountingBloomFilter,
        channel: ContactChannel,
        now: float,
    ) -> None:
        """Preferential-query-ranked carried-message forwarding.

        For each carried message the sender computes the *receiver's*
        preference against itself; messages with the largest positive
        preference go first, and forwarded messages leave the sender's
        buffer ("to prevent excessive copies in the network").
        """
        # Preference depends only on the content key, so rank the
        # distinct keys once instead of scoring every buffered message.
        carried_keys = list(sender.carried.keys())
        if not carried_keys:
            return
        preferences = receiver_relay_snapshot.preference_batch(
            carried_keys, sender_relay_snapshot
        )
        ranked_keys: List[Tuple[float, str]] = [
            (float(preference), key)
            for preference, key in zip(preferences, carried_keys)
            if preference > 0.0
        ]
        ranked_keys.sort(key=lambda item: (-item[0], item[1]))
        for preference, key in ranked_keys:
            for message_id in sender.carried.ids_for(key):
                if receiver.has(message_id):
                    continue
                if not receiver.can_accept_carry(message_id):
                    continue
                message = sender.carried.messages.get(message_id)
                if message is None:
                    continue  # moved already under another of its keys
                if not channel.send(
                    message.size_bytes,
                    sender=sender.node_id,
                    receiver=receiver.node_id,
                ):
                    return
                self.metrics.record_forwarding(message)
                self.op_counts["forward_relay"] += 1
                if self.recorder.enabled:
                    self.recorder.emit(
                        "forward", t=now, kind="relay", msg=self.metrics.message_index(message),
                        src=sender.node_id, dst=receiver.node_id,
                        size=float(message.size_bytes), pref=preference,
                    )
                receiver.carry(message)
                sender.drop_carried(message.id)
                self._maybe_self_delivery(receiver, message, channel_time=now)

    def _maybe_self_delivery(
        self, node: BsubNodeState, message: Message, channel_time: float
    ) -> None:
        """A broker is also a consumer: receiving a relayed message it is
        genuinely interested in is a delivery (exact local match — a
        node knows its own subscriptions, so no false positives here).
        """
        if node.interested_in(message) and message.id not in node.received:
            node.mark_received(message.id)
            if self.metrics.record_delivery(message, node.node_id, channel_time):
                self.op_counts["deliveries"] += 1
                if self.recorder.enabled:
                    self.recorder.emit(
                        "delivery", t=channel_time, msg=self.metrics.message_index(message),
                        node=node.node_id,
                        intended=self.metrics.is_intended(
                            message, node.node_id
                        ),
                        cause="self",
                    )

    # -- introspection ----------------------------------------------------------------

    def broker_fraction(self) -> float:
        """Realised fraction of broker nodes (paper targets ≈30 %)."""
        return self.election.broker_fraction() if self.election else 0.0

    def buffered_message_count(self) -> int:
        """Total messages buffered network-wide right now."""
        return sum(
            len(s.own) + len(s.carried) for s in self.states.values()
        )
