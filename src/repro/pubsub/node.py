"""Per-node state for B-SUB.

Every node simultaneously plays up to three roles (Sec. V-A):
*producer* (messages it created and may still replicate), *consumer*
(its genuine interest filter), and — while elected — *broker* (a relay
filter plus a buffer of carried messages).

Buffers are kept per-role because the forwarding rules differ: own
messages obey the copy limit ``ℂ``, carried messages obey the
preferential-query rule and leave the buffer after broker-to-broker
forwarding.  Both buffers are additionally indexed by content key so a
contact costs O(distinct keys) filter queries instead of O(buffered
messages) — with the paper's 38-key universe this is what keeps full
trace replays fast.
"""

from __future__ import annotations

import heapq
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from ..core.allocation import TCBFCollection
from .exact import ExactInterestRelay
from ..core.bloom import BloomFilter
from ..core.filter_zoo import make_relay_filter
from ..core.hashing import HashFamily
from ..core.tcbf import TemporalCountingBloomFilter
from .messages import Message

__all__ = ["KeyedBuffer", "BsubNodeState"]


class KeyedBuffer:
    """A message buffer with a content-key index.

    Supports O(1) add/remove and iteration of the messages under one
    key.  Multi-key messages are indexed under every key; consumers of
    the per-key view must deduplicate (the protocol does so via its
    has-already-received checks).
    """

    __slots__ = ("messages", "_by_key")

    def __init__(self):
        self.messages: Dict[int, Message] = {}
        self._by_key: Dict[str, Set[int]] = {}

    def add(self, message: Message) -> None:
        if message.id in self.messages:
            return
        self.messages[message.id] = message
        for key in message.keys:
            self._by_key.setdefault(key, set()).add(message.id)

    def remove(self, message_id: int) -> bool:
        message = self.messages.pop(message_id, None)
        if message is None:
            return False
        for key in message.keys:
            bucket = self._by_key.get(key)
            if bucket is not None:
                bucket.discard(message_id)
                if not bucket:
                    del self._by_key[key]
        return True

    def keys(self) -> Iterable[str]:
        """The distinct content keys currently buffered."""
        return self._by_key.keys()

    def ids_for(self, key: str) -> Tuple[int, ...]:
        """Message ids buffered under *key* (snapshot, sorted for determinism)."""
        return tuple(sorted(self._by_key.get(key, ())))

    def __contains__(self, message_id: int) -> bool:
        return message_id in self.messages

    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.messages.values())


class BsubNodeState:
    """All state one B-SUB node carries.

    Parameters
    ----------
    node_id:
        The node's identifier.
    interests:
        The node's ground-truth interest keys.
    family:
        Shared hash family for every filter in the network.
    initial_value:
        TCBF counter initial value ``C``.
    decay_factor:
        DF applied to the relay filter (per second).  The genuine
        filter does not decay — a user's own subscription list is exact
        local state, re-announced (with full counters) on every broker
        contact.
    copy_limit:
        ℂ — replicas of each own message handed to brokers.
    relay_fill_threshold:
        When set, the relay is a Sec. VI-D :class:`TCBFCollection`
        growing a new filter each time the current one's fill ratio
        exceeds this threshold (``relay_max_filters`` caps the growth);
        when ``None`` (default) the relay is a single TCBF, as in the
        paper's main protocol description.
    filter_spec:
        A :mod:`repro.core.filter_zoo` spec string (e.g. ``"multi"``,
        ``"retouched:clear=3+17"``, ``"countbf"``) selecting the relay
        filter implementation.  Mutually exclusive with
        ``relay_fill_threshold`` and the ``"raw"`` interest encoding;
        ``None`` (default) keeps the legacy construction paths
        byte-identical.
    carried_capacity:
        Maximum number of *carried* (relayed) messages a broker
        buffers; ``None`` (default) means unbounded, the paper's
        implicit setting.  The paper motivates the limit ("the memory
        capacity of the nodes in HUNETs is also limited", Sec. I) but
        never hits it because messages are tiny.
    eviction:
        What happens when a carry would exceed the capacity:
        ``"oldest"`` evicts the earliest-expiring carried message
        (it had the least remaining usefulness); ``"reject"`` refuses
        the incoming message instead.
    """

    __slots__ = (
        "node_id",
        "interests",
        "genuine",
        "genuine_bloom",
        "relay",
        "interest_encoding",
        "copy_limit",
        "carried_capacity",
        "eviction",
        "evictions",
        "rejected_carries",
        "purged",
        "own",
        "copies_left",
        "carried",
        "received",
        "wire_cache",
        "_expiry_heap",
    )

    def __init__(
        self,
        node_id: int,
        interests: FrozenSet[str],
        family: HashFamily,
        initial_value: float,
        decay_factor: float,
        copy_limit: int,
        start_time: float = 0.0,
        relay_fill_threshold: Optional[float] = None,
        relay_max_filters: Optional[int] = None,
        carried_capacity: Optional[int] = None,
        eviction: str = "oldest",
        interest_encoding: str = "tcbf",
        filter_spec: Optional[str] = None,
    ):
        if copy_limit < 0:
            raise ValueError(f"copy_limit must be >= 0, got {copy_limit}")
        if interest_encoding not in ("tcbf", "raw"):
            raise ValueError(
                f"interest_encoding must be 'tcbf' or 'raw', got "
                f"{interest_encoding!r}"
            )
        if interest_encoding == "raw" and relay_fill_threshold is not None:
            raise ValueError(
                "relay_fill_threshold only applies to the TCBF encoding"
            )
        if filter_spec is not None and interest_encoding == "raw":
            raise ValueError(
                "filter_spec only applies to the TCBF encoding"
            )
        if filter_spec is not None and relay_fill_threshold is not None:
            raise ValueError(
                "filter_spec and relay_fill_threshold are mutually "
                "exclusive relay selectors"
            )
        if carried_capacity is not None and carried_capacity < 1:
            raise ValueError(
                f"carried_capacity must be >= 1, got {carried_capacity}"
            )
        if eviction not in ("oldest", "reject"):
            raise ValueError(
                f"eviction must be 'oldest' or 'reject', got {eviction!r}"
            )
        self.node_id = node_id
        self.interests = interests
        self.genuine = TemporalCountingBloomFilter(
            family=family,
            initial_value=initial_value,
            decay_factor=0.0,
            time=start_time,
        )
        self.genuine.insert_batch(list(interests))
        self.genuine_bloom: BloomFilter = self.genuine.to_bloom()
        self.interest_encoding = interest_encoding
        if interest_encoding == "raw":
            self.relay = ExactInterestRelay(
                initial_value=initial_value,
                decay_factor=decay_factor,
                time=start_time,
            )
        elif filter_spec is not None:
            self.relay = make_relay_filter(
                filter_spec,
                family=family,
                initial_value=initial_value,
                decay_factor=decay_factor,
                time=start_time,
            )
        elif relay_fill_threshold is None:
            self.relay = TemporalCountingBloomFilter(
                family=family,
                initial_value=initial_value,
                decay_factor=decay_factor,
                time=start_time,
            )
        else:
            collection = TCBFCollection(
                fill_ratio_threshold=relay_fill_threshold,
                family=family,
                initial_value=initial_value,
                decay_factor=decay_factor,
                max_filters=relay_max_filters,
            )
            collection.advance(start_time)
            self.relay = collection
        self.copy_limit = copy_limit
        self.carried_capacity = carried_capacity
        self.eviction = eviction
        self.evictions = 0
        self.rejected_carries = 0
        self.purged = 0
        self.own = KeyedBuffer()
        self.copies_left: Dict[int, int] = {}
        self.carried = KeyedBuffer()
        self.received: Set[int] = set()
        #: Memoised wire sizes of this node's filters, maintained by the
        #: protocol layer: cache key -> (filter object, filter version,
        #: size in bytes).  Invalidation is by filter version counter,
        #: so unchanged filters are never re-measured contact after
        #: contact.
        self.wire_cache: Dict[tuple, tuple] = {}
        self._expiry_heap: List[Tuple[float, int]] = []

    # -- message bookkeeping ----------------------------------------------------

    def produce(self, message: Message) -> None:
        """Store a self-produced message with a fresh copy budget.

        The id also goes into ``received`` permanently: a producer must
        never accept its own message back from the network, even after
        the local copy is gone (copies spent or TTL expired).
        """
        self.own.add(message)
        self.copies_left[message.id] = self.copy_limit
        self.received.add(message.id)
        heapq.heappush(self._expiry_heap, (message.expires_at, message.id))

    def can_accept_carry(self, message_id: int) -> bool:
        """Whether a carry of *message_id* would be accepted right now.

        Lets the sender skip the transmission entirely when the
        receiver would reject it (a real receiver refuses before the
        transfer, not after paying for it).
        """
        if self.carried_capacity is None or message_id in self.carried:
            return True
        if len(self.carried) < self.carried_capacity:
            return True
        return self.eviction == "oldest"

    def carry(self, message: Message) -> bool:
        """Buffer a relayed message (broker role).

        Returns False when the capacity policy rejected the message
        (``eviction="reject"`` and the buffer is full).
        """
        if (
            self.carried_capacity is not None
            and message.id not in self.carried
            and len(self.carried) >= self.carried_capacity
        ):
            if self.eviction == "reject":
                self.rejected_carries += 1
                return False
            victim = min(self.carried, key=lambda m: (m.expires_at, m.id))
            self.carried.remove(victim.id)
            self.evictions += 1
        self.carried.add(message)
        heapq.heappush(self._expiry_heap, (message.expires_at, message.id))
        return True

    def has(self, message_id: int) -> bool:
        """True if this node holds or has already received the message."""
        return (
            message_id in self.own
            or message_id in self.carried
            or message_id in self.received
        )

    def mark_received(self, message_id: int) -> None:
        self.received.add(message_id)

    def consume_copy(self, message_id: int) -> None:
        """Spend one replica of an own message; drop it at zero.

        "The message is removed from the producer's memory after its
        copy number reaches the limit" (Sec. V-D).
        """
        remaining = self.copies_left.get(message_id, 0) - 1
        if remaining > 0:
            self.copies_left[message_id] = remaining
        else:
            self.copies_left.pop(message_id, None)
            self.own.remove(message_id)

    def drop_carried(self, message_id: int) -> None:
        """Remove a carried message (after broker-to-broker forwarding)."""
        self.carried.remove(message_id)

    def purge_expired(self, now: float) -> int:
        """Drop all buffered messages past their TTL; returns drop count."""
        dropped = 0
        heap = self._expiry_heap
        while heap and heap[0][0] < now:
            _, message_id = heapq.heappop(heap)
            if self.own.remove(message_id):
                self.copies_left.pop(message_id, None)
                dropped += 1
            if self.carried.remove(message_id):
                dropped += 1
        self.purged += dropped
        return dropped

    def buffered_messages(self) -> Iterator[Message]:
        """Own then carried messages (a message is never in both)."""
        yield from self.own
        yield from self.carried

    def buffered_keys(self) -> Set[str]:
        """Distinct content keys across both buffers."""
        return set(self.own.keys()) | set(self.carried.keys())

    def interested_in(self, message: Message) -> bool:
        """Ground-truth interest check (exact local matching)."""
        return bool(message.keys & self.interests)

    def obs_stats(self) -> Dict[str, float]:
        """Lifetime per-node counters for the observability harvest.

        Read once at the end of a run (never on the hot path); the
        underlying integers are maintained unconditionally because a
        bare ``+= 1`` on contact-level operations is free compared to
        the filter work around it.
        """
        relay_fill = getattr(self.relay, "fill_ratio", None)
        if relay_fill is None:
            ratios_fn = getattr(self.relay, "fill_ratios", None)
            if ratios_fn is not None:  # TCBFCollection: mean over filters
                ratios = ratios_fn()

                def relay_fill():
                    return sum(ratios) / len(ratios) if ratios else 0.0
        return {
            "own_buffered": len(self.own),
            "carried_buffered": len(self.carried),
            "received": len(self.received),
            "purged": self.purged,
            "evictions": self.evictions,
            "rejected_carries": self.rejected_carries,
            "relay_set_bits": len(self.relay),
            "relay_fill_ratio": float(relay_fill()) if relay_fill else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"BsubNodeState(node={self.node_id}, own={len(self.own)}, "
            f"carried={len(self.carried)}, received={len(self.received)})"
        )
