"""Centrality measures over the contact graph.

The paper uses *centrality* to model social standing: "The higher the
centrality, the higher the message generation rate" (Sec. VII-A), with
a node's degree defined as "the number of different nodes that it
meets" (Sec. V-B).  Degree centrality is therefore the workload
driver; meeting-count and total-contact-time centralities are provided
as alternatives for studies and examples.
"""

from __future__ import annotations

from typing import Dict

from ..traces.model import ContactTrace
from .graph import ContactGraph

__all__ = [
    "degree_centrality",
    "meeting_centrality",
    "contact_time_centrality",
    "normalised",
]


def degree_centrality(trace_or_graph) -> Dict[int, float]:
    """node -> number of distinct peers ever met (paper's degree)."""
    graph = _as_graph(trace_or_graph)
    return {node: float(graph.degree(node)) for node in graph.nodes}


def meeting_centrality(trace_or_graph) -> Dict[int, float]:
    """node -> total number of meetings."""
    graph = _as_graph(trace_or_graph)
    return {
        node: float(sum(graph.meeting_counts(node).values()))
        for node in graph.nodes
    }


def contact_time_centrality(trace_or_graph) -> Dict[int, float]:
    """node -> total seconds spent in contact."""
    graph = _as_graph(trace_or_graph)
    return {
        node: sum(
            graph.edge(node, peer).total_duration_s
            for peer in graph.neighbours(node)
        )
        for node in graph.nodes
    }


def normalised(centrality: Dict[int, float]) -> Dict[int, float]:
    """Scale a centrality map so its maximum is 1 (all-zero maps pass through)."""
    peak = max(centrality.values(), default=0.0)
    if peak <= 0:
        return dict(centrality)
    return {node: value / peak for node, value in centrality.items()}


def _as_graph(trace_or_graph) -> ContactGraph:
    if isinstance(trace_or_graph, ContactGraph):
        return trace_or_graph
    if isinstance(trace_or_graph, ContactTrace):
        return ContactGraph.from_trace(trace_or_graph)
    raise TypeError(
        f"expected ContactTrace or ContactGraph, got {type(trace_or_graph).__name__}"
    )
