"""Community detection on the contact graph.

The paper motivates HUNET protocol design with the observation that
contact patterns are "governed by relationships" (Fig. 1) and that
community structures in such networks are real but volatile (Sec. II-A).
This module provides a lightweight asynchronous label-propagation
detector — enough to (a) verify that the synthetic generator actually
produces community structure and (b) power the social-analysis example.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from .graph import ContactGraph

__all__ = ["label_propagation", "community_sets", "modularity"]


def label_propagation(
    graph: ContactGraph,
    weight: str = "meetings",
    max_rounds: int = 100,
    seed: int = 0,
) -> Dict[int, int]:
    """Weighted label propagation; returns node -> community label.

    Each node repeatedly adopts the label with the largest total edge
    weight among its neighbours until no label changes (or
    *max_rounds*).  Labels are renumbered densely from 0.
    """
    if weight not in ("meetings", "duration"):
        raise ValueError(f"weight must be 'meetings' or 'duration', got {weight!r}")
    rng = random.Random(seed)
    labels: Dict[int, int] = {node: node for node in graph.nodes}
    order = list(graph.nodes)
    for _ in range(max_rounds):
        rng.shuffle(order)
        changed = False
        for node in order:
            tally: Dict[int, float] = {}
            for peer in graph.neighbours(node):
                stats = graph.edge(node, peer)
                w = stats.meetings if weight == "meetings" else stats.total_duration_s
                tally[labels[peer]] = tally.get(labels[peer], 0.0) + w
            if not tally:
                continue
            best_weight = max(tally.values())
            best_labels = [lab for lab, w in tally.items() if w == best_weight]
            new_label = rng.choice(best_labels)
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    dense: Dict[int, int] = {}
    for node in graph.nodes:
        dense.setdefault(labels[node], len(dense))
    return {node: dense[labels[node]] for node in graph.nodes}


def community_sets(labels: Dict[int, int]) -> List[Set[int]]:
    """Group a node -> label map into per-community node sets."""
    groups: Dict[int, Set[int]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return [groups[label] for label in sorted(groups)]


def modularity(
    graph: ContactGraph, labels: Dict[int, int], weight: str = "meetings"
) -> float:
    """Newman modularity Q of a partition (weighted).

    Q in [-0.5, 1]; values well above 0 confirm community structure.
    """
    if weight not in ("meetings", "duration"):
        raise ValueError(f"weight must be 'meetings' or 'duration', got {weight!r}")

    def edge_weight(stats) -> float:
        return float(stats.meetings) if weight == "meetings" else stats.total_duration_s

    total = sum(edge_weight(stats) for _, _, stats in graph.edges())
    if total <= 0:
        return 0.0
    strength: Dict[int, float] = {
        node: sum(
            edge_weight(graph.edge(node, peer)) for peer in graph.neighbours(node)
        )
        for node in graph.nodes
    }
    q = 0.0
    for a, b, stats in graph.edges():
        if labels[a] == labels[b]:
            q += edge_weight(stats) / total
    for label in set(labels.values()):
        inside = sum(strength[n] for n in graph.nodes if labels[n] == label)
        q -= (inside / (2.0 * total)) ** 2
    return q
