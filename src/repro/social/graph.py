"""Contact graph construction.

The weighted *contact graph* aggregates a trace into a static social
structure: vertices are nodes, an edge connects every pair that ever
met, and edge weights record meeting counts and total contact time.
Centrality and community analysis (and the synthetic-generator
calibration) all operate on this graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Set, Tuple

from ..traces.model import ContactTrace

__all__ = ["EdgeStats", "ContactGraph"]


@dataclass
class EdgeStats:
    """Aggregate statistics of one node pair's relationship."""

    meetings: int = 0
    total_duration_s: float = 0.0
    first_meeting: float = field(default=float("inf"))
    last_meeting: float = field(default=float("-inf"))

    def record(self, start: float, duration: float) -> None:
        self.meetings += 1
        self.total_duration_s += duration
        self.first_meeting = min(self.first_meeting, start)
        self.last_meeting = max(self.last_meeting, start)


class ContactGraph:
    """Weighted undirected graph aggregated from a contact trace."""

    def __init__(self, nodes: Tuple[int, ...]):
        self._nodes = nodes
        self._adjacency: Dict[int, Dict[int, EdgeStats]] = {
            node: {} for node in nodes
        }

    @classmethod
    def from_trace(cls, trace: ContactTrace) -> "ContactGraph":
        graph = cls(trace.nodes)
        for contact in trace:
            graph._record(contact.a, contact.b, contact.start, contact.duration)
        return graph

    def _record(self, a: int, b: int, start: float, duration: float) -> None:
        for u, v in ((a, b), (b, a)):
            stats = self._adjacency[u].get(v)
            if stats is None:
                stats = self._adjacency[u][v] = EdgeStats()
            stats.record(start, duration)

    # -- accessors -----------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    def neighbours(self, node: int) -> Set[int]:
        return set(self._adjacency[node])

    def degree(self, node: int) -> int:
        """Number of distinct nodes ever met (the paper's node degree)."""
        return len(self._adjacency[node])

    def edge(self, a: int, b: int) -> EdgeStats:
        """The edge stats for (a, b); raises KeyError if they never met."""
        return self._adjacency[a][b]

    def has_edge(self, a: int, b: int) -> bool:
        return b in self._adjacency[a]

    def edges(self) -> Iterator[Tuple[int, int, EdgeStats]]:
        """All (a, b, stats) with a < b."""
        for a in self._nodes:
            for b, stats in self._adjacency[a].items():
                if a < b:
                    yield a, b, stats

    def num_edges(self) -> int:
        return sum(1 for _ in self.edges())

    def meeting_counts(self, node: int) -> Dict[int, int]:
        """peer -> meeting count for *node*."""
        return {
            peer: stats.meetings
            for peer, stats in self._adjacency[node].items()
        }

    def to_networkx(self):
        """Export to a :mod:`networkx` graph (optional dependency)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        for a, b, stats in self.edges():
            graph.add_edge(
                a, b, meetings=stats.meetings, duration=stats.total_duration_s
            )
        return graph

    def __repr__(self) -> str:
        return (
            f"ContactGraph(nodes={len(self._nodes)}, edges={self.num_edges()})"
        )
