"""Social-network-analysis substrate: contact graph, centrality, communities."""

from .centrality import (
    contact_time_centrality,
    degree_centrality,
    meeting_centrality,
    normalised,
)
from .communities import community_sets, label_propagation, modularity
from .graph import ContactGraph, EdgeStats

__all__ = [
    "ContactGraph",
    "EdgeStats",
    "community_sets",
    "contact_time_centrality",
    "degree_centrality",
    "label_propagation",
    "meeting_centrality",
    "modularity",
    "normalised",
]
