"""Parallel execution of independent simulation runs.

Sweeps (Figs. 7–9) and multi-seed replications are embarrassingly
parallel: every (trace, protocol, config) cell is an independent
simulation whose workload is derived deterministically from the config
seeds.  This module fans those cells across a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping results
bit-identical to the serial path:

* tasks are materialised in the parent process in the same order the
  serial loops would visit them (including any per-seed config
  derivation and trace construction), so scheduling cannot perturb the
  workload;
* ``ProcessPoolExecutor.map`` returns results in submission order, so
  the output lists line up with the serial ones;
* ``jobs=1`` (the default) bypasses the pool entirely.

``jobs <= 0`` means "one worker per CPU".

This module is also the process-pool home of the simulator's *shard*
fan-out (:func:`run_passive_shards`): a sharded passive replay of an
mmap trace dataset sends each worker only ``(dataset path, row range)``
— workers re-open the mapping themselves and reduce their window with
:func:`repro.dtn.simulator.passive_partial`, so no contact data ever
crosses a process boundary.  Because every run may now fan out twice
(``jobs`` runs × ``shards`` windows), :func:`resolve_jobs` clamps the
product to the machine's core count so nested pools cannot oversubscribe.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..traces.model import ContactTrace
from ..workload.keys import KeyDistribution
from .config import ExperimentConfig
from .runner import RunResult, _run_experiment

__all__ = [
    "RunTask",
    "execute_tasks",
    "resolve_jobs",
    "run_passive_shards",
]


@dataclass(frozen=True)
class RunTask:
    """One fully specified simulation run, ready to ship to a worker.

    Everything here pickles: traces and configs are plain dataclasses
    and the distribution is a value object, so a task can cross a
    process boundary without losing determinism.
    """

    trace: ContactTrace
    protocol_name: str
    config: ExperimentConfig
    distribution: Optional[KeyDistribution] = field(default=None)


def resolve_jobs(jobs: Optional[int], shards: int = 1) -> int:
    """Normalise a ``jobs`` request: ``None``/1 -> serial, <=0 -> all CPUs.

    When runs are themselves sharded (``shards > 1``), each job may
    spawn up to *shards* worker processes of its own, so the job count
    is clamped to keep ``jobs × shards`` within ``os.cpu_count()``
    (with a warning) — nested pools can degrade a machine far below
    serial speed.
    """
    cpus = os.cpu_count() or 1
    if jobs is None:
        return 1
    resolved = cpus if jobs <= 0 else jobs
    if shards and shards > 1:
        allowed = max(1, cpus // int(shards))
        if resolved > allowed:
            warnings.warn(
                f"jobs={resolved} with shards={shards} would run "
                f"{resolved * shards} workers on {cpus} CPUs; "
                f"clamping jobs to {allowed}",
                RuntimeWarning,
                stacklevel=2,
            )
            resolved = allowed
    return resolved


def _execute(task: RunTask) -> RunResult:
    return _run_experiment(
        task.trace, task.protocol_name, task.config, task.distribution
    )


def _passive_shard(
    args: Tuple[str, int, int, Optional[float]]
) -> Dict[str, Any]:
    """Worker: re-open one row range of a dataset and reduce it."""
    from ..dtn.simulator import passive_partial
    from ..traces.backends import MmapContactStore

    source, lo, hi, rate_bps = args
    return passive_partial(MmapContactStore.open(source, lo, hi), rate_bps)


def run_passive_shards(
    source: str,
    bounds: Sequence[Tuple[int, int]],
    rate_bps: Optional[float],
    max_workers: Optional[int] = None,
) -> List[Dict[str, Any]]:
    """Reduce each (lo, hi) row window of the dataset at *source*.

    Windows are fanned across a :class:`ProcessPoolExecutor` (capped at
    the core count); the returned partials are ordered like *bounds*
    regardless of completion order, so the merge is deterministic.
    Falls back to in-process reduction on single-core machines.
    """
    tasks = [(source, lo, hi, rate_bps) for lo, hi in bounds]
    workers = min(
        len(tasks), max_workers or os.cpu_count() or 1
    )
    if workers <= 1:
        return [_passive_shard(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_passive_shard, tasks))


def execute_tasks(
    tasks: Sequence[RunTask], jobs: Optional[int] = None
) -> List[RunResult]:
    """Run every task, in order, optionally across worker processes.

    The returned list is ordered like *tasks* regardless of which
    worker finished first, so callers can zip results back onto the
    task list.
    """
    tasks = list(tasks)
    shards = max(
        ((task.config.shards or 1) for task in tasks), default=1
    )
    jobs = resolve_jobs(jobs, shards)
    if jobs == 1 or len(tasks) <= 1:
        return [_execute(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute, tasks))
