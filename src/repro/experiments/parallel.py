"""Parallel execution of independent simulation runs.

Sweeps (Figs. 7–9) and multi-seed replications are embarrassingly
parallel: every (trace, protocol, config) cell is an independent
simulation whose workload is derived deterministically from the config
seeds.  This module fans those cells across a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping results
bit-identical to the serial path:

* tasks are materialised in the parent process in the same order the
  serial loops would visit them (including any per-seed config
  derivation and trace construction), so scheduling cannot perturb the
  workload;
* ``ProcessPoolExecutor.map`` returns results in submission order, so
  the output lists line up with the serial ones;
* ``jobs=1`` (the default) bypasses the pool entirely.

``jobs <= 0`` means "one worker per CPU".
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..traces.model import ContactTrace
from ..workload.keys import KeyDistribution
from .config import ExperimentConfig
from .runner import RunResult, _run_experiment

__all__ = ["RunTask", "execute_tasks", "resolve_jobs"]


@dataclass(frozen=True)
class RunTask:
    """One fully specified simulation run, ready to ship to a worker.

    Everything here pickles: traces and configs are plain dataclasses
    and the distribution is a value object, so a task can cross a
    process boundary without losing determinism.
    """

    trace: ContactTrace
    protocol_name: str
    config: ExperimentConfig
    distribution: Optional[KeyDistribution] = field(default=None)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: ``None``/1 -> serial, <=0 -> all CPUs."""
    if jobs is None:
        return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _execute(task: RunTask) -> RunResult:
    return _run_experiment(
        task.trace, task.protocol_name, task.config, task.distribution
    )


def execute_tasks(
    tasks: Sequence[RunTask], jobs: Optional[int] = None
) -> List[RunResult]:
    """Run every task, in order, optionally across worker processes.

    The returned list is ordered like *tasks* regardless of which
    worker finished first, so callers can zip results back onto the
    task list.
    """
    tasks = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(tasks) <= 1:
        return [_execute(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_execute, tasks))
