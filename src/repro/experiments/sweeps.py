"""Parameter sweeps: the TTL sweep (Figs. 7–8) and DF sweep (Fig. 9).

Every sweep cell is an independent simulation, so both sweeps accept a
``jobs`` argument and fan across processes via
:mod:`repro.experiments.parallel`; results are identical to the serial
path for any ``jobs`` value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.params import warn_deprecated
from ..traces.model import ContactTrace
from ..workload.keys import KeyDistribution
from .config import (
    DF_SWEEP_TTL_MIN,
    PAPER_DF_VALUES_PER_MIN,
    PAPER_TTL_VALUES_MIN,
    ExperimentConfig,
)
from .parallel import RunTask, execute_tasks
from .runner import PROTOCOL_NAMES, RunResult

__all__ = ["ttl_sweep", "df_sweep"]


def ttl_sweep(
    trace: ContactTrace,
    ttl_values_min: Sequence[float] = PAPER_TTL_VALUES_MIN,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    base_config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
    jobs: Optional[int] = None,
) -> Dict[str, List[RunResult]]:
    """Deprecated alias for :func:`repro.api.sweep` with ``ttl_min=...``."""
    warn_deprecated("ttl_sweep")
    return _ttl_sweep(
        trace, ttl_values_min, protocols, base_config, distribution, jobs
    )


def _ttl_sweep(
    trace: ContactTrace,
    ttl_values_min: Sequence[float] = PAPER_TTL_VALUES_MIN,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    base_config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
    jobs: Optional[int] = None,
) -> Dict[str, List[RunResult]]:
    """Figs. 7/8: every protocol at every TTL.

    B-SUB's DF is re-derived from Eq. 5 at each TTL (``τ = TTL``),
    exactly as the paper does for this sweep.  Returns
    protocol -> results ordered like *ttl_values_min*.  ``jobs``
    parallelises the grid (<=0 -> all CPUs, default serial).
    """
    base = base_config or ExperimentConfig()
    tasks: List[RunTask] = []
    for ttl_min in ttl_values_min:
        config = base.with_ttl(ttl_min).with_df(None)
        for name in protocols:
            tasks.append(RunTask(trace, name, config, distribution))
    outcomes = execute_tasks(tasks, jobs=jobs)
    results: Dict[str, List[RunResult]] = {name: [] for name in protocols}
    for task, outcome in zip(tasks, outcomes):
        results[task.protocol_name].append(outcome)
    return results


def df_sweep(
    trace: ContactTrace,
    df_values_per_min: Sequence[float] = PAPER_DF_VALUES_PER_MIN,
    ttl_min: float = DF_SWEEP_TTL_MIN,
    base_config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
    jobs: Optional[int] = None,
) -> List[RunResult]:
    """Deprecated alias for :func:`repro.api.sweep` with ``df_per_min=...``."""
    warn_deprecated("df_sweep")
    return _df_sweep(
        trace, df_values_per_min, ttl_min, base_config, distribution, jobs
    )


def _df_sweep(
    trace: ContactTrace,
    df_values_per_min: Sequence[float] = PAPER_DF_VALUES_PER_MIN,
    ttl_min: float = DF_SWEEP_TTL_MIN,
    base_config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
    jobs: Optional[int] = None,
) -> List[RunResult]:
    """Fig. 9: B-SUB across explicit DF values at a fixed 20-hour TTL.

    DF = 0 disables decay (interests flood, the Fig. 9 left endpoint);
    large DFs confine interests until B-SUB degenerates towards PULL.
    ``jobs`` parallelises the DF grid (<=0 -> all CPUs, default serial).
    """
    base = base_config or ExperimentConfig()
    tasks = [
        RunTask(trace, "B-SUB", base.with_ttl(ttl_min).with_df(df), distribution)
        for df in df_values_per_min
    ]
    return execute_tasks(tasks, jobs=jobs)
