"""Parameter sweeps: the TTL sweep (Figs. 7–8) and DF sweep (Fig. 9)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..traces.model import ContactTrace
from ..workload.keys import KeyDistribution
from .config import (
    DF_SWEEP_TTL_MIN,
    PAPER_DF_VALUES_PER_MIN,
    PAPER_TTL_VALUES_MIN,
    ExperimentConfig,
)
from .runner import PROTOCOL_NAMES, RunResult, run_experiment

__all__ = ["ttl_sweep", "df_sweep"]


def ttl_sweep(
    trace: ContactTrace,
    ttl_values_min: Sequence[float] = PAPER_TTL_VALUES_MIN,
    protocols: Sequence[str] = PROTOCOL_NAMES,
    base_config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
) -> Dict[str, List[RunResult]]:
    """Figs. 7/8: every protocol at every TTL.

    B-SUB's DF is re-derived from Eq. 5 at each TTL (``τ = TTL``),
    exactly as the paper does for this sweep.  Returns
    protocol -> results ordered like *ttl_values_min*.
    """
    base = base_config or ExperimentConfig()
    results: Dict[str, List[RunResult]] = {name: [] for name in protocols}
    for ttl_min in ttl_values_min:
        config = base.with_ttl(ttl_min).with_df(None)
        for name in protocols:
            results[name].append(
                run_experiment(trace, name, config, distribution)
            )
    return results


def df_sweep(
    trace: ContactTrace,
    df_values_per_min: Sequence[float] = PAPER_DF_VALUES_PER_MIN,
    ttl_min: float = DF_SWEEP_TTL_MIN,
    base_config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
) -> List[RunResult]:
    """Fig. 9: B-SUB across explicit DF values at a fixed 20-hour TTL.

    DF = 0 disables decay (interests flood, the Fig. 9 left endpoint);
    large DFs confine interests until B-SUB degenerates towards PULL.
    """
    base = base_config or ExperimentConfig()
    results: List[RunResult] = []
    for df in df_values_per_min:
        config = base.with_ttl(ttl_min).with_df(df)
        results.append(run_experiment(trace, "B-SUB", config, distribution))
    return results
