"""Single-run experiment runner.

Wires together trace, workload, protocol, and metrics for one
simulation, including the Eq. 5 automatic decaying-factor derivation
the paper uses for its TTL sweeps ("we set τ the same as the TTL, and
calculate DFs using Eq. 5; a small constant is added to the resultant
DFs", Sec. VII-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from ..core.analysis import expected_unique_keys, recommended_decay_factor
from ..core.params import warn_deprecated
from ..dtn.simulator import Simulation, SimulationReport
from ..faults.plan import FaultPlan
from ..obs import NULL_RECORDER, Observability
from ..pubsub.baselines import PullProtocol, PushProtocol
from ..pubsub.extra_baselines import SprayAndWaitProtocol
from ..pubsub.metrics import MetricsCollector, MetricsSummary
from ..pubsub.protocol import BsubConfig, BsubProtocol
from ..traces.model import ContactTrace
from ..workload.generator import WorkloadConfig, generate_message_events
from ..workload.interests import assign_interests
from ..workload.keys import KeyDistribution, twitter_trends_2009
from .config import ExperimentConfig

__all__ = [
    "ALL_PROTOCOLS",
    "RunResult",
    "average_peers_met_within",
    "derive_decay_factor",
    "run_experiment",
    "PROTOCOL_NAMES",
]

#: The paper's three protocols; "SPRAY" (an extension baseline) is
#: also accepted by :func:`run_experiment`.
PROTOCOL_NAMES = ("PUSH", "B-SUB", "PULL")
ALL_PROTOCOLS = ("PUSH", "B-SUB", "PULL", "SPRAY")


@dataclass(frozen=True)
class RunResult:
    """Everything one simulation run produced."""

    protocol: str
    trace_name: str
    ttl_min: float
    decay_factor_per_min: float
    summary: MetricsSummary
    engine: SimulationReport
    broker_fraction: float
    #: Fault-injection tallies (``None`` for a fault-free run); see
    #: :class:`repro.faults.FaultAccounting` for the keys.
    fault_accounting: Optional[Dict[str, int]] = field(default=None)


def average_peers_met_within(trace: ContactTrace, window_s: float) -> float:
    """Mean distinct peers a node meets per *window_s* window.

    The paper obtains "the number of encountered nodes in τ … by
    analyzing the traces"; this is that analysis: tumbling windows of
    length ``window_s`` over each node's contact log, averaged over all
    non-empty windows of all nodes.
    """
    if window_s <= 0:
        raise ValueError(f"window must be positive, got {window_s}")
    origin = trace.start_time
    # node -> window index -> set of peers
    windows: Dict[int, Dict[int, set]] = {}
    for contact in trace:
        index = int((contact.start - origin) // window_s)
        for node, peer in ((contact.a, contact.b), (contact.b, contact.a)):
            windows.setdefault(node, {}).setdefault(index, set()).add(peer)
    counts = [
        len(peers)
        for per_node in windows.values()
        for peers in per_node.values()
    ]
    return sum(counts) / len(counts) if counts else 0.0


def derive_decay_factor(
    trace: ContactTrace,
    config: ExperimentConfig,
    distribution: Optional[KeyDistribution] = None,
) -> float:
    """Eq. 5's DF (per minute) for ``τ = TTL`` on this trace.

    ℕ — the keys a broker collects within τ — is estimated as the
    number of *unique* interests (Eq. 6) among the interests of the
    nodes met within a τ-long window, each node contributing
    ``interests_per_node`` keys.
    """
    distribution = distribution or twitter_trends_2009()
    peers = average_peers_met_within(trace, config.ttl_s)
    collected = peers * config.interests_per_node
    unique = expected_unique_keys(collected, weights=distribution.weights)
    return recommended_decay_factor(
        delay_limit=config.ttl_min,
        initial_value=config.initial_value,
        num_keys=max(1, round(unique)),
        num_bits=config.num_bits,
        num_hashes=config.num_hashes,
        delta=config.df_delta_per_min,
    )


def _build_protocol(
    name: str,
    interests: Dict[int, FrozenSet[str]],
    metrics: MetricsCollector,
    config: ExperimentConfig,
    decay_factor_per_min: float,
    recorder=NULL_RECORDER,
    registry=None,
):
    if name == "PUSH":
        return PushProtocol(
            interests,
            metrics,
            buffer_capacity=config.push_buffer_capacity,
            summary_exchange=config.push_summary_exchange,
        )
    if name == "PULL":
        return PullProtocol(interests, metrics)
    if name == "SPRAY":
        return SprayAndWaitProtocol(
            interests, metrics, initial_copies=config.spray_copies
        )
    if name == "B-SUB":
        return BsubProtocol(
            interests,
            metrics,
            BsubConfig(
                num_bits=config.num_bits,
                num_hashes=config.num_hashes,
                initial_value=config.initial_value,
                decay_factor_per_min=decay_factor_per_min,
                copy_limit=config.copy_limit,
                election_lower=config.election_lower,
                election_upper=config.election_upper,
                election_window_s=config.election_window_s,
                broker_broker_additive_merge=config.broker_broker_additive_merge,
                static_brokers=config.static_brokers,
                relay_fill_threshold=config.relay_fill_threshold,
                relay_max_filters=config.relay_max_filters,
                adaptive_df=config.adaptive_df,
                carried_capacity=config.carried_capacity,
                eviction=config.eviction,
                interest_encoding=config.interest_encoding,
                filter_spec=config.filter_spec,
            ),
            recorder=recorder,
            registry=registry,
        )
    raise ValueError(
        f"unknown protocol {name!r}; expected one of {ALL_PROTOCOLS}"
    )


def run_experiment(
    trace: ContactTrace,
    protocol_name: str,
    config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Deprecated alias for :func:`repro.api.run` (same behaviour).

    Kept as a thin shim so existing callers keep working; new code
    should build a typed :class:`repro.api.ExperimentSpec` and call
    :func:`repro.api.run` instead.
    """
    warn_deprecated("run_experiment")
    return _run_experiment(trace, protocol_name, config, distribution, obs)


def _run_experiment(
    trace: ContactTrace,
    protocol_name: str,
    config: Optional[ExperimentConfig] = None,
    distribution: Optional[KeyDistribution] = None,
    obs: Optional[Observability] = None,
) -> RunResult:
    """Run one (trace, protocol, config) simulation and aggregate metrics.

    Interests and the message workload are derived deterministically
    from the config seeds, so different protocols compared under the
    same config see the *identical* workload.

    When an :class:`~repro.obs.Observability` bundle is passed, the
    run is traced/metered through it: protocol events go to
    ``obs.tracer``, end-of-run aggregates to ``obs.registry``, and
    wall-clock to ``obs.timers`` (phases ``setup`` / ``simulate`` /
    ``summarize``).  Observability never changes run behaviour — the
    same seed produces identical results with and without it.

    When ``config.faults`` is an enabled :class:`repro.faults.FaultSpec`,
    a :class:`repro.faults.FaultPlan` is threaded through the simulator
    and the run's fault tallies land in ``RunResult.fault_accounting``;
    a ``None``/disabled spec takes the byte-identical fault-free path.
    """
    config = config or ExperimentConfig()
    distribution = distribution or twitter_trends_2009()
    obs = obs or Observability.disabled()

    with obs.phase("setup"):
        interests = assign_interests(
            trace.nodes,
            distribution,
            seed=config.interest_seed,
            interests_per_node=config.interests_per_node,
        )
        workload = WorkloadConfig(
            ttl_s=config.ttl_s,
            min_rate_per_s=config.min_rate_per_s,
            keys_per_message=config.keys_per_message,
            seed=config.workload_seed,
        )
        events = generate_message_events(trace, distribution, workload)

        if protocol_name == "B-SUB" and config.decay_factor_per_min is None:
            df_per_min = derive_decay_factor(trace, config, distribution)
        else:
            df_per_min = config.decay_factor_per_min or 0.0

        metrics = MetricsCollector(interests, protocol_name)
        protocol = _build_protocol(
            protocol_name, interests, metrics, config, df_per_min,
            recorder=obs.tracer, registry=obs.registry,
        )
        plan = None
        if config.faults is not None and config.faults.enabled:
            plan = FaultPlan(config.faults, trace, recorder=obs.tracer)
        simulation = Simulation(
            trace, protocol, events, rate_bps=config.rate_bps,
            recorder=obs.tracer, faults=plan, shards=config.shards,
        )

    with obs.phase("simulate"):
        engine_report = simulation.run()

    with obs.phase("summarize"):
        broker_fraction = (
            protocol.broker_fraction()
            if isinstance(protocol, BsubProtocol)
            else 0.0
        )
        summary = metrics.summary()
        if obs.registry is not None:
            _harvest_run(obs, engine_report, summary)
            if plan is not None:
                # Fault counters only exist for faulted runs, so the
                # metrics document of a fault-free run is unchanged.
                tallies = plan.accounting.as_dict()
                for name in sorted(tallies):
                    obs.registry.counter(f"faults_{name}_total").inc(
                        tallies[name]
                    )
    return RunResult(
        protocol=protocol_name,
        trace_name=trace.name,
        ttl_min=config.ttl_min,
        decay_factor_per_min=df_per_min,
        summary=summary,
        engine=engine_report,
        broker_fraction=broker_fraction,
        fault_accounting=(
            plan.accounting.as_dict() if plan is not None else None
        ),
    )


def _harvest_run(
    obs: Observability, engine: SimulationReport, summary
) -> None:
    """Fold engine accounting and headline results into the registry."""
    registry = obs.registry
    registry.counter("engine_contacts_total").inc(engine.num_contacts)
    registry.counter("engine_messages_created_total").inc(
        engine.num_messages_created
    )
    registry.counter("engine_bytes_transferred_total").inc(
        engine.bytes_transferred
    )
    registry.counter("engine_refused_transfers_total").inc(
        engine.refused_transfers
    )
    registry.counter("engine_channels_exhausted_total").inc(
        engine.channels_exhausted
    )
    registry.gauge("run_delivery_ratio").set(_finite(summary.delivery_ratio))
    registry.gauge("run_mean_delay_s").set(_finite(summary.mean_delay_s))
    registry.gauge("run_forwardings_per_delivered").set(
        _finite(summary.forwardings_per_delivered)
    )
    registry.gauge("run_false_positive_ratio").set(
        _finite(summary.false_positive_ratio)
    )
    registry.gauge("run_false_injection_ratio").set(
        _finite(summary.false_injection_ratio)
    )


def _finite(value: float) -> float:
    """NaN-free gauge value (canonical JSON forbids NaN)."""
    return 0.0 if math.isnan(value) else value
