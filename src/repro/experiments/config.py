"""Experiment configuration (the paper's Sec. VII-A settings).

Centralises every simulation parameter the paper states, so each
figure/table bench references one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..dtn.bandwidth import BLUETOOTH_EFFECTIVE_BPS
from ..faults.spec import FaultSpec
from ..pubsub.adaptive import AdaptiveDecayConfig

__all__ = [
    "PAPER_TTL_VALUES_MIN",
    "PAPER_DF_VALUES_PER_MIN",
    "DF_SWEEP_TTL_MIN",
    "ExperimentConfig",
]

#: TTL sweep points in minutes (the paper's log-scaled 10…1000 axis).
PAPER_TTL_VALUES_MIN: Tuple[float, ...] = (10.0, 30.0, 100.0, 300.0, 1000.0)

#: DF sweep points in counter units per minute (Fig. 9 x-axis, [0, 2]).
#: 0.138 is the paper's computed DF for τ = 10 h.
PAPER_DF_VALUES_PER_MIN: Tuple[float, ...] = (
    0.0, 0.069, 0.138, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0,
)

#: The DF sweep fixes TTL at 20 hours (Sec. VII-B).
DF_SWEEP_TTL_MIN: float = 20.0 * 60.0


@dataclass(frozen=True)
class ExperimentConfig:
    """All knobs of one simulation run.

    Defaults are the paper's settings: 256-bit filters with 4 hashes,
    C = 50, ℂ = 3, election thresholds 3/5 with a 5-hour window,
    250 Kbps effective bandwidth, minimum message rate 1 per 30 min,
    single-key messages of ≤ 140 bytes, one interest per node drawn
    from the Table II distribution.
    """

    ttl_min: float = 600.0
    decay_factor_per_min: Optional[float] = None  # None → derive via Eq. 5
    num_bits: int = 256
    num_hashes: int = 4
    initial_value: float = 50.0
    copy_limit: int = 3
    election_lower: int = 3
    election_upper: int = 5
    election_window_s: float = 5 * 3600.0
    rate_bps: Optional[float] = BLUETOOTH_EFFECTIVE_BPS
    min_rate_per_s: float = 1.0 / 1800.0
    interests_per_node: int = 1
    keys_per_message: int = 1
    workload_seed: int = 7
    interest_seed: int = 11
    df_delta_per_min: float = 0.01
    broker_broker_additive_merge: bool = False
    static_brokers: Optional[Tuple[int, ...]] = None
    relay_fill_threshold: Optional[float] = None
    relay_max_filters: Optional[int] = None
    adaptive_df: Optional[AdaptiveDecayConfig] = None
    carried_capacity: Optional[int] = None
    eviction: str = "oldest"
    push_buffer_capacity: Optional[int] = None
    push_summary_exchange: str = "free"
    spray_copies: int = 8
    interest_encoding: str = "tcbf"
    #: Relay filter backend spec (:mod:`repro.core.filter_zoo`), e.g.
    #: ``"multi:mem=384"`` or ``"retouched:clear=3+17"``; ``None``
    #: keeps the paper's single array-backed TCBF relay.
    filter_spec: Optional[str] = None
    #: Fault-injection model (:mod:`repro.faults`).  ``None`` — or a
    #: spec with every rate at zero — takes the exact fault-free path.
    faults: Optional[FaultSpec] = None
    #: Contact-timeline shard count for the simulator (``None``/1 —
    #: unsharded).  Sharding is bit-deterministic: the passive path
    #: merges per-window partials (in parallel when the trace is an
    #: mmap dataset), active protocols replay the windows serially.
    shards: Optional[int] = None

    @property
    def ttl_s(self) -> float:
        return self.ttl_min * 60.0

    def with_ttl(self, ttl_min: float) -> "ExperimentConfig":
        return replace(self, ttl_min=ttl_min)

    def with_df(self, df_per_min: Optional[float]) -> "ExperimentConfig":
        return replace(self, decay_factor_per_min=df_per_min)

    def with_faults(self, faults: Optional[FaultSpec]) -> "ExperimentConfig":
        return replace(self, faults=faults)

    def with_shards(self, shards: Optional[int]) -> "ExperimentConfig":
        return replace(self, shards=shards)
