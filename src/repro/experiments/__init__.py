"""Experiment harness: configs, runner, sweeps, and report formatting."""

from .config import (
    DF_SWEEP_TTL_MIN,
    PAPER_DF_VALUES_PER_MIN,
    PAPER_TTL_VALUES_MIN,
    ExperimentConfig,
)
from .parallel import RunTask, execute_tasks, resolve_jobs
from .replication import MetricStats, ReplicatedResult, run_replicated
from .resilience import ResilienceReport, resilience_report
from .report import (
    ascii_chart,
    figure_series,
    format_observability,
    format_table,
    metric_series,
    series_table,
)
from .runner import (
    ALL_PROTOCOLS,
    PROTOCOL_NAMES,
    RunResult,
    average_peers_met_within,
    derive_decay_factor,
    run_experiment,
)
from .sweeps import df_sweep, ttl_sweep
from .tables import (
    PAPER_TABLE_I,
    format_table_i,
    format_table_ii,
    table_i_rows,
    table_ii_rows,
)

__all__ = [
    "DF_SWEEP_TTL_MIN",
    "ExperimentConfig",
    "PAPER_DF_VALUES_PER_MIN",
    "PAPER_TABLE_I",
    "PAPER_TTL_VALUES_MIN",
    "MetricStats",
    "PROTOCOL_NAMES",
    "ReplicatedResult",
    "ResilienceReport",
    "RunResult",
    "RunTask",
    "ALL_PROTOCOLS",
    "ascii_chart",
    "average_peers_met_within",
    "derive_decay_factor",
    "df_sweep",
    "execute_tasks",
    "figure_series",
    "format_observability",
    "format_table",
    "format_table_i",
    "format_table_ii",
    "metric_series",
    "resilience_report",
    "resolve_jobs",
    "run_experiment",
    "run_replicated",
    "series_table",
    "table_i_rows",
    "table_ii_rows",
    "ttl_sweep",
]
