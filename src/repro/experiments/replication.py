"""Multi-seed replication of experiments.

Single trace-driven runs carry seed noise (trace realisation, interest
assignment, message arrivals).  This module re-runs an experiment over
several seeds — re-deriving the trace *and* the workload per seed — and
aggregates each metric into mean ± sample standard deviation, which is
what EXPERIMENTS.md reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..core.params import warn_deprecated
from ..traces.model import ContactTrace
from ..workload.keys import KeyDistribution
from .config import ExperimentConfig
from .parallel import RunTask, execute_tasks
from .runner import RunResult

__all__ = ["MetricStats", "ReplicatedResult", "run_replicated"]


@dataclass(frozen=True)
class MetricStats:
    """Mean ± sample std of one metric over the replications."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.count})"


def _stats(values: Sequence[float]) -> MetricStats:
    clean = [v for v in values if not math.isnan(v)]
    if not clean:
        return MetricStats(math.nan, math.nan, 0)
    mean = sum(clean) / len(clean)
    if len(clean) > 1:
        variance = sum((v - mean) ** 2 for v in clean) / (len(clean) - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return MetricStats(mean, std, len(clean))


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregated metrics of one (trace family, protocol, config) cell."""

    protocol: str
    metrics: Dict[str, MetricStats]
    runs: List[RunResult]

    def __getitem__(self, metric: str) -> MetricStats:
        return self.metrics[metric]


def run_replicated(
    trace_factory: Callable[[int], ContactTrace],
    protocol_name: str,
    config: Optional[ExperimentConfig] = None,
    seeds: Sequence[int] = (0, 1, 2),
    distribution: Optional[KeyDistribution] = None,
    jobs: Optional[int] = None,
) -> ReplicatedResult:
    """Deprecated alias for :func:`repro.api.replicate` (same behaviour)."""
    warn_deprecated("run_replicated")
    return _run_replicated(
        trace_factory, protocol_name, config, seeds, distribution, jobs
    )


def _run_replicated(
    trace_factory: Callable[[int], ContactTrace],
    protocol_name: str,
    config: Optional[ExperimentConfig] = None,
    seeds: Sequence[int] = (0, 1, 2),
    distribution: Optional[KeyDistribution] = None,
    jobs: Optional[int] = None,
) -> ReplicatedResult:
    """Run an experiment once per seed and aggregate.

    Each seed regenerates the trace via *trace_factory(seed)* and
    shifts the workload/interest seeds, so replications are fully
    independent realisations of the same configuration.  Traces and
    per-seed configs are derived in the parent process (in seed order)
    before any fan-out, so ``jobs`` never changes the results.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    config = config or ExperimentConfig()
    tasks: List[RunTask] = []
    for seed in seeds:
        seeded = replace(
            config,
            workload_seed=config.workload_seed + 1000 * seed,
            interest_seed=config.interest_seed + 1000 * seed,
        )
        tasks.append(RunTask(trace_factory(seed), protocol_name, seeded, distribution))
    runs: List[RunResult] = execute_tasks(tasks, jobs=jobs)
    metrics = {
        "delivery_ratio": _stats([r.summary.delivery_ratio for r in runs]),
        "mean_delay_min": _stats([r.summary.mean_delay_min for r in runs]),
        "forwardings_per_delivered": _stats(
            [r.summary.forwardings_per_delivered for r in runs]
        ),
        "false_positive_ratio": _stats(
            [r.summary.false_positive_ratio for r in runs]
        ),
        "broker_fraction": _stats([r.broker_fraction for r in runs]),
    }
    return ReplicatedResult(protocol=protocol_name, metrics=metrics, runs=runs)
