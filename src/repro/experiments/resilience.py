"""Degradation accounting: a faulted run vs. its fault-free twin.

A :class:`ResilienceReport` pairs one faulted run with a *twin* run of
the identical (trace, protocol, config) cell with the fault layer
removed.  Because workload and interests derive deterministically from
the config seeds, the two runs see the same messages and subscriptions
— every metric delta is attributable to the injected faults alone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from ..obs import Observability
from ..traces.model import ContactTrace
from ..workload.keys import KeyDistribution
from .config import ExperimentConfig
from .runner import RunResult, _run_experiment

__all__ = ["ResilienceReport", "resilience_report"]


def _ratio(faulted: float, baseline: float) -> float:
    """faulted/baseline, with 0/0 -> 1 (no degradation) and x/0 -> inf."""
    if baseline == 0.0:
        return 1.0 if faulted == 0.0 else math.inf
    return faulted / baseline


@dataclass(frozen=True)
class ResilienceReport:
    """One faulted run measured against its fault-free twin."""

    faulted: RunResult
    baseline: RunResult

    @property
    def delivery_ratio(self) -> float:
        return self.faulted.summary.delivery_ratio

    @property
    def baseline_delivery_ratio(self) -> float:
        return self.baseline.summary.delivery_ratio

    @property
    def delivery_retention(self) -> float:
        """Fraction of the fault-free delivery ratio retained (1 = unhurt)."""
        return _ratio(self.delivery_ratio, self.baseline_delivery_ratio)

    @property
    def delivery_degradation(self) -> float:
        """1 - retention: the delivery fraction the faults cost."""
        return 1.0 - min(1.0, self.delivery_retention)

    @property
    def cost_ratio(self) -> float:
        """Bytes transferred, relative to the fault-free twin.

        Can exceed 1 (lost frames burn airtime and recovery causes
        re-transfers) or fall below it (skipped contacts move nothing).
        """
        return _ratio(
            self.faulted.engine.bytes_transferred,
            self.baseline.engine.bytes_transferred,
        )

    @property
    def forwardings_ratio(self) -> float:
        """Message transmissions, relative to the fault-free twin."""
        return _ratio(
            float(self.faulted.summary.num_forwardings),
            float(self.baseline.summary.num_forwardings),
        )

    @property
    def fault_accounting(self) -> Dict[str, int]:
        return dict(self.faulted.fault_accounting or {})

    def rows(self) -> List[List[object]]:
        """Table rows for the CLI (metric, faulted, baseline)."""
        f, b = self.faulted.summary, self.baseline.summary
        rows: List[List[object]] = [
            ["delivery ratio", round(f.delivery_ratio, 4),
             round(b.delivery_ratio, 4)],
            ["delivery retention", round(self.delivery_retention, 4), 1.0],
            ["mean delay (min)", round(f.mean_delay_min, 1),
             round(b.mean_delay_min, 1)],
            ["forwardings", f.num_forwardings, b.num_forwardings],
            ["bytes transferred",
             round(self.faulted.engine.bytes_transferred),
             round(self.baseline.engine.bytes_transferred)],
            ["messages", f.num_messages, b.num_messages],
        ]
        for name, value in sorted(self.fault_accounting.items()):
            rows.append([name.replace("_", " "), value, 0])
        return rows


def resilience_report(
    trace: ContactTrace,
    protocol_name: str,
    config: ExperimentConfig,
    distribution: Optional[KeyDistribution] = None,
    obs: Optional[Observability] = None,
) -> ResilienceReport:
    """Run *config* (which should carry faults) and its fault-free twin.

    The observability bundle, when given, traces only the faulted run —
    the twin is a reference measurement, not the experiment.
    """
    if config.faults is None or not config.faults.enabled:
        raise ValueError(
            "resilience_report() needs a config with an enabled FaultSpec; "
            "for fault-free runs use repro.api.run()"
        )
    faulted = _run_experiment(trace, protocol_name, config, distribution, obs)
    baseline = _run_experiment(
        trace, protocol_name, replace(config, faults=None), distribution
    )
    return ResilienceReport(faulted=faulted, baseline=baseline)
