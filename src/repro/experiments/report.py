"""Plain-text rendering of experiment results.

Benches print the same rows/series the paper's tables and figures
report; these helpers keep the formatting in one place.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence

from .runner import RunResult

__all__ = [
    "format_table",
    "series_table",
    "metric_series",
    "figure_series",
    "ascii_chart",
    "format_observability",
]


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:,}" if abs(value) >= 1000 else str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table."""
    cells = [[_format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def metric_series(results: Sequence[RunResult], metric: str) -> List[float]:
    """Extract one metric from a result list.

    Supported metrics: ``delivery_ratio``, ``delay_min``,
    ``forwardings``, ``fpr``.
    """
    extractors = {
        "delivery_ratio": lambda r: r.summary.delivery_ratio,
        "delay_min": lambda r: r.summary.mean_delay_min,
        "forwardings": lambda r: r.summary.forwardings_per_delivered,
        "fpr": lambda r: r.summary.false_positive_ratio,
        "false_injection": lambda r: r.summary.false_injection_ratio,
        "useless_injection": lambda r: r.summary.useless_injection_ratio,
    }
    if metric not in extractors:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {sorted(extractors)}"
        )
    return [extractors[metric](r) for r in results]


def series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Render a figure as a table: one x column plus one column per series."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_values)} x values"
            )
    headers = [x_label] + names
    rows = [
        [x] + [series[name][i] for name in names]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title)


def figure_series(
    sweep: Mapping[str, Sequence[RunResult]], metric: str
) -> Dict[str, List[float]]:
    """protocol -> metric series, for feeding :func:`series_table`."""
    return {name: metric_series(results, metric) for name, results in sweep.items()}


def format_observability(obs) -> str:
    """Human-readable summary of one run's observability bundle.

    Three stacked tables — event counts by type, phase wall-clock, and
    the registry's headline counters — each omitted when its component
    was not enabled on the :class:`~repro.obs.Observability` bundle.
    """
    sections = []
    tracer = getattr(obs, "tracer", None)
    if tracer is not None and getattr(tracer, "enabled", False):
        counts = tracer.counts()
        rows = [[name, counts[name]] for name in sorted(counts)]
        rows.append(["total", len(tracer.events)])
        sections.append(
            format_table(["event type", "count"], rows, title="Event trace")
        )
    if obs.timers is not None and obs.timers.summary():
        total = obs.timers.total() or 1.0
        rows = [
            [name, round(seconds, 3), f"{seconds / total:.0%}", entries]
            for name, seconds, entries in obs.timers.summary()
        ]
        sections.append(
            format_table(
                ["phase", "seconds", "share", "entries"], rows,
                title="Phase timings",
            )
        )
    if obs.registry is not None:
        snapshot = obs.registry.to_dict()
        rows = [[name, value] for name, value in snapshot["counters"].items()]
        rows += [[name, value] for name, value in snapshot["gauges"].items()]
        if rows:
            sections.append(
                format_table(["metric", "value"], rows, title="Metrics registry")
            )
    return "\n\n".join(sections)


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    title: str = "",
) -> str:
    """A terminal line chart for sweep results (no plotting library).

    Each series gets a marker letter (its name's initial, disambiguated
    by order); points sharing a cell show ``*``.  The y-axis is scaled
    to the pooled finite range of all series.
    """
    if height < 2:
        raise ValueError(f"height must be >= 2, got {height}")
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(x_values)} x values"
            )
    pooled = [
        v for name in names for v in series[name] if not math.isnan(v)
    ]
    if not pooled:
        return (title + "\n" if title else "") + "(no finite data)"
    lo, hi = min(pooled), max(pooled)
    span = hi - lo or 1.0

    width = len(x_values)
    grid = [[" "] * width for _ in range(height)]
    markers: Dict[str, str] = {}
    used = set()
    for name in names:
        letter = next(
            (c.upper() for c in name if c.isalnum() and c.upper() not in used),
            "?",
        )
        used.add(letter)
        markers[name] = letter
    for name in names:
        for col, value in enumerate(series[name]):
            if math.isnan(value):
                continue
            row = height - 1 - round((value - lo) / span * (height - 1))
            cell = grid[row][col]
            grid[row][col] = markers[name] if cell == " " else "*"

    lines = []
    if title:
        lines.append(title)
    label_hi, label_lo = f"{hi:.3g}", f"{lo:.3g}"
    pad = max(len(label_hi), len(label_lo))
    for i, row in enumerate(grid):
        if i == 0:
            label = label_hi.rjust(pad)
        elif i == height - 1:
            label = label_lo.rjust(pad)
        else:
            label = " " * pad
        lines.append(f"{label} |{''.join(row)}|")
    axis = f"{' ' * pad}  {_format_cell(x_values[0])}..{_format_cell(x_values[-1])}"
    lines.append(axis)
    legend = "  ".join(f"{markers[name]}={name}" for name in names)
    lines.append(f"{' ' * pad}  {legend}  (*=overlap)")
    return "\n".join(lines)
