"""Regeneration of the paper's tables.

* **Table I** — dataset parameters, side by side with the paper's
  published values for the real traces our synthetic ones substitute.
* **Table II** — the top-4 key probabilities of the workload
  distribution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..traces.model import ContactTrace
from ..traces.stats import compute_stats
from ..workload.keys import TABLE_II_TOP4, KeyDistribution, twitter_trends_2009
from .report import format_table

__all__ = [
    "PAPER_TABLE_I",
    "table_i_rows",
    "format_table_i",
    "table_ii_rows",
    "format_table_ii",
]

#: The paper's published Table I values.
PAPER_TABLE_I: Dict[str, Dict[str, object]] = {
    "Haggle(Infocom'06)": {
        "Device": "iMote",
        "Communication method": "Bluetooth",
        "Duration (days)": 3,
        "Number of nodes": 79,
        "Number of contacts": 67_360,
    },
    "MIT reality": {
        "Device": "phone",
        "Communication method": "Bluetooth",
        "Duration (days)": 246,
        "Number of nodes": 97,
        "Number of contacts": 54_667,
    },
}


def table_i_rows(traces: Sequence[ContactTrace]) -> List[List[object]]:
    """One row per trace: our measured Table I columns."""
    rows = []
    for trace in traces:
        stats = compute_stats(trace)
        rows.append(
            [
                stats.name,
                round(stats.duration_days, 2),
                stats.num_nodes,
                stats.num_contacts,
            ]
        )
    return rows


def format_table_i(traces: Sequence[ContactTrace]) -> str:
    """Table I for *traces*, with the paper's rows appended for reference."""
    headers = ["Data Set", "Duration (days)", "Number of nodes", "Number of contacts"]
    rows = table_i_rows(traces)
    for name, row in PAPER_TABLE_I.items():
        rows.append(
            [
                f"(paper) {name}",
                row["Duration (days)"],
                row["Number of nodes"],
                row["Number of contacts"],
            ]
        )
    return format_table(headers, rows, title="Table I — trace parameters")


def table_ii_rows(
    distribution: Optional[KeyDistribution] = None, top: int = 4
) -> List[Tuple[str, float]]:
    """The *top* heaviest (key, weight) pairs of the workload."""
    distribution = distribution or twitter_trends_2009()
    return distribution.top(top)


def format_table_ii(distribution: Optional[KeyDistribution] = None) -> str:
    """Table II: measured top-4 key weights vs the published values."""
    rows = []
    published = dict(TABLE_II_TOP4)
    for key, weight in table_ii_rows(distribution):
        rows.append([key, weight, published.get(key, float("nan"))])
    return format_table(
        ["Key", "Weight", "Paper"],
        rows,
        title="Table II — top-4 key distribution",
    )
