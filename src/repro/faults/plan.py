"""A fault plan: one spec bound to one trace, ready to inject.

:class:`FaultPlan` is the object the simulator actually talks to.  It
owns the pre-drawn churn schedule, the set of currently-down nodes, the
per-contact channel RNGs, and the :class:`FaultAccounting` tallies that
end up in ``SimulationReport.extra["faults"]``.

The simulator takes the plan duck-typed (it never imports this module),
so the fault layer stays an optional dependency of the engine: a run
without a plan executes the exact pre-fault code path.
"""

from __future__ import annotations

import math
import random
from dataclasses import asdict, dataclass
from typing import Dict, Optional, Set

import numpy as np

from ..dtn.bandwidth import ContactChannel
from ..obs.recorder import NULL_RECORDER
from ..traces.model import Contact, ContactTrace
from .channel import FaultyContactChannel
from .churn import ChurnSchedule
from .spec import FaultSpec

__all__ = ["FaultAccounting", "FaultPlan"]


@dataclass
class FaultAccounting:
    """Tallies of every injected fault in one run."""

    frames_lost: int = 0
    frames_corrupted: int = 0
    frames_truncated: int = 0
    contacts_truncated: int = 0
    contacts_skipped: int = 0
    messages_skipped: int = 0
    crashes: int = 0
    recoveries: int = 0

    def as_dict(self) -> Dict[str, int]:
        return asdict(self)


class FaultPlan:
    """One :class:`FaultSpec` bound to one trace.

    Parameters
    ----------
    spec:
        The fault model; must be :attr:`FaultSpec.enabled` (a disabled
        spec has no business constructing injection machinery — the
        caller should pass no plan at all, keeping the fault-free path
        provably untouched).
    trace:
        The trace the run will replay (defines the node population and
        the churn window).
    recorder:
        Observability recorder; fault events (``frame_dropped``,
        ``frame_truncated``, ``node_crashed``, ``node_recovered``) are
        emitted through it when enabled.
    """

    def __init__(
        self,
        spec: FaultSpec,
        trace: ContactTrace,
        recorder=NULL_RECORDER,
    ):
        if not spec.enabled:
            raise ValueError(
                "refusing to build a FaultPlan for a disabled FaultSpec; "
                "pass faults=None instead"
            )
        self.spec = spec
        self.recorder = recorder
        self.accounting = FaultAccounting()
        self._schedule = ChurnSchedule.generate(
            spec, trace.nodes, trace.start_time, trace.end_time
        )
        self._events = self._schedule.events
        self._next = 0
        self._down: Set[int] = set()

    # -- churn -----------------------------------------------------------------

    def advance(self, now: float, protocol) -> None:
        """Apply every churn event due at or before *now*.

        Crashes call ``protocol.on_node_crashed`` (wiping/aging that
        node's volatile state), recoveries call
        ``protocol.on_node_recovered``; both are emitted as obs events.
        """
        events = self._events
        while self._next < len(events) and events[self._next].time <= now:
            event = events[self._next]
            self._next += 1
            if event.kind == "crash":
                self._down.add(event.node)
                self.accounting.crashes += 1
                protocol.on_node_crashed(
                    event.node, event.time, mode=self.spec.crash_mode
                )
                if self.recorder.enabled:
                    self.recorder.emit(
                        "node_crashed", t=event.time, node=event.node,
                        mode=self.spec.crash_mode,
                    )
            else:
                self._down.discard(event.node)
                self.accounting.recoveries += 1
                protocol.on_node_recovered(event.node, event.time)
                if self.recorder.enabled:
                    self.recorder.emit(
                        "node_recovered", t=event.time, node=event.node,
                    )

    def is_down(self, node: int) -> bool:
        """Whether *node* is currently crashed."""
        return node in self._down

    def next_event_time(self) -> float:
        """Time of the next pending churn event (``inf`` when drained).

        The simulator's chunked replay uses this to recognise
        *fault-quiet* chunks: when no churn event is due before a
        chunk's last contact, the down-set is constant across the chunk
        and endpoint checks can be evaluated as one vector mask.
        """
        events = self._events
        if self._next < len(events):
            return events[self._next].time
        return math.inf

    def down_mask(self, a: np.ndarray, b: np.ndarray) -> Optional[np.ndarray]:
        """Vectorised ``is_down(a) | is_down(b)`` over contact columns.

        Returns ``None`` when no node is down, so callers can skip
        masking entirely on the (common) all-up chunks.  Only valid
        while the down-set is stable — see :meth:`next_event_time`.
        """
        if not self._down:
            return None
        down = np.fromiter(self._down, dtype=np.int64, count=len(self._down))
        return np.isin(a, down) | np.isin(b, down)

    @property
    def down_nodes(self) -> Set[int]:
        return set(self._down)

    @property
    def schedule(self) -> ChurnSchedule:
        return self._schedule

    # -- channels --------------------------------------------------------------

    def make_channel(
        self, contact: Contact, index: int, rate_bps: Optional[float]
    ) -> ContactChannel:
        """The (possibly faulty) channel for the trace's *index*-th contact.

        The RNG is keyed by the contact's trace ordinal, so channel
        faults are independent of churn draws and of how many earlier
        contacts were skipped.
        """
        if not self.spec.channel_faults:
            return ContactChannel(contact.duration, rate_bps)
        rng = random.Random(f"{self.spec.seed}:contact:{index}")
        return FaultyContactChannel(
            contact.duration,
            rate_bps,
            spec=self.spec,
            rng=rng,
            now=contact.start,
            accounting=self.accounting,
            recorder=self.recorder,
        )
