"""Node churn: deterministic crash/restart schedules.

Each node gets an independent Poisson crash process at
``crash_rate_per_day`` with exponentially distributed downtimes
(mean ``mean_downtime_s``).  Draws come from a per-node
``random.Random(f"{seed}:churn:{node}")`` — Python seeds strings via
SHA-512, so schedules are stable across processes and unaffected by how
many other nodes exist or what the channel layer draws.

A schedule is just a time-ordered list of :class:`ChurnEvent` records
(``kind`` = ``"crash"`` | ``"recover"``); the simulator replays it
interleaved with the contact trace via :class:`repro.faults.plan.FaultPlan`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from .spec import FaultSpec

__all__ = ["ChurnEvent", "ChurnSchedule"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True, order=True)
class ChurnEvent:
    """One crash or recovery of one node."""

    time: float
    node: int
    kind: str  # "crash" | "recover"

    def __post_init__(self):
        if self.kind not in ("crash", "recover"):
            raise ValueError(f"kind must be 'crash' or 'recover', got {self.kind!r}")


class ChurnSchedule:
    """A time-ordered crash/recovery schedule for a node population."""

    def __init__(self, events: Iterable[ChurnEvent]):
        self.events: Tuple[ChurnEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.node, e.kind))
        )
        down = set()
        for event in self.events:
            if event.kind == "crash":
                if event.node in down:
                    raise ValueError(f"node {event.node} crashes while already down")
                down.add(event.node)
            else:
                if event.node not in down:
                    raise ValueError(f"node {event.node} recovers while already up")
                down.discard(event.node)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @classmethod
    def generate(
        cls,
        spec: FaultSpec,
        nodes: Sequence[int],
        start_time: float,
        end_time: float,
    ) -> "ChurnSchedule":
        """Draw every node's schedule for the window [start, end).

        Crashes past *end_time* are discarded; a recovery past the end
        is kept so the node is still down when the run finishes (its
        outage genuinely extends beyond the trace).
        """
        if not spec.churn:
            return cls(())
        rate_per_s = spec.crash_rate_per_day / _SECONDS_PER_DAY
        events: List[ChurnEvent] = []
        for node in sorted(set(nodes)):
            rng = random.Random(f"{spec.seed}:churn:{node}")
            t = start_time
            while True:
                t += rng.expovariate(rate_per_s)
                if t >= end_time:
                    break
                downtime = max(1.0, rng.expovariate(1.0 / spec.mean_downtime_s))
                events.append(ChurnEvent(t, node, "crash"))
                events.append(ChurnEvent(t + downtime, node, "recover"))
                t += downtime
        return cls(events)
