"""Channel-level fault injection.

:class:`FaultyContactChannel` wraps the per-contact byte budget with
three wire-level failure modes, all drawn from a per-contact RNG keyed
``f"{seed}:contact:{index}"`` so a contact's faults depend only on the
spec and its position in the trace:

* **frame loss** — the transfer consumes airtime (the bytes are charged
  to the budget and attributed to the endpoints) but the frame never
  arrives: :meth:`send` returns ``False``;
* **corruption** — identical budget accounting, but the failure is
  attributed to a decode rejection at the receiver
  (``cause="corruption"``; see the hardened
  :func:`repro.pubsub.wire.decode_frames`);
* **truncation** — the contact breaks at a cutoff drawn uniformly
  inside the byte budget: the frame straddling the cutoff is lost
  (received prefixes of a frame are useless — the documented truncation
  semantics of the wire format) and every later transfer is refused,
  which is exactly the paper's bandwidth-cutoff case, just earlier than
  the nominal ``duration × rate`` budget.

Loss and corruption draws are made *unconditionally* whenever their
rate is non-zero, one draw per active fault per transfer, so whether an
earlier frame was lost never shifts a later frame's fate.
"""

from __future__ import annotations

import random
from typing import Optional

from ..dtn.bandwidth import BLUETOOTH_EFFECTIVE_BPS, ContactChannel
from ..obs.recorder import NULL_RECORDER
from .spec import FaultSpec

__all__ = ["FaultyContactChannel"]


class FaultyContactChannel(ContactChannel):
    """A :class:`ContactChannel` with seeded loss/corruption/truncation.

    Parameters
    ----------
    duration_s, rate_bps:
        As for :class:`ContactChannel`.
    spec:
        The fault rates to apply.
    rng:
        The contact's dedicated random stream.
    now:
        Contact start time (timestamps the emitted events).
    accounting:
        Shared :class:`repro.faults.plan.FaultAccounting` tallies.
    recorder:
        Observability recorder for ``frame_dropped`` /
        ``frame_truncated`` events.
    """

    __slots__ = (
        "_spec",
        "_rng",
        "_now",
        "_accounting",
        "_recorder",
        "_cutoff",
        "_cut_hit",
    )

    def __init__(
        self,
        duration_s: float,
        rate_bps: Optional[float] = BLUETOOTH_EFFECTIVE_BPS,
        *,
        spec: FaultSpec,
        rng: random.Random,
        now: float = 0.0,
        accounting=None,
        recorder=NULL_RECORDER,
    ):
        super().__init__(duration_s, rate_bps)
        self._spec = spec
        self._rng = rng
        self._now = now
        self._accounting = accounting
        self._recorder = recorder
        self._cutoff: Optional[float] = None
        self._cut_hit = False
        # The truncation draw happens once, up front: either this
        # contact breaks mid-transfer or it does not.  An infinite
        # budget has no meaningful "fraction", so it never truncates.
        if spec.truncation > 0 and self.budget_bytes != float("inf"):
            if rng.random() < spec.truncation:
                self._cutoff = rng.uniform(0.0, self.budget_bytes)
                if accounting is not None:
                    accounting.contacts_truncated += 1

    def send(self, num_bytes: float, sender=None, receiver=None) -> bool:
        if num_bytes < 0:
            raise ValueError(f"cannot send a negative size: {num_bytes}")
        # Contact break: the frame straddling the cutoff is cut mid-air
        # and everything after it is refused.
        if self._cutoff is not None and self._spent + num_bytes > self._cutoff:
            if not self._cut_hit:
                self._cut_hit = True
                # The straddling frame's transmitted prefix still burns
                # airtime up to the break point.
                prefix = max(0.0, self._cutoff - self._spent)
                self._spent += prefix
                self.budget_bytes = self._spent  # nothing more can flow
                if self._accounting is not None:
                    self._accounting.frames_truncated += 1
                if self._recorder.enabled:
                    self._recorder.emit(
                        "frame_truncated", t=self._now, src=sender,
                        dst=receiver, size=float(num_bytes),
                        sent=float(prefix),
                    )
            self._refused += 1
            return False
        if not self.can_send(num_bytes):
            self._refused += 1
            return False
        # Unconditional draws per active fault keep the stream stable.
        spec = self._spec
        cause = None
        if spec.frame_loss > 0 and self._rng.random() < spec.frame_loss:
            cause = "loss"
        if spec.corruption > 0 and self._rng.random() < spec.corruption:
            if cause is None:
                cause = "corruption"
        if cause is None:
            return super().send(num_bytes, sender=sender, receiver=receiver)
        # Lost or corrupted: full airtime is consumed — the radio sent
        # every byte — but the frame is unusable at the receiver.
        self._spent += num_bytes
        if sender is not None:
            self.tx_bytes[sender] = self.tx_bytes.get(sender, 0.0) + num_bytes
        if receiver is not None:
            self.rx_bytes[receiver] = self.rx_bytes.get(receiver, 0.0) + num_bytes
        if self._accounting is not None:
            if cause == "loss":
                self._accounting.frames_lost += 1
            else:
                self._accounting.frames_corrupted += 1
        if self._recorder.enabled:
            self._recorder.emit(
                "frame_dropped", t=self._now, src=sender, dst=receiver,
                size=float(num_bytes), cause=cause,
            )
        return False

    @property
    def truncated(self) -> bool:
        """True when this contact drew a mid-transfer break."""
        return self._cutoff is not None
