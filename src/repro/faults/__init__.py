"""Deterministic, seeded fault injection for B-SUB runs.

The paper targets human networks, where contacts break mid-transfer and
devices die; this package models both adversities without touching the
fault-free code path:

* :class:`FaultSpec` — a frozen, validated description of the fault
  model (channel rates + churn process + root seed), parseable from the
  ``--faults`` CLI string.
* :class:`FaultyContactChannel` — per-contact frame loss, corruption,
  and mid-transfer truncation at the wire boundary.
* :class:`ChurnSchedule` / :class:`ChurnEvent` — pre-drawn per-node
  crash/restart schedules.
* :class:`FaultPlan` / :class:`FaultAccounting` — a spec bound to a
  trace: what the simulator replays, and the degradation tallies it
  reports.

See ``docs/faults.md`` for the full model and determinism guarantees.
"""

from .channel import FaultyContactChannel
from .churn import ChurnEvent, ChurnSchedule
from .plan import FaultAccounting, FaultPlan
from .spec import NO_FAULTS, FaultSpec

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "FaultAccounting",
    "FaultPlan",
    "FaultSpec",
    "FaultyContactChannel",
    "NO_FAULTS",
]
