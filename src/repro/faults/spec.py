"""Fault-model specification.

A :class:`FaultSpec` is a frozen, fully-seeded description of the
adversarial conditions a run is subjected to.  Two fault families are
modelled, mirroring what actually breaks in human networks:

* **Channel faults** — per-transfer frame loss and corruption plus
  per-contact mid-transfer truncation, applied at the wire boundary
  (every transfer is a frame; a lost/corrupted frame consumes airtime
  but never usably arrives, and a truncated contact behaves exactly
  like the paper's bandwidth-cutoff case).
* **Node churn** — crash/restart schedules that cost a node its
  volatile protocol state (filters, buffers, broker role).  Recovery
  relies on the protocol's natural anti-entropy: genuine filters are
  re-announced on the next contact.

Everything is deterministic: the same spec (including ``seed``) against
the same trace produces byte-identical behaviour, and a spec with all
rates at zero is provably inert (the simulator takes the exact same
code path as with no fault layer at all).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

__all__ = ["FaultSpec", "NO_FAULTS"]

#: Valid crash-recovery modes: ``"wipe"`` loses every piece of volatile
#: state; ``"age"`` models filters persisted to flash — the relay
#: filter survives (and keeps decaying through the outage) while
#: buffers, receipts, and the broker role are still lost.
CRASH_MODES = ("wipe", "age")

#: Short aliases accepted by :meth:`FaultSpec.parse` (the CLI surface).
_PARSE_ALIASES = {
    "loss": "frame_loss",
    "frame_loss": "frame_loss",
    "trunc": "truncation",
    "truncation": "truncation",
    "corrupt": "corruption",
    "corruption": "corruption",
    "crash": "crash_rate_per_day",
    "crash_rate_per_day": "crash_rate_per_day",
    "downtime": "mean_downtime_s",
    "mean_downtime_s": "mean_downtime_s",
    "mode": "crash_mode",
    "crash_mode": "crash_mode",
    "seed": "seed",
}


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic description of injected faults for one run.

    Attributes
    ----------
    frame_loss:
        Probability that any single transfer (a wire frame) is lost in
        flight.  Airtime is still consumed — the bytes are charged to
        the contact budget — but the frame never arrives.
    truncation:
        Probability that a contact breaks mid-transfer.  A truncated
        contact picks a uniform cutoff inside its byte budget; the
        frame that straddles the cutoff is lost (received prefixes of a
        frame are useless) and every later transfer is refused, which
        is exactly the paper's bandwidth-cutoff semantics.
    corruption:
        Probability that a transfer arrives with flipped bytes.  The
        receiver's frame decode rejects it, so the effect equals a
        loss, but it is accounted separately (``cause="corruption"``).
    crash_rate_per_day:
        Expected crashes per node per day (a Poisson process per node).
    mean_downtime_s:
        Mean outage duration after a crash (exponentially distributed,
        at least one second).
    crash_mode:
        ``"wipe"`` (all volatile state lost) or ``"age"`` (relay
        filters persist across the outage and simply keep decaying;
        buffers, receipts, and the broker flag are still lost).
    seed:
        Root seed for every fault decision.  Channel draws are keyed by
        contact index, churn draws by node id, so the two fault
        families never perturb each other's randomness.
    """

    frame_loss: float = 0.0
    truncation: float = 0.0
    corruption: float = 0.0
    crash_rate_per_day: float = 0.0
    mean_downtime_s: float = 3600.0
    crash_mode: str = "wipe"
    seed: int = 0

    def __post_init__(self):
        for name in ("frame_loss", "truncation", "corruption"):
            value = getattr(self, name)
            if not (isinstance(value, (int, float)) and math.isfinite(value)):
                raise ValueError(f"{name} must be a finite number, got {value!r}")
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if not math.isfinite(self.crash_rate_per_day) or self.crash_rate_per_day < 0:
            raise ValueError(
                f"crash_rate_per_day must be >= 0, got {self.crash_rate_per_day}"
            )
        if not math.isfinite(self.mean_downtime_s) or self.mean_downtime_s <= 0:
            raise ValueError(
                f"mean_downtime_s must be positive, got {self.mean_downtime_s}"
            )
        if self.crash_mode not in CRASH_MODES:
            raise ValueError(
                f"crash_mode must be one of {CRASH_MODES}, got {self.crash_mode!r}"
            )

    # -- classification --------------------------------------------------------

    @property
    def channel_faults(self) -> bool:
        """True when any per-contact channel fault can occur."""
        return self.frame_loss > 0 or self.truncation > 0 or self.corruption > 0

    @property
    def churn(self) -> bool:
        """True when nodes can crash."""
        return self.crash_rate_per_day > 0

    @property
    def enabled(self) -> bool:
        """True when the spec can change behaviour at all.

        A disabled spec is *provably* inert: the simulator refuses to
        even build the fault plumbing for it, so the fault-free code
        path is bit-identical to a run with no spec.
        """
        return self.channel_faults or self.churn

    # -- construction ----------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultSpec":
        """The canonical disabled spec (also available as ``NO_FAULTS``)."""
        return NO_FAULTS

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Build a spec from a compact ``key=value,key=value`` string.

        This is the CLI surface (``repro run --faults "loss=0.1,crash=2"``).
        Accepted keys: ``loss``, ``trunc``, ``corrupt``, ``crash``
        (per day), ``downtime`` (seconds), ``mode`` (wipe|age), and
        ``seed`` — full field names work too.
        """
        kwargs = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad fault spec item {part!r}: expected key=value"
                )
            key, _, raw = part.partition("=")
            field = _PARSE_ALIASES.get(key.strip())
            if field is None:
                raise ValueError(
                    f"unknown fault spec key {key.strip()!r}; expected one of "
                    f"{sorted(set(_PARSE_ALIASES))}"
                )
            if field == "crash_mode":
                kwargs[field] = raw.strip()
            elif field == "seed":
                kwargs[field] = int(raw)
            else:
                kwargs[field] = float(raw)
        return cls(**kwargs)

    def with_seed(self, seed: int) -> "FaultSpec":
        """The same fault model under a different random seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """Compact human-readable summary (CLI/report label)."""
        if not self.enabled:
            return "no faults"
        parts = []
        if self.frame_loss:
            parts.append(f"loss={self.frame_loss:g}")
        if self.truncation:
            parts.append(f"trunc={self.truncation:g}")
        if self.corruption:
            parts.append(f"corrupt={self.corruption:g}")
        if self.churn:
            parts.append(
                f"crash={self.crash_rate_per_day:g}/day"
                f"~{self.mean_downtime_s:g}s[{self.crash_mode}]"
            )
        parts.append(f"seed={self.seed}")
        return ",".join(parts)


#: Shared disabled spec — the default everywhere a FaultSpec is expected.
NO_FAULTS = FaultSpec()
