"""A small deterministic metrics registry.

Three instrument kinds, mirroring the usual production trio:

* :class:`Counter` — a monotone total (``inc``).
* :class:`Gauge` — a point-in-time value (``set``).
* :class:`Histogram` — observation counts in **fixed** buckets.  The
  bucket edges are part of the instrument's identity, never derived
  from the data, so the serialized output of a seeded run is
  deterministic byte-for-byte.

The registry serializes to a sorted, compactly separated JSON document
(:meth:`MetricsRegistry.to_json`), which golden tests can compare as
bytes.  Wall-clock phase timings (:mod:`repro.obs.timers`) are kept
out of this document by design — they are never deterministic.
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Map a registry name onto the Prometheus metric-name alphabet."""
    sanitized = _PROM_NAME_RE.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_number(value: Number) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _plain(value: Number) -> Number:
    """Normalise numpy scalars so JSON output is backend-independent."""
    if type(value) is int or type(value) is float:
        return value
    if hasattr(value, "item"):  # numpy scalar (including float64 subclasses)
        return value.item()
    return value


class Counter:
    """A monotone counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: cannot inc by {amount}")
        self.value += _plain(amount)


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = _plain(value)


class Histogram:
    """Observation counts over fixed, pre-declared bucket edges.

    ``edges`` are the *upper* bounds of the finite buckets; one
    overflow bucket catches everything above the last edge.  An
    observation lands in the first bucket whose edge is >= the value.
    """

    __slots__ = ("name", "edges", "buckets", "count", "total")

    def __init__(self, name: str, edges: Sequence[float]):
        if not edges:
            raise ValueError(f"histogram {self.__class__.__name__} needs edges")
        ordered = [float(e) for e in edges]
        if ordered != sorted(ordered) or len(set(ordered)) != len(ordered):
            raise ValueError(f"histogram {name!r}: edges must be strictly increasing")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(ordered)
        self.buckets: List[int] = [0] * (len(ordered) + 1)  # + overflow
        self.count = 0
        self.total: float = 0.0

    def observe(self, value: Number) -> None:
        value = float(_plain(value))
        self.buckets[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments with deterministic JSON serialization.

    Instruments are created on first use (``registry.counter("x")``)
    and re-fetched by name afterwards; re-declaring a histogram with
    different edges is an error (the edges are part of its identity).
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(
        self, name: str, edges: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            if edges is None:
                raise ValueError(
                    f"histogram {name!r} does not exist yet; pass its edges"
                )
            histogram = self._histograms[name] = Histogram(name, edges)
        elif edges is not None and tuple(float(e) for e in edges) != histogram.edges:
            raise ValueError(
                f"histogram {name!r} already declared with edges "
                f"{histogram.edges}, got {tuple(edges)}"
            )
        return histogram

    def to_dict(self) -> Dict[str, dict]:
        """A nested plain-dict snapshot, keys sorted at every level."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: {
                    "edges": list(h.edges),
                    "buckets": list(h.buckets),
                    "count": h.count,
                    "total": h.total,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict[str, dict]) -> None:
        """Absorb another registry's :meth:`to_dict` snapshot.

        The fleet supervisor aggregates its workers' registries this
        way (each snapshot crosses a process boundary as JSON):
        counters add, histograms with identical edges add
        bucket-for-bucket, and gauges add too — the serve gauges that
        matter fleet-wide (open sessions, known nodes) are naturally
        summable, and a sum is at least monotone for the rest.
        Histograms unseen locally are created with the snapshot's
        edges; mismatched edges are an error, as everywhere else.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name)
            gauge.set(gauge.value + value)
        for name, doc in snapshot.get("histograms", {}).items():
            # histogram() raises on mismatched edges, as everywhere.
            histogram = self.histogram(name, edges=doc["edges"])
            for i, in_bucket in enumerate(doc["buckets"]):
                histogram.buckets[i] += int(in_bucket)
            histogram.count += int(doc["count"])
            histogram.total += float(doc["total"])

    @classmethod
    def from_snapshots(
        cls, snapshots: Sequence[Dict[str, dict]]
    ) -> "MetricsRegistry":
        """A registry holding the merged sum of *snapshots*."""
        registry = cls()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        return registry

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact separators, newline-terminated)."""
        return (
            json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def to_prom(self) -> str:
        """Prometheus text exposition (version 0.0.4) of the registry.

        Instrument names are sanitised onto the metric-name alphabet
        (dots become underscores), counters get the conventional
        ``_total`` suffix, and histograms expose cumulative
        ``_bucket{le=...}`` series ending in ``le="+Inf"`` plus
        ``_sum``/``_count``.  Emission order is sorted by instrument
        name within each kind, so the output is deterministic and can
        be pinned byte-for-byte in tests.
        """
        lines: List[str] = []
        for name in sorted(self._counters):
            prom = _prom_name(name)
            if not prom.endswith("_total"):
                prom += "_total"
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {_prom_number(self._counters[name].value)}")
        for name in sorted(self._gauges):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {_prom_number(self._gauges[name].value)}")
        for name, histogram in sorted(self._histograms.items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for edge, in_bucket in zip(
                histogram.edges, histogram.buckets
            ):
                cumulative += in_bucket
                lines.append(
                    f'{prom}_bucket{{le="{_prom_number(edge)}"}} {cumulative}'
                )
            lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
            lines.append(f"{prom}_sum {_prom_number(histogram.total)}")
            lines.append(f"{prom}_count {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""

    def write_prom(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prom())
