"""Online observability: stream a growing trace into rolling live metrics.

The lineage/analysis engine (:mod:`repro.obs.analyze`) is a pure
function of a *finished* trace.  This module turns the same event
stream into a **live** ops surface: a :class:`LiveTailer` consumes
schema-v2 events as they happen — from the in-process
:meth:`TraceRecorder.subscribe <repro.obs.recorder.TraceRecorder.subscribe>`
bus, from ``read_trace_iter(path, follow=True)`` tailing a growing
file, from :func:`follow_merged_traces` over a fleet's per-worker
shards, or from :func:`replay_trace_iter` re-playing a recorded run at
wall-clock speed — and maintains:

* **Exact running totals** that match ``analyze_trace`` on the bytes
  seen so far.  The offline analyzer counts messages/forwards/
  injections at event-feed time and deliveries at lineage
  finalisation, but its final flush makes the delivery totals
  insensitive to finalisation timing — so counting deliveries directly
  at event time reproduces the analyzer's totals over *any* event
  prefix.  :meth:`LiveTailer.verify_parity` re-runs the offline
  analyzer over the consumed prefix and raises :class:`ParityError` on
  any mismatch; the serve soak gate does this at every checkpoint.
* **Bounded rolling windows** (time-horizon + hard length cap) of
  delivery completeness, latency decomposition percentiles
  (wait / carry / final hop, via the
  :class:`~repro.obs.lineage.LineageBuilder` ``on_delivery`` hook),
  false-injection attribution by cause class, and per-broker dwell.
  Lineage state stays O(live messages) — the builder's expiry heap
  does the bounding, exactly as offline.
* **A registry mirror**: live counters are incremented into an
  attached :class:`~repro.obs.registry.MetricsRegistry` at feed time
  and window-derived gauges refreshed on demand, so the broker's
  ``/metrics`` exposition grows ``live_*`` series for free.

Attribution is fully event-derivable, so it stays exact (not just
windowed): ``relay_filter_fp`` counts ``false_injection`` events,
``genuine_but_stale`` counts inject forwards with ``match="stale"``,
``producer_self`` counts unintended deliveries with ``cause="self"``,
and ``direct_bf_fp`` the remaining unintended deliveries — the same
classes, by the same rules, as the offline analyzer.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from .analyze import TraceAnalysis, analyze_trace
from .events import TraceEvent
from .lineage import DeliveryLeg, LineageBuilder, MessageLineage
from .recorder import _parse_trace_line, read_trace_iter

__all__ = [
    "PARITY_KEYS",
    "ParityError",
    "RollingWindow",
    "LiveTailer",
    "follow_merged_traces",
    "offline_parity_counters",
    "replay_trace_iter",
    "format_watch_table",
]

#: The six totals gated for exact online/offline parity — the same
#: keys ``scripts/check_serve_parity.py`` compares between the broker's
#: dispatcher counters and the offline analyzer.
PARITY_KEYS = (
    "messages_created",
    "intended_pairs",
    "forwards_direct",
    "deliveries_total",
    "deliveries_intended",
    "deliveries_false",
)


class ParityError(AssertionError):
    """Live rolling totals diverged from the offline analyzer."""

    def __init__(self, mismatches: Sequence[str]):
        super().__init__(
            "live/offline parity violated: " + "; ".join(mismatches)
        )
        self.mismatches = list(mismatches)


def offline_parity_counters(analysis: TraceAnalysis) -> Dict[str, int]:
    """The six :data:`PARITY_KEYS` totals of an offline analysis."""
    return {
        "messages_created": int(analysis.messages["created"]),
        "intended_pairs": int(analysis.messages["intended_pairs"]),
        "forwards_direct": int(analysis.forwards.get("direct", 0)),
        "deliveries_total": int(analysis.deliveries["total"]),
        "deliveries_intended": int(analysis.deliveries["intended"]),
        "deliveries_false": int(analysis.deliveries["false"]),
    }


class RollingWindow:
    """A time-horizon window of (t, value) samples with a hard cap.

    Samples older than ``horizon_s`` relative to the newest sample are
    pruned on every ``add``; ``max_samples`` additionally bounds memory
    regardless of event rate.  Percentiles use the nearest-rank method
    on the retained samples.
    """

    __slots__ = ("horizon_s", "_samples")

    def __init__(self, horizon_s: float = 300.0, max_samples: int = 4096):
        self.horizon_s = float(horizon_s)
        self._samples: Deque[Tuple[float, float]] = deque(maxlen=max_samples)

    def add(self, t: float, value: float) -> None:
        self._samples.append((float(t), float(value)))
        self.prune(t)

    def prune(self, now: float) -> None:
        cutoff = float(now) - self.horizon_s
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def count(self) -> int:
        return len(self._samples)

    def sum(self) -> float:
        return sum(value for _, value in self._samples)

    def mean(self) -> Optional[float]:
        if not self._samples:
            return None
        return self.sum() / len(self._samples)

    def percentile(self, p: float) -> Optional[float]:
        """Nearest-rank percentile ``p`` in [0, 100] of the window."""
        if not self._samples:
            return None
        ordered = sorted(value for _, value in self._samples)
        rank = max(
            0, min(len(ordered) - 1, int(round(p / 100.0 * len(ordered))) - 1)
        )
        if p <= 0:
            rank = 0
        return ordered[rank]


class LiveTailer:
    """Streaming consumer maintaining live metrics with offline parity.

    Feed it schema-v2 events — via :meth:`feed` from any source — and
    read :meth:`totals`, :meth:`snapshot`, or the mirrored registry at
    any moment.  Thread-safe: events may arrive from an event-loop
    thread (the recorder bus) or a feeder thread while HTTP handlers
    take snapshots concurrently.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` receiving
        ``live_*`` counters at feed time and gauges on
        :meth:`refresh_registry`.
    window_s:
        Rolling-window horizon in trace seconds.
    top_k:
        Per-broker dwell rows retained in :meth:`snapshot`.
    source_paths:
        Shard paths backing the stream, enabling
        :meth:`verify_parity` with no arguments.
    checkpoint_every:
        When > 0 and ``source_paths`` is set, automatically run a
        file-backed parity checkpoint every N fed events.
    """

    def __init__(
        self,
        registry=None,
        window_s: float = 300.0,
        top_k: int = 8,
        source_paths: Optional[Sequence[str]] = None,
        checkpoint_every: int = 0,
    ):
        self.registry = registry
        self.window_s = float(window_s)
        self.top_k = int(top_k)
        self.source_paths = list(source_paths) if source_paths else None
        self.checkpoint_every = int(checkpoint_every)
        self._lock = threading.RLock()
        self.builder = LineageBuilder(on_delivery=self._on_leg)
        # -- exact running totals (analyzer event-time semantics) ----------
        self.seen_events = 0
        self.seen_by_shard: Dict[int, int] = {}
        self.messages_created = 0
        self.intended_pairs = 0
        self.forwards: Dict[str, int] = {}
        self.deliveries_total = 0
        self.deliveries_intended = 0
        self.deliveries_false = 0
        self.false_injections = 0
        self.injection_match: Dict[str, int] = {}
        self.attribution: Dict[str, int] = {
            "relay_filter_fp": 0,
            "genuine_but_stale": 0,
            "direct_bf_fp": 0,
            "producer_self": 0,
        }
        self.end_time: Optional[float] = None
        self.sim_ends_seen = 0
        self.parity_checks = 0
        self.parity_failures = 0
        self.last_event_t: Optional[float] = None
        self._started_wall = time.monotonic()
        # -- rolling windows ------------------------------------------------
        self.delay_window = RollingWindow(self.window_s)
        self.wait_window = RollingWindow(self.window_s)
        self.carry_window = RollingWindow(self.window_s)
        self.final_hop_window = RollingWindow(self.window_s)
        self.intended_window = RollingWindow(self.window_s)
        self.false_window = RollingWindow(self.window_s)
        #: node -> [dwell_s sum, deliveries carried] (exact totals).
        self.broker_dwell: Dict[int, List[float]] = {}

    # -- ingestion ----------------------------------------------------------

    def feed(self, event: TraceEvent, shard: int = 0) -> None:
        """Absorb one event (events must arrive in stream order)."""
        with self._lock:
            self.seen_events += 1
            self.seen_by_shard[shard] = self.seen_by_shard.get(shard, 0) + 1
            self.last_event_t = event.t
            fields = event.fields
            type_ = event.type
            if type_ == "create":
                self.messages_created += 1
                self.intended_pairs += int(fields.get("num_intended", 0))
            elif type_ == "forward":
                kind = fields.get("kind", "?")
                self.forwards[kind] = self.forwards.get(kind, 0) + 1
                if kind == "inject":
                    match = fields.get("match", "legacy")
                    self.injection_match[match] = (
                        self.injection_match.get(match, 0) + 1
                    )
                    if match == "stale":
                        self.attribution["genuine_but_stale"] += 1
            elif type_ == "delivery":
                self.deliveries_total += 1
                if bool(fields["intended"]):
                    self.deliveries_intended += 1
                    self.intended_window.add(event.t, 1.0)
                else:
                    self.deliveries_false += 1
                    self.false_window.add(event.t, 1.0)
                    if fields.get("cause") == "self":
                        self.attribution["producer_self"] += 1
                    else:
                        self.attribution["direct_bf_fp"] += 1
            elif type_ == "false_injection":
                self.false_injections += 1
                self.attribution["relay_filter_fp"] += 1
            elif type_ == "sim_end":
                self.sim_ends_seen += 1
                self.end_time = (
                    event.t
                    if self.end_time is None
                    else max(self.end_time, event.t)
                )
            registry = self.registry
            if registry is not None:
                registry.counter("live_events_total").inc()
                if type_ == "delivery":
                    registry.counter("live_deliveries_total").inc()
                    if bool(fields["intended"]):
                        registry.counter("live_deliveries_intended_total").inc()
                    else:
                        registry.counter("live_deliveries_false_total").inc()
                elif type_ == "false_injection":
                    registry.counter("live_false_injections_total").inc()
            self.builder.feed(event)
            if (
                self.checkpoint_every > 0
                and self.source_paths
                and self.seen_events % self.checkpoint_every == 0
            ):
                self.verify_parity()

    def _on_leg(self, lineage: MessageLineage, leg: DeliveryLeg) -> None:
        # Invoked by the builder inside feed() — the lock is held.
        if leg.intended and leg.delay_s is not None:
            self.delay_window.add(leg.t, leg.delay_s)
        decomposition = leg.decomposition
        if decomposition is None:
            return
        if decomposition.producer_wait_s is not None:
            self.wait_window.add(leg.t, decomposition.producer_wait_s)
            self.carry_window.add(leg.t, decomposition.carry_s)
            self.final_hop_window.add(leg.t, decomposition.final_hop_s)
        for node, dwell in decomposition.dwells:
            account = self.broker_dwell.get(node)
            if account is None:
                account = self.broker_dwell[node] = [0.0, 0]
            account[0] += dwell
            account[1] += 1

    # -- parity -------------------------------------------------------------

    def parity_counters(self) -> Dict[str, int]:
        """The six :data:`PARITY_KEYS` running totals."""
        with self._lock:
            return {
                "messages_created": self.messages_created,
                "intended_pairs": self.intended_pairs,
                "forwards_direct": self.forwards.get("direct", 0),
                "deliveries_total": self.deliveries_total,
                "deliveries_intended": self.deliveries_intended,
                "deliveries_false": self.deliveries_false,
            }

    def check_parity(self, offline: Dict[str, int]) -> List[str]:
        """Mismatch descriptions vs an offline six-key dict (empty = ok)."""
        live = self.parity_counters()
        return [
            f"{key}: live {live[key]} != offline {int(offline[key])}"
            for key in PARITY_KEYS
            if live[key] != int(offline[key])
        ]

    def verify_parity(
        self, paths: Optional[Sequence[str]] = None
    ) -> Dict[str, int]:
        """Checkpoint: re-analyze the consumed prefix offline, compare.

        Re-reads the first ``seen_by_shard[i]`` events of every shard
        file (``itertools.islice`` never consumes past the prefix, so
        an in-flight partially written trailing line is never touched),
        chains them through :func:`analyze_trace`, and compares the six
        parity totals against the live ones.  Raises
        :class:`ParityError` on any mismatch; returns the offline
        totals otherwise.
        """
        with self._lock:
            consumed = dict(self.seen_by_shard)
            live = self.parity_counters()
            paths = list(paths) if paths is not None else self.source_paths
        if not paths:
            raise ValueError(
                "verify_parity needs shard paths (source_paths unset)"
            )
        events = itertools.chain.from_iterable(
            itertools.islice(read_trace_iter(path), consumed.get(shard, 0))
            for shard, path in enumerate(paths)
        )
        offline = offline_parity_counters(
            analyze_trace(events, trace_schema=2)
        )
        mismatches = [
            f"{key}: live {live[key]} != offline {offline[key]}"
            for key in PARITY_KEYS
            if live[key] != offline[key]
        ]
        with self._lock:
            self.parity_checks += 1
            if mismatches:
                self.parity_failures += 1
            registry = self.registry
            if registry is not None:
                registry.counter("live_parity_checks_total").inc()
                if mismatches:
                    registry.counter("live_parity_failures_total").inc()
        if mismatches:
            raise ParityError(mismatches)
        return offline

    # -- views --------------------------------------------------------------

    def totals(self) -> Dict[str, object]:
        """Exact running totals (analyzer semantics) as a plain dict."""
        with self._lock:
            intended = self.intended_pairs
            return {
                "events": self.seen_events,
                "messages_created": self.messages_created,
                "intended_pairs": intended,
                "forwards": dict(sorted(self.forwards.items())),
                "deliveries": {
                    "total": self.deliveries_total,
                    "intended": self.deliveries_intended,
                    "false": self.deliveries_false,
                },
                "false_injections": self.false_injections,
                "attribution": dict(self.attribution),
                "completeness": (
                    self.deliveries_intended / intended if intended else None
                ),
                "messages_live": self.builder.num_live,
                "peak_live_messages": self.builder.peak_live,
                "end_time": self.end_time,
            }

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready live view: totals + windows + parity health."""
        with self._lock:
            now = self.last_event_t
            if now is not None:
                for window in (
                    self.delay_window,
                    self.wait_window,
                    self.carry_window,
                    self.final_hop_window,
                    self.intended_window,
                    self.false_window,
                ):
                    window.prune(now)
            brokers = sorted(
                self.broker_dwell.items(),
                key=lambda item: (-item[1][0], item[0]),
            )[: self.top_k]
            horizon = self.window_s
            return {
                "totals": self.totals(),
                "window_s": horizon,
                "window": {
                    "deliveries_intended": self.intended_window.count,
                    "deliveries_false": self.false_window.count,
                    "delivery_rate_per_s": (
                        (self.intended_window.count + self.false_window.count)
                        / horizon
                    ),
                    "delay_p50_s": self.delay_window.percentile(50),
                    "delay_p95_s": self.delay_window.percentile(95),
                    "wait_p50_s": self.wait_window.percentile(50),
                    "wait_p95_s": self.wait_window.percentile(95),
                    "carry_p50_s": self.carry_window.percentile(50),
                    "carry_p95_s": self.carry_window.percentile(95),
                    "final_hop_p50_s": self.final_hop_window.percentile(50),
                    "final_hop_p95_s": self.final_hop_window.percentile(95),
                },
                "brokers": [
                    {
                        "node": node,
                        "dwell_s": dwell,
                        "deliveries_carried": carried,
                    }
                    for node, (dwell, carried) in brokers
                ],
                "parity": {
                    "checks": self.parity_checks,
                    "failures": self.parity_failures,
                },
                "shards": dict(sorted(self.seen_by_shard.items())),
                "uptime_s": time.monotonic() - self._started_wall,
                "last_event_t": self.last_event_t,
                "sim_ends_seen": self.sim_ends_seen,
            }

    def refresh_registry(self) -> None:
        """Mirror window-derived values into the registry's gauges."""
        registry = self.registry
        if registry is None:
            return
        snapshot = self.snapshot()
        totals = snapshot["totals"]
        window = snapshot["window"]
        registry.gauge("live_messages_live").set(totals["messages_live"])
        completeness = totals["completeness"]
        registry.gauge("live_completeness").set(
            completeness if completeness is not None else 0.0
        )
        for key in (
            "delay_p50_s",
            "delay_p95_s",
            "wait_p95_s",
            "carry_p95_s",
            "final_hop_p95_s",
        ):
            value = window[key]
            registry.gauge(f"live_window_{key}").set(
                value if value is not None else 0.0
            )
        registry.gauge("live_window_deliveries").set(
            window["deliveries_intended"] + window["deliveries_false"]
        )


# -- stream sources ---------------------------------------------------------


class _ShardTail:
    """Incremental reader of one (possibly still growing) trace shard."""

    __slots__ = ("shard", "path", "fh", "buffer", "pending", "done")

    def __init__(self, shard: int, path: str):
        self.shard = shard
        self.path = path
        self.fh = None
        self.buffer = b""
        self.pending: Deque[TraceEvent] = deque()
        self.done = False

    def pump(self) -> bool:
        """Read whatever is available; True if any new event arrived."""
        if self.done:
            return False
        if self.fh is None:
            try:
                self.fh = open(self.path, "rb")
            except FileNotFoundError:
                return False
        progressed = False
        while True:
            chunk = self.fh.read(65536)
            if not chunk:
                break
            self.buffer += chunk
            while True:
                newline = self.buffer.find(b"\n")
                if newline < 0:
                    break
                line = self.buffer[:newline].decode("utf-8")
                self.buffer = self.buffer[newline + 1:]
                event = _parse_trace_line(line)
                if event is None:
                    continue
                self.pending.append(event)
                progressed = True
        return progressed

    @property
    def head(self) -> Optional[TraceEvent]:
        return self.pending[0] if self.pending else None

    def pop(self) -> TraceEvent:
        event = self.pending.popleft()
        if event.type == "sim_end":
            self.finish()
        return event

    def finish(self) -> None:
        self.done = True
        if self.fh is not None:
            self.fh.close()
            self.fh = None


def follow_merged_traces(
    paths: Sequence[str],
    *,
    follow: bool = True,
    poll_interval_s: float = 0.2,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Iterator[Tuple[int, TraceEvent]]:
    """K-way merge of trace shards, yielding ``(shard, event)`` pairs.

    Events are merged by ``(t, seq, shard)`` — the
    :func:`~repro.obs.recorder.merge_traces` ordering — so over
    quiescent (fully written) shards the event sequence matches the
    offline merge exactly.  While shards are still growing, strict
    ordering would let one idle shard stall the stream, so after one
    empty poll the merge emits the earliest *available* head instead;
    the six parity totals are order-insensitive, so end-of-run parity
    is unaffected.

    Each shard completes at its own ``sim_end`` (yielded as-is; sum
    the fields across shards for fleet totals).  With ``follow=False``
    a shard also completes at EOF.  *should_stop* drains the buffered
    heads in order and returns.
    """
    tails = [_ShardTail(shard, path) for shard, path in enumerate(paths)]

    def earliest(candidates: List[_ShardTail]) -> _ShardTail:
        return min(
            candidates,
            key=lambda tail: (tail.head.t, tail.head.seq, tail.shard),
        )

    waited = False
    while any(not tail.done for tail in tails):
        for tail in tails:
            tail.pump()
        if not follow:
            for tail in tails:
                if not tail.done and not tail.pending:
                    tail.finish()
        ready = [tail for tail in tails if not tail.done and tail.pending]
        blocked = [tail for tail in tails if not tail.done and not tail.pending]
        if ready and (not blocked or waited):
            tail = earliest(ready)
            yield tail.shard, tail.pop()
            waited = False
            continue
        if should_stop is not None and should_stop():
            while ready:
                tail = earliest(ready)
                yield tail.shard, tail.pop()
                ready = [t for t in tails if not t.done and t.pending]
            for tail in tails:
                tail.finish()
            return
        waited = True
        time.sleep(poll_interval_s)
    while True:
        ready = [tail for tail in tails if tail.pending]
        if not ready:
            break
        tail = earliest(ready)
        yield tail.shard, tail.pop()


def replay_trace_iter(
    path: str,
    speed: float = 1.0,
    sleep: Callable[[float], None] = time.sleep,
    max_sleep_s: float = 5.0,
) -> Iterator[TraceEvent]:
    """Replay a recorded trace paced against the wall clock.

    Trace time advances ``speed`` seconds per wall second (``speed=60``
    replays a minute of trace per second); individual sleeps are capped
    at *max_sleep_s* so long quiet gaps in the trace stay skimmable.
    The pacing anchors to the first event, so cumulative drift does not
    accumulate across events.
    """
    if speed <= 0:
        raise ValueError(f"speed must be > 0, got {speed}")
    origin_t: Optional[float] = None
    origin_wall = time.monotonic()
    for event in read_trace_iter(path):
        if origin_t is None:
            origin_t = event.t
            origin_wall = time.monotonic()
        else:
            due = origin_wall + (event.t - origin_t) / speed
            wait = due - time.monotonic()
            if wait > 0:
                sleep(min(wait, max_sleep_s))
        yield event


# -- terminal rendering -----------------------------------------------------


def _fmt(value, suffix: str = "") -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3f}{suffix}"
    return f"{value}{suffix}"


def format_watch_table(snapshot: Dict[str, object]) -> str:
    """Render a :meth:`LiveTailer.snapshot` as a terminal summary table."""
    totals = snapshot["totals"]
    window = snapshot["window"]
    deliveries = totals["deliveries"]
    attribution = totals["attribution"]
    parity = snapshot["parity"]
    lines = [
        "B-SUB live observability",
        "=" * 56,
        f"{'events seen':<28}{_fmt(totals['events'])}",
        f"{'trace time':<28}{_fmt(snapshot['last_event_t'], 's')}",
        f"{'messages created':<28}{_fmt(totals['messages_created'])}",
        f"{'messages live':<28}{_fmt(totals['messages_live'])}",
        f"{'completeness':<28}{_fmt(totals['completeness'])}",
        (
            f"{'deliveries (int/false)':<28}"
            f"{deliveries['total']} "
            f"({deliveries['intended']}/{deliveries['false']})"
        ),
        f"{'false injections':<28}{_fmt(totals['false_injections'])}",
        "-" * 56,
        f"rolling window ({_fmt(snapshot['window_s'], 's')})",
        (
            f"{'  deliveries (int/false)':<28}"
            f"{window['deliveries_intended']}/{window['deliveries_false']}"
        ),
        (
            f"{'  delay p50/p95':<28}"
            f"{_fmt(window['delay_p50_s'], 's')} / "
            f"{_fmt(window['delay_p95_s'], 's')}"
        ),
        (
            f"{'  wait p95 / carry p95':<28}"
            f"{_fmt(window['wait_p95_s'], 's')} / "
            f"{_fmt(window['carry_p95_s'], 's')}"
        ),
        f"{'  final hop p95':<28}{_fmt(window['final_hop_p95_s'], 's')}",
        "-" * 56,
        "attribution",
    ]
    for cause in sorted(attribution):
        lines.append(f"{'  ' + cause:<28}{attribution[cause]}")
    brokers = snapshot["brokers"]
    if brokers:
        lines.append("-" * 56)
        lines.append("top brokers by dwell")
        for row in brokers:
            lines.append(
                f"  node {row['node']:<8}"
                f"dwell {_fmt(row['dwell_s'], 's'):<14}"
                f"carried {row['deliveries_carried']}"
            )
    lines.append("-" * 56)
    lines.append(
        f"{'parity checks (failures)':<28}"
        f"{parity['checks']} ({parity['failures']})"
    )
    return "\n".join(lines)
