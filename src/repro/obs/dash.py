"""Dependency-free web ops dashboard over a :class:`LiveTailer`.

``bsub dash`` serves three things from one stdlib
:class:`~http.server.ThreadingHTTPServer`:

* ``/`` — a single embedded HTML/JS page (no external assets, no
  frameworks) that polls the JSON endpoint and renders totals, rolling
  latency percentiles, attribution, and per-broker dwell;
* ``/data.json`` — :meth:`LiveTailer.snapshot
  <repro.obs.live.LiveTailer.snapshot>` as JSON, the machine-readable
  surface the page (and anything else) polls;
* ``/metrics`` — the attached registry's Prometheus exposition, and
  ``/healthz`` — a liveness document, mirroring the broker's own
  endpoints so one scrape config covers both.

The server owns no event source: callers attach the tailer to a live
broker trace (:func:`~repro.obs.live.follow_merged_traces`), an
offline replay (:func:`~repro.obs.live.replay_trace_iter`), or the
in-process recorder bus, typically via :meth:`DashboardServer.feed_from`
which drives the tailer on a daemon thread.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Iterable, Optional, Tuple, Union

from .events import TraceEvent
from .live import LiveTailer

__all__ = ["DashboardServer", "DASH_HTML"]

#: The entire frontend: one page, zero external assets.
DASH_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>B-SUB live dashboard</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #101418; color: #d8dee4; margin: 2rem; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; color: #8fa3b0; }
table { border-collapse: collapse; margin-bottom: 1.2rem; }
td, th { border: 1px solid #2c3640; padding: 0.25rem 0.7rem;
         text-align: right; }
th { color: #8fa3b0; font-weight: normal; }
td:first-child, th:first-child { text-align: left; }
#status { color: #6fc28a; } .stale { color: #d0a050; }
.grid { display: flex; flex-wrap: wrap; gap: 2rem; }
</style>
</head>
<body>
<h1>B-SUB live observability <span id="status">connecting…</span></h1>
<div class="grid">
<div><h2>Totals</h2><table id="totals"></table></div>
<div><h2>Rolling window</h2><table id="window"></table></div>
<div><h2>Attribution</h2><table id="attribution"></table></div>
<div><h2>Brokers by dwell</h2><table id="brokers"></table></div>
</div>
<script>
function row(k, v) {
  return "<tr><td>" + k + "</td><td>" + v + "</td></tr>";
}
function fmt(v, digits) {
  if (v === null || v === undefined) return "-";
  if (typeof v === "number" && !Number.isInteger(v))
    return v.toFixed(digits === undefined ? 3 : digits);
  return String(v);
}
function render(doc) {
  const t = doc.totals, w = doc.window;
  document.getElementById("totals").innerHTML =
    row("events", t.events) +
    row("trace time (s)", fmt(doc.last_event_t)) +
    row("messages created", t.messages_created) +
    row("messages live", t.messages_live) +
    row("completeness", fmt(t.completeness, 4)) +
    row("deliveries", t.deliveries.total) +
    row("&nbsp;&nbsp;intended", t.deliveries.intended) +
    row("&nbsp;&nbsp;false", t.deliveries.false) +
    row("false injections", t.false_injections) +
    row("parity checks (fail)",
        doc.parity.checks + " (" + doc.parity.failures + ")");
  document.getElementById("window").innerHTML =
    row("horizon (s)", doc.window_s) +
    row("deliveries int/false",
        w.deliveries_intended + "/" + w.deliveries_false) +
    row("delay p50 (s)", fmt(w.delay_p50_s)) +
    row("delay p95 (s)", fmt(w.delay_p95_s)) +
    row("wait p95 (s)", fmt(w.wait_p95_s)) +
    row("carry p95 (s)", fmt(w.carry_p95_s)) +
    row("final hop p95 (s)", fmt(w.final_hop_p95_s));
  let att = "";
  for (const k of Object.keys(t.attribution).sort())
    att += row(k, t.attribution[k]);
  document.getElementById("attribution").innerHTML = att;
  let brokers = "<tr><th>node</th><th>dwell (s)</th><th>carried</th></tr>";
  for (const b of doc.brokers)
    brokers += "<tr><td>" + b.node + "</td><td>" + fmt(b.dwell_s) +
               "</td><td>" + b.deliveries_carried + "</td></tr>";
  document.getElementById("brokers").innerHTML = brokers;
}
async function poll() {
  const status = document.getElementById("status");
  try {
    const res = await fetch("data.json");
    render(await res.json());
    status.textContent = "live";
    status.className = "";
  } catch (err) {
    status.textContent = "disconnected";
    status.className = "stale";
  }
}
poll();
setInterval(poll, 2000);
</script>
</body>
</html>
"""

#: A feed item: a bare event (shard 0) or an explicit (shard, event).
FeedItem = Union[TraceEvent, Tuple[int, TraceEvent]]


class DashboardServer:
    """Serve a live tailer over HTTP on a background thread.

    Parameters
    ----------
    tailer:
        The :class:`~repro.obs.live.LiveTailer` whose snapshots are
        exposed; its attached registry (if any) backs ``/metrics``.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port, readable via
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        tailer: LiveTailer,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.tailer = tailer
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._feeders: list = []
        self._stop = threading.Event()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("dashboard not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def start(self) -> "DashboardServer":
        dashboard = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:
                pass

            def _send(
                self, status: int, content_type: str, body: bytes
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path in ("/", "/index.html"):
                    self._send(
                        200, "text/html; charset=utf-8",
                        DASH_HTML.encode("utf-8"),
                    )
                elif path == "/data.json":
                    body = json.dumps(
                        dashboard.tailer.snapshot(), sort_keys=True
                    ).encode("utf-8")
                    self._send(200, "application/json", body)
                elif path == "/metrics":
                    registry = dashboard.tailer.registry
                    if registry is None:
                        self._send(
                            404, "text/plain; charset=utf-8",
                            b"no registry attached\n",
                        )
                        return
                    dashboard.tailer.refresh_registry()
                    self._send(
                        200,
                        "text/plain; version=0.0.4; charset=utf-8",
                        registry.to_prom().encode("utf-8"),
                    )
                elif path == "/healthz":
                    body = json.dumps(
                        {
                            "status": "ok",
                            "events": dashboard.tailer.seen_events,
                        },
                        sort_keys=True,
                    ).encode("utf-8")
                    self._send(200, "application/json", body)
                else:
                    self._send(
                        404, "text/plain; charset=utf-8", b"not found\n"
                    )

        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="bsub-dash",
            daemon=True,
        )
        self._thread.start()
        return self

    def feed_from(self, source: Iterable[FeedItem]) -> threading.Thread:
        """Drive the tailer from *source* on a daemon thread.

        *source* may yield bare events (fed as shard 0) or
        ``(shard, event)`` pairs as produced by
        :func:`~repro.obs.live.follow_merged_traces`.  The thread ends
        when the source is exhausted or :meth:`stop` is called.
        """

        def run() -> None:
            for item in source:
                if self._stop.is_set():
                    break
                if isinstance(item, tuple):
                    shard, event = item
                    self.tailer.feed(event, shard=shard)
                else:
                    self.tailer.feed(item)

        thread = threading.Thread(target=run, name="bsub-dash-feed", daemon=True)
        self._feeders.append(thread)
        thread.start()
        return thread

    def stop(self) -> None:
        self._stop.set()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        for thread in self._feeders:
            thread.join(timeout=2.0)
        self._feeders.clear()
