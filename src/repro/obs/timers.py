"""Per-phase wall-clock timers.

Answers "where does the time go inside a run?" — trace setup vs the
simulation loop vs metric aggregation.  Timings are *observational
only*: they are reported in the human-readable summary but are kept
out of both the event trace and the metrics JSON, because wall-clock
is never deterministic and would poison golden digests.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Tuple

__all__ = ["PhaseTimers"]


class PhaseTimers:
    """Accumulates wall-clock per named phase (re-entry accumulates)."""

    def __init__(self):
        self._elapsed: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str):
        """Context manager timing one phase occurrence."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            if name not in self._elapsed:
                self._order.append(name)
                self._elapsed[name] = 0.0
                self._counts[name] = 0
            self._elapsed[name] += elapsed
            self._counts[name] += 1

    def elapsed(self, name: str) -> float:
        """Total seconds accumulated under *name* (0.0 if never entered)."""
        return self._elapsed.get(name, 0.0)

    def total(self) -> float:
        return sum(self._elapsed.values())

    def summary(self) -> List[Tuple[str, float, int]]:
        """(phase, seconds, entries) rows in first-entry order."""
        return [
            (name, self._elapsed[name], self._counts[name])
            for name in self._order
        ]
