"""Per-message provenance graphs reconstructed from an event trace.

The trace layer (PR 2) records *what happened*; this module recovers
*why*: for every message it rebuilds the full lifecycle — create →
carry/forward hops → broker dwell → delivery or expiry — as a
:class:`MessageLineage`, and for every delivered (message, node) pair
it computes a :class:`LatencyDecomposition` splitting the end-to-end
delay into wait-at-producer, per-broker dwell, and final-hop time.

The :class:`LineageBuilder` is a streaming state machine: feed it
events in emit order (e.g. from
:func:`repro.obs.recorder.read_trace_iter`) and it keeps only the
*live* lineages — a message is finalised, handed to the caller's
callback, and dropped as soon as simulation time passes its TTL
horizon (no later event can mention it: expired messages are purged
from every buffer before any contact processing).  Peak memory is
therefore O(messages alive at once), not O(trace length), which is
what makes million-event columnar traces analysable.

Schema-1 traces (no ``create`` events) still work: a forward for an
unknown message opens a stub lineage with unknown creation time; stubs
cannot be expiry-finalised (no TTL on record) and are flushed at the
end of the stream instead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .events import TraceEvent

__all__ = [
    "Hop",
    "DeliveryLeg",
    "LatencyDecomposition",
    "MessageLineage",
    "LineageBuilder",
]


@dataclass(frozen=True)
class Hop:
    """One recorded transmission of a message."""

    t: float
    kind: str            # "direct" | "inject" | "relay"
    src: int
    dst: int
    size: float = 0.0
    pref: Optional[float] = None    # relay hops: preferential-query value
    match: Optional[str] = None     # provenance flag (schema >= 2)

    def label(self) -> str:
        """Compact human rendering, e.g. ``12-(relay)->7``."""
        return f"{self.src}-({self.kind})->{self.dst}"


@dataclass(frozen=True)
class LatencyDecomposition:
    """Where one delivered message's delay was spent.

    ``producer_wait_s`` (creation → first hop of the delivering chain)
    + every per-broker ``dwell`` (arrival at the node → departure
    towards the next chain node) + ``final_hop_s`` (last hop →
    delivery) telescopes back to the end-to-end delay.  ``None``
    components mean the trace lacked the evidence (schema-1 traces
    have no creation times).
    """

    producer_wait_s: Optional[float]
    #: (node, seconds) per intermediate carrier, in chain order.
    dwells: Tuple[Tuple[int, float], ...]
    final_hop_s: float

    @property
    def carry_s(self) -> float:
        """Total in-flight carry time (sum of per-broker dwells)."""
        return sum(seconds for _, seconds in self.dwells)

    def to_dict(self) -> dict:
        return {
            "producer_wait_s": self.producer_wait_s,
            "dwells": [[node, seconds] for node, seconds in self.dwells],
            "carry_s": self.carry_s,
            "final_hop_s": self.final_hop_s,
        }


@dataclass(frozen=True)
class DeliveryLeg:
    """One delivery of a message to one node, with its provenance."""

    t: float
    node: int
    intended: bool
    cause: Optional[str]            # "direct" | "self" (schema >= 2)
    delay_s: Optional[float]        # None when creation time unknown
    chain: Tuple[Hop, ...]          # producer → … → delivering hop
    decomposition: Optional[LatencyDecomposition]

    def chain_label(self) -> str:
        return " ".join(hop.label() for hop in self.chain) or "(no hops)"

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "node": self.node,
            "intended": self.intended,
            "cause": self.cause,
            "delay_s": self.delay_s,
            "chain": [
                [hop.t, hop.kind, hop.src, hop.dst] for hop in self.chain
            ],
            "decomposition": (
                self.decomposition.to_dict() if self.decomposition else None
            ),
        }


@dataclass
class MessageLineage:
    """The reconstructed lifecycle of one message."""

    msg: int
    created_at: Optional[float] = None
    producer: Optional[int] = None
    ttl_s: Optional[float] = None
    size: Optional[float] = None
    num_intended: Optional[int] = None
    hops: List[Hop] = field(default_factory=list)
    deliveries: List[DeliveryLeg] = field(default_factory=list)
    false_injections: int = 0
    #: Set at finalisation: "expired" | "end_of_trace".
    closed_by: Optional[str] = None

    @property
    def expires_at(self) -> Optional[float]:
        if self.created_at is None or self.ttl_s is None:
            return None
        return self.created_at + self.ttl_s

    @property
    def num_intended_delivered(self) -> int:
        return sum(1 for leg in self.deliveries if leg.intended)

    # -- provenance reconstruction ------------------------------------------

    def delivery_chain(self, node: int, t: float) -> Tuple[Hop, ...]:
        """The hop chain that put the message on *node* by time *t*.

        Walks backwards from the latest hop into *node*: each step
        finds the hop that gave the previous sender its copy (the
        latest earlier arrival at that sender), stopping at the
        producer.  Hops are scanned in emit order, so the chain is the
        actual causal path — relay forwards remove the sender's copy,
        and direct/inject forwards replicate from a retained copy, both
        of which this walk represents faithfully.
        """
        index = None
        for i in range(len(self.hops) - 1, -1, -1):
            if self.hops[i].dst == node and self.hops[i].t <= t:
                index = i
                break
        if index is None:
            return ()
        chain = [self.hops[index]]
        while True:
            head = chain[-1]
            if self.producer is not None and head.src == self.producer:
                break
            found = None
            for i in range(index - 1, -1, -1):
                if self.hops[i].dst == head.src:
                    found = i
                    break
            if found is None:
                break
            index = found
            chain.append(self.hops[index])
        chain.reverse()
        return tuple(chain)

    def decompose(
        self, chain: Tuple[Hop, ...], delivered_at: float
    ) -> Optional[LatencyDecomposition]:
        """Latency decomposition of one delivery along *chain*."""
        if not chain:
            return None
        producer_wait = (
            chain[0].t - self.created_at
            if self.created_at is not None
            else None
        )
        dwells = tuple(
            (chain[i - 1].dst, chain[i].t - chain[i - 1].t)
            for i in range(1, len(chain))
        )
        return LatencyDecomposition(
            producer_wait_s=producer_wait,
            dwells=dwells,
            final_hop_s=delivered_at - chain[-1].t,
        )


#: Callback invoked with each finalised lineage.
FinalizedCallback = Callable[[MessageLineage], None]

#: Callback invoked with (lineage, leg) as each delivery is absorbed.
DeliveryCallback = Callable[[MessageLineage, DeliveryLeg], None]


class LineageBuilder:
    """Streaming reconstruction of message lineages from trace events.

    Parameters
    ----------
    on_finalized:
        Called once per message, with its completed
        :class:`MessageLineage`, as soon as no further event can
        mention it (simulation time passed its TTL horizon, or the
        stream ended).  After the callback returns the lineage is
        dropped, which is what bounds memory to the live set.
    on_delivery:
        Called with ``(lineage, leg)`` the moment each delivery event
        is absorbed — the leg already carries its causal chain and
        :class:`LatencyDecomposition`, so live consumers get latency
        components without waiting for finalisation.
    """

    def __init__(
        self,
        on_finalized: Optional[FinalizedCallback] = None,
        on_delivery: Optional[DeliveryCallback] = None,
    ):
        self._on_finalized = on_finalized
        self._on_delivery_cb = on_delivery
        self._live: Dict[int, MessageLineage] = {}
        #: (expires_at, msg) heap driving expiry finalisation.
        self._expiry_heap: List[Tuple[float, int]] = []
        self.peak_live = 0
        self.finalized = 0
        self.end_time: Optional[float] = None

    # -- introspection ------------------------------------------------------

    @property
    def num_live(self) -> int:
        return len(self._live)

    # -- streaming ----------------------------------------------------------

    def feed(self, event: TraceEvent) -> None:
        """Absorb one trace event (must be fed in emit order)."""
        self._expire_until(event.t)
        handler = self._HANDLERS.get(event.type)
        if handler is not None:
            handler(self, event)

    def flush(self, now: Optional[float] = None) -> None:
        """Finalise every remaining live lineage (end of stream)."""
        if now is not None:
            self.end_time = now
        for msg in sorted(self._live):
            self._finalize(msg, "end_of_trace")

    # -- event handlers -----------------------------------------------------

    def _lineage(self, msg: int) -> MessageLineage:
        lineage = self._live.get(msg)
        if lineage is None:
            lineage = self._live[msg] = MessageLineage(msg=msg)
            self.peak_live = max(self.peak_live, len(self._live))
        return lineage

    def _on_create(self, event: TraceEvent) -> None:
        fields = event.fields
        lineage = self._lineage(int(fields["msg"]))
        lineage.created_at = event.t
        lineage.producer = int(fields["node"])
        lineage.ttl_s = float(fields["ttl"]) if "ttl" in fields else None
        lineage.size = fields.get("size")
        if "num_intended" in fields:
            lineage.num_intended = int(fields["num_intended"])
        if lineage.expires_at is not None:
            heapq.heappush(
                self._expiry_heap, (lineage.expires_at, lineage.msg)
            )

    def _on_forward(self, event: TraceEvent) -> None:
        fields = event.fields
        self._lineage(int(fields["msg"])).hops.append(
            Hop(
                t=event.t,
                kind=fields.get("kind", "?"),
                src=int(fields["src"]),
                dst=int(fields["dst"]),
                size=float(fields.get("size", 0.0)),
                pref=fields.get("pref"),
                match=fields.get("match"),
            )
        )

    def _on_delivery(self, event: TraceEvent) -> None:
        fields = event.fields
        lineage = self._lineage(int(fields["msg"]))
        node = int(fields["node"])
        chain = lineage.delivery_chain(node, event.t)
        delay = (
            event.t - lineage.created_at
            if lineage.created_at is not None
            else None
        )
        leg = DeliveryLeg(
            t=event.t,
            node=node,
            intended=bool(fields["intended"]),
            cause=fields.get("cause"),
            delay_s=delay,
            chain=chain,
            decomposition=lineage.decompose(chain, event.t),
        )
        lineage.deliveries.append(leg)
        if self._on_delivery_cb is not None:
            self._on_delivery_cb(lineage, leg)

    def _on_false_injection(self, event: TraceEvent) -> None:
        self._lineage(int(event.fields["msg"])).false_injections += 1

    def _on_sim_end(self, event: TraceEvent) -> None:
        self.flush(now=event.t)

    _HANDLERS = {
        "create": _on_create,
        "forward": _on_forward,
        "delivery": _on_delivery,
        "false_injection": _on_false_injection,
        "sim_end": _on_sim_end,
    }

    # -- finalisation -------------------------------------------------------

    def _expire_until(self, now: float) -> None:
        heap = self._expiry_heap
        while heap and heap[0][0] < now:
            _, msg = heapq.heappop(heap)
            if msg in self._live:
                self._finalize(msg, "expired")

    def _finalize(self, msg: int, closed_by: str) -> None:
        lineage = self._live.pop(msg)
        lineage.closed_by = closed_by
        self.finalized += 1
        if self._on_finalized is not None:
            self._on_finalized(lineage)
