"""Protocol observability: metrics, event tracing, phase timings.

A B-SUB run instrumented with this package stops being a black box:
the :class:`~repro.obs.recorder.TraceRecorder` captures every
protocol-level event (contacts, A-/M-merges, decay ticks, forwards,
deliveries, false injections, broker role changes) as typed JSONL
records, the :class:`~repro.obs.registry.MetricsRegistry` aggregates
deterministic counters/gauges/histograms, and
:class:`~repro.obs.timers.PhaseTimers` attribute wall-clock to run
phases.

Everything defaults to **off**: the protocol, simulator, and election
are wired against :data:`~repro.obs.recorder.NULL_RECORDER`, whose
``enabled`` flag short-circuits every instrumentation site before any
event field is computed.  A seeded run with tracing enabled is
behaviourally identical to the same run with tracing disabled — the
recorder only *observes* — which is what makes the event trace a
replayable fingerprint for golden-trace regression tests
(:func:`~repro.obs.recorder.trace_digest`).

Typical use::

    from repro.obs import Observability
    from repro.experiments import run_experiment

    obs = Observability.enabled()
    result = run_experiment(trace, "B-SUB", config, obs=obs)
    obs.tracer.write_jsonl("run.trace.jsonl")
    obs.registry.write_json("run.metrics.json")
    print(obs.tracer.counts())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .analyze import ANALYSIS_VERSION, TraceAnalysis, analyze_trace
from .dash import DashboardServer
from .events import EVENT_TYPES, TRACE_SCHEMA_VERSION, TraceEvent
from .feedback import (
    AttributionFeedback,
    feedback_from_analysis,
    plan_retouch_from_analysis,
)
from .introspect import relay_max_counter, relay_set_bits
from .lineage import (
    DeliveryLeg,
    Hop,
    LatencyDecomposition,
    LineageBuilder,
    MessageLineage,
)
from .live import (
    PARITY_KEYS,
    LiveTailer,
    ParityError,
    RollingWindow,
    follow_merged_traces,
    format_watch_table,
    offline_parity_counters,
    replay_trace_iter,
)
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    file_trace_digest,
    merge_traces,
    read_trace,
    read_trace_iter,
    read_trace_meta,
    trace_digest,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .timers import PhaseTimers

__all__ = [
    "EVENT_TYPES",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "trace_digest",
    "file_trace_digest",
    "merge_traces",
    "read_trace",
    "read_trace_iter",
    "read_trace_meta",
    "Hop",
    "DeliveryLeg",
    "LatencyDecomposition",
    "MessageLineage",
    "LineageBuilder",
    "TraceAnalysis",
    "analyze_trace",
    "ANALYSIS_VERSION",
    "PARITY_KEYS",
    "ParityError",
    "RollingWindow",
    "LiveTailer",
    "DashboardServer",
    "follow_merged_traces",
    "format_watch_table",
    "offline_parity_counters",
    "replay_trace_iter",
    "AttributionFeedback",
    "feedback_from_analysis",
    "plan_retouch_from_analysis",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseTimers",
    "Observability",
    "relay_max_counter",
    "relay_set_bits",
]


@contextmanager
def _null_phase():
    yield


class Observability:
    """Bundle of tracer + metrics registry + phase timers for one run.

    The default construction is fully disabled (null tracer, no
    registry, no timers) and costs nothing; :meth:`enabled` switches
    everything on.  Components can also be mixed freely, e.g. a
    registry without event tracing.
    """

    def __init__(
        self,
        tracer=None,
        registry: Optional[MetricsRegistry] = None,
        timers: Optional[PhaseTimers] = None,
    ):
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.registry = registry
        self.timers = timers

    @classmethod
    def enabled(cls, sink=None) -> "Observability":
        """Everything on: in-memory tracer, registry, and timers."""
        return cls(
            tracer=TraceRecorder(sink=sink),
            registry=MetricsRegistry(),
            timers=PhaseTimers(),
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The explicit no-op bundle (same effect as not passing one)."""
        return cls()

    def phase(self, name: str):
        """Context manager timing *name* (no-op without timers)."""
        if self.timers is None:
            return _null_phase()
        return self.timers.phase(name)
