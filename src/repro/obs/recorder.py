"""Event recorders: the no-op default and the in-memory tracer.

The instrumented hot paths all follow the same pattern::

    if recorder.enabled:
        recorder.emit("forward", t=now, msg=..., src=..., dst=...)

With the :data:`NULL_RECORDER` (the default everywhere) the guard is a
single attribute load on a shared singleton, so the instrumentation
costs nothing when observability is off — in particular, no event
field is even computed.  A :class:`TraceRecorder` collects
:class:`~repro.obs.events.TraceEvent` records in memory, can stream
them to JSONL, and exposes a SHA-256 digest of the canonical encoding
for golden-trace pinning.

Trace files start with one meta header line carrying the schema
version (:data:`~repro.obs.events.TRACE_SCHEMA_VERSION`); the readers
(:func:`read_trace_iter` / :func:`read_trace`) skip it and accept
headerless version-1 files unchanged.  Digests always cover the events
only, never the header, so a digest is a function of protocol
behaviour alone.

Two streaming hooks feed the live-observability layer
(:mod:`repro.obs.live`): :meth:`TraceRecorder.subscribe` registers an
in-process listener invoked with every event at emit time (no file
round-trip), and ``read_trace_iter(path, follow=True)`` tails a trace
file that is still being written, yielding events as their lines land.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import time as _time
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
)

from .events import (
    EVENT_TYPES,
    TRACE_META_TYPE,
    TraceEvent,
    trace_meta_line,
)

__all__ = [
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "trace_digest",
    "file_trace_digest",
    "merge_traces",
    "read_trace",
    "read_trace_iter",
    "read_trace_meta",
]


class NullRecorder:
    """The do-nothing recorder (observability disabled).

    ``enabled`` is a class attribute so call sites can guard on it
    without any per-call overhead beyond one attribute load.
    """

    enabled = False

    def emit(self, type: str, t: float, **fields) -> None:  # pragma: no cover
        """Discard the event (never called behind an ``enabled`` guard)."""


#: Shared process-wide null recorder — the default for every component.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects structured protocol events in memory.

    Parameters
    ----------
    sink:
        Optional writable text file object; when set, the meta header
        line is written immediately and each event is additionally
        written as one JSONL line at emit time (streaming mode for runs
        too large to buffer).

    Listeners registered via :meth:`subscribe` are called synchronously
    with every :class:`TraceEvent` at emit time — the in-process event
    bus that lets a live consumer (:class:`repro.obs.live.LiveTailer`)
    observe a run with zero file round-trip.  With no listeners the
    cost is a single truthiness check per emit.
    """

    enabled = True

    def __init__(self, sink=None):
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._sink = sink
        self._listeners: List[Callable[[TraceEvent], None]] = []
        if sink is not None:
            sink.write(trace_meta_line() + "\n")

    def subscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register *listener* to receive every future event at emit time.

        Listeners run synchronously on the emitting thread, in
        registration order; a slow listener slows the hot path, so
        live consumers should do O(1) work per event.
        """
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceEvent], None]) -> None:
        """Remove a previously registered listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def emit(self, type: str, t: float, **fields) -> None:
        """Record one event, assigning the next sequence number."""
        event = TraceEvent(seq=self._seq, t=float(t), type=type, fields=fields)
        self._seq += 1
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")
        if self._listeners:
            for listener in list(self._listeners):
                listener(event)

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, type: str) -> List[TraceEvent]:
        """All recorded events of one type, in emit order."""
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; expected one of {EVENT_TYPES}"
            )
        return [e for e in self.events if e.type == type]

    def counts(self) -> Dict[str, int]:
        """type -> number of events (every type present, zeros included)."""
        counts = {t: 0 for t in EVENT_TYPES}
        for event in self.events:
            counts[event.type] += 1
        return counts

    def to_jsonl(self) -> str:
        """The events as canonical JSONL (one per line, no meta header)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def write_jsonl(self, path: str) -> int:
        """Write the trace (meta header + events) to *path*.

        Returns the number of events (the header is not an event).
        """
        with open(path, "w") as fh:
            fh.write(trace_meta_line() + "\n")
            fh.write(self.to_jsonl())
        return len(self.events)

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical JSONL encoding."""
        return trace_digest(self.events)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """SHA-256 hex digest over the canonical JSONL lines of *events*.

    Two runs with identical protocol behaviour produce identical
    digests; any behavioural drift — an extra merge, a reordered
    forward, a changed counter — changes it.
    """
    hasher = hashlib.sha256()
    for event in events:
        hasher.update(event.to_json().encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def file_trace_digest(path: str) -> str:
    """Streaming :func:`trace_digest` of a JSONL trace file.

    Events are re-encoded canonically line by line (never materialised
    as a list), so the digest of a written trace equals the digest of
    the recorder that produced it, meta header and schema version
    notwithstanding.
    """
    return trace_digest(read_trace_iter(path))


def merge_traces(shard_paths: Sequence[str], out_path: str) -> int:
    """Deterministically merge per-worker trace shards into one trace.

    The fleet broker (:mod:`repro.serve.supervisor`) gives every worker
    its own trace shard; this stitches them back into a single
    schema-v2 trace the analyzer consumes as if one process had
    emitted it:

    * Events are merged in ``(t, seq, worker)`` order — all workers
      share one monotonic clock origin, so ``t`` is a fleet-wide
      timeline, per-shard ``seq`` breaks ties within a worker, and the
      worker index (the shard's position in *shard_paths*) breaks
      cross-worker ties.  The same shards always merge to the same
      bytes.
    * Each shard ends with its own ``sim_end``; those are dropped and
      replaced by one synthesized trailing ``sim_end`` whose
      ``contacts``/``messages`` are the per-shard sums and whose ``t``
      is the latest shard end — so the merged trace has exactly one
      end-of-run anchor, at the end, like a single-process trace.
    * Sequence numbers are reassigned contiguously from 0.

    Memory is O(shards): one pending event per shard via
    :func:`heapq.merge` over the streaming readers.  Returns the
    number of events written (excluding the meta header).
    """

    def _keyed(worker: int, path: str):
        for event in read_trace_iter(path):
            yield (event.t, event.seq, worker), event

    streams = [_keyed(w, p) for w, p in enumerate(shard_paths)]
    end_contacts = 0
    end_messages = 0
    end_time: Optional[float] = None
    seq = 0
    with open(out_path, "w") as fh:
        fh.write(trace_meta_line() + "\n")
        for _key, event in heapq.merge(*streams, key=lambda kv: kv[0]):
            if event.type == "sim_end":
                end_contacts += int(event.fields.get("contacts", 0))
                end_messages += int(event.fields.get("messages", 0))
                end_time = (
                    event.t if end_time is None else max(end_time, event.t)
                )
                continue
            fh.write(
                TraceEvent(
                    seq=seq, t=event.t, type=event.type, fields=event.fields
                ).to_json() + "\n"
            )
            seq += 1
        if end_time is not None:
            fh.write(
                TraceEvent(
                    seq=seq, t=end_time, type="sim_end",
                    fields={
                        "contacts": end_contacts, "messages": end_messages
                    },
                ).to_json() + "\n"
            )
            seq += 1
    return seq


def read_trace_meta(path: str) -> Dict[str, object]:
    """The trace file's meta header, or ``{"schema": 1}`` if absent.

    Schema-1 traces (written before the header existed) start directly
    with an event line; they remain fully readable.
    """
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == TRACE_META_TYPE:
                return record
            break
    return {"schema": 1}


def _parse_trace_line(line: str) -> Optional[TraceEvent]:
    """One JSONL line -> event, or ``None`` for blanks / meta headers."""
    line = line.strip()
    if not line:
        return None
    record = json.loads(line)
    if record.get("type") == TRACE_META_TYPE:
        return None
    return TraceEvent.from_dict(record)


def _follow_lines(
    path: str,
    poll_interval_s: float,
    should_stop: Optional[Callable[[], bool]],
) -> Iterator[str]:
    """Yield complete lines of *path*, tailing it as it grows.

    Reads in binary mode and splits on newlines manually so a
    partially written trailing line (the writer mid-``write``) is
    buffered until its newline lands, never parsed early.  Stops when
    *should_stop* returns true at EOF; otherwise sleeps
    *poll_interval_s* and retries.  The caller stops consuming once it
    sees ``sim_end``, so a finished trace terminates without a stop
    callback.
    """
    buffer = b""
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(65536)
            if chunk:
                buffer += chunk
                while True:
                    newline = buffer.find(b"\n")
                    if newline < 0:
                        break
                    line = buffer[:newline]
                    buffer = buffer[newline + 1:]
                    yield line.decode("utf-8")
                continue
            if should_stop is not None and should_stop():
                return
            _time.sleep(poll_interval_s)


def read_trace_iter(
    path: str,
    type: Optional[str] = None,
    *,
    follow: bool = False,
    poll_interval_s: float = 0.2,
    should_stop: Optional[Callable[[], bool]] = None,
) -> Iterator[TraceEvent]:
    """Stream the events of a JSONL trace file, one at a time.

    This is the bounded-memory primitive every trace consumer builds
    on: one line is parsed per step and nothing is retained, so
    million-event traces cost O(1) reader memory.  Meta header lines
    and blanks are skipped; optionally filters to one event *type*.

    With ``follow=True`` the reader tails the file as it grows (like
    ``tail -f``): at EOF it polls every *poll_interval_s* seconds for
    new complete lines instead of returning, handling partially
    written trailing lines safely.  The iterator ends after yielding a
    ``sim_end`` event (the trace's end-of-run anchor) or when
    *should_stop* returns true while at EOF.
    """
    if follow:
        for raw in _follow_lines(path, poll_interval_s, should_stop):
            event = _parse_trace_line(raw)
            if event is None:
                continue
            if type is None or event.type == type:
                yield event
            if event.type == "sim_end":
                return
        return
    with open(path) as fh:
        for line in fh:
            event = _parse_trace_line(line)
            if event is None:
                continue
            if type is None or event.type == type:
                yield event


def read_trace(path: str, type: Optional[str] = None) -> Iterator[TraceEvent]:
    """Iterate the events stored in a JSONL trace file.

    Optionally filters to one event *type*.  Alias of
    :func:`read_trace_iter` (kept as the long-standing public name).
    """
    return read_trace_iter(path, type=type)
