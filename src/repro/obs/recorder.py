"""Event recorders: the no-op default and the in-memory tracer.

The instrumented hot paths all follow the same pattern::

    if recorder.enabled:
        recorder.emit("forward", t=now, msg=..., src=..., dst=...)

With the :data:`NULL_RECORDER` (the default everywhere) the guard is a
single attribute load on a shared singleton, so the instrumentation
costs nothing when observability is off — in particular, no event
field is even computed.  A :class:`TraceRecorder` collects
:class:`~repro.obs.events.TraceEvent` records in memory, can stream
them to JSONL, and exposes a SHA-256 digest of the canonical encoding
for golden-trace pinning.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, Iterator, List, Optional

from .events import EVENT_TYPES, TraceEvent

__all__ = [
    "NullRecorder",
    "NULL_RECORDER",
    "TraceRecorder",
    "trace_digest",
    "read_trace",
]


class NullRecorder:
    """The do-nothing recorder (observability disabled).

    ``enabled`` is a class attribute so call sites can guard on it
    without any per-call overhead beyond one attribute load.
    """

    enabled = False

    def emit(self, type: str, t: float, **fields) -> None:  # pragma: no cover
        """Discard the event (never called behind an ``enabled`` guard)."""


#: Shared process-wide null recorder — the default for every component.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects structured protocol events in memory.

    Parameters
    ----------
    sink:
        Optional writable text file object; when set, each event is
        additionally written as one JSONL line at emit time (streaming
        mode for runs too large to buffer).
    """

    enabled = True

    def __init__(self, sink=None):
        self.events: List[TraceEvent] = []
        self._seq = 0
        self._sink = sink

    def emit(self, type: str, t: float, **fields) -> None:
        """Record one event, assigning the next sequence number."""
        event = TraceEvent(seq=self._seq, t=float(t), type=type, fields=fields)
        self._seq += 1
        self.events.append(event)
        if self._sink is not None:
            self._sink.write(event.to_json() + "\n")

    def __len__(self) -> int:
        return len(self.events)

    def events_of(self, type: str) -> List[TraceEvent]:
        """All recorded events of one type, in emit order."""
        if type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {type!r}; expected one of {EVENT_TYPES}"
            )
        return [e for e in self.events if e.type == type]

    def counts(self) -> Dict[str, int]:
        """type -> number of events (every type present, zeros included)."""
        counts = {t: 0 for t in EVENT_TYPES}
        for event in self.events:
            counts[event.type] += 1
        return counts

    def to_jsonl(self) -> str:
        """The whole trace as canonical JSONL (one event per line)."""
        return "".join(event.to_json() + "\n" for event in self.events)

    def write_jsonl(self, path: str) -> int:
        """Write the trace to *path*; returns the number of events."""
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
        return len(self.events)

    def digest(self) -> str:
        """SHA-256 hex digest of the canonical JSONL encoding."""
        return trace_digest(self.events)


def trace_digest(events: Iterable[TraceEvent]) -> str:
    """SHA-256 hex digest over the canonical JSONL lines of *events*.

    Two runs with identical protocol behaviour produce identical
    digests; any behavioural drift — an extra merge, a reordered
    forward, a changed counter — changes it.
    """
    hasher = hashlib.sha256()
    for event in events:
        hasher.update(event.to_json().encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def read_trace(path: str, type: Optional[str] = None) -> Iterator[TraceEvent]:
    """Iterate the events stored in a JSONL trace file.

    Optionally filters to one event *type*.
    """
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = TraceEvent.from_dict(json.loads(line))
            if type is None or event.type == type:
                yield event
