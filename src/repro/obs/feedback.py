"""Attribution → tuning feedback: close the loop from ``bsub analyze``.

PR 5's lineage engine attributes every false injection to a cause
(``relay_filter_fp`` / ``genuine_but_stale`` / ``direct_bf_fp`` /
``producer_self``).  This module turns that *diagnosis* into an
*action* for the filter zoo:

* :func:`feedback_from_analysis` reduces an analysis document (a
  :class:`~repro.obs.analyze.TraceAnalysis` or its ``to_dict()`` /
  ``analysis.json`` form) to an :class:`AttributionFeedback` verdict —
  which failure mode dominates and what to do about it;
* :func:`plan_retouch_from_analysis` is the lineage-driven retouching
  pass: it gates :func:`repro.core.retouched.plan_retouch` on the
  profiling run actually having shown relay-filter false positives, so
  a clean run never sacrifices interests for nothing.

The workflow (see ``docs/filters.md`` for the worked example)::

    bsub run --trace-out profile.jsonl ...      # profiling run
    bsub analyze profile.jsonl --json out.json  # fp_attribution
    plan = plan_retouch_from_analysis(out, fp_candidates, wanted, family)
    bsub run --filter "retouched:{plan.spec_params()}" ...
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.hashing import HashFamily
from ..core.retouched import RetouchPlan, plan_retouch

__all__ = [
    "AttributionFeedback",
    "feedback_from_analysis",
    "plan_retouch_from_analysis",
]


@dataclass(frozen=True)
class AttributionFeedback:
    """The actionable summary of a run's FP attribution.

    Attributes mirror the ``attribution`` block of ``bsub analyze``
    (absolute event counts over the profiled run), plus the injection
    total the ratios are relative to.
    """

    injections: int
    relay_filter_fp: int
    genuine_but_stale: int
    direct_bf_fp: int
    producer_self: int

    @property
    def false_injection_ratio(self) -> float:
        """Relay-filter FPs per producer→broker injection (0 if none)."""
        if self.injections <= 0:
            return 0.0
        return self.relay_filter_fp / self.injections

    @property
    def dominant_cause(self) -> str:
        """The taxonomy bucket with the most events (``"none"`` if clean)."""
        buckets = {
            "relay_filter_fp": self.relay_filter_fp,
            "genuine_but_stale": self.genuine_but_stale,
            "direct_bf_fp": self.direct_bf_fp,
            "producer_self": self.producer_self,
        }
        name = max(sorted(buckets), key=lambda k: buckets[k])
        return name if buckets[name] > 0 else "none"

    def recommend(self) -> str:
        """The zoo action matched to the dominant failure mode.

        * ``"retouch"`` — collision-driven relay FPs dominate: clear
          the offending bits (:func:`plan_retouch_from_analysis`);
        * ``"increase_df"`` — staleness dominates: decay counters
          faster (Sec. VI-B, ``mode="attribution"`` controller);
        * ``"shrink_genuine_fpr"`` — direct-delivery BF collisions
          dominate: more bits/hashes for the genuine filters;
        * ``"none"`` — nothing to fix.
        """
        cause = self.dominant_cause
        if cause == "relay_filter_fp":
            return "retouch"
        if cause == "genuine_but_stale":
            return "increase_df"
        if cause in ("direct_bf_fp", "producer_self"):
            return "shrink_genuine_fpr"
        return "none"


def feedback_from_analysis(analysis) -> AttributionFeedback:
    """Extract :class:`AttributionFeedback` from an analysis document.

    Accepts a :class:`~repro.obs.analyze.TraceAnalysis` instance or the
    plain dict form (``to_dict()`` output / a parsed ``analysis.json``).

    Raises
    ------
    ValueError
        If the document has no ``attribution`` block (not an analyze
        output).
    """
    doc = analysis.to_dict() if hasattr(analysis, "to_dict") else analysis
    if not isinstance(doc, dict) or "attribution" not in doc:
        raise ValueError(
            "expected a 'bsub analyze' document with an 'attribution' "
            "block (TraceAnalysis or its to_dict()/JSON form)"
        )
    attribution = doc["attribution"]
    injections = doc.get("injections", {})
    return AttributionFeedback(
        injections=int(injections.get("total", 0)),
        relay_filter_fp=int(attribution.get("relay_filter_fp", 0)),
        genuine_but_stale=int(attribution.get("genuine_but_stale", 0)),
        direct_bf_fp=int(attribution.get("direct_bf_fp", 0)),
        producer_self=int(attribution.get("producer_self", 0)),
    )


def plan_retouch_from_analysis(
    analysis,
    fp_candidate_keys,
    protected_keys,
    family: HashFamily,
    max_sacrifice: int = 0,
    min_relay_filter_fp: int = 1,
) -> RetouchPlan:
    """The lineage-driven bit-clearing pass.

    Consumes the ``fp_attribution`` output of a profiling run: when the
    run attributed at least *min_relay_filter_fp* false injections to
    the relay filter (``relay_filter_fp``), plan which bits to clear so
    the *fp_candidate_keys* (the keys able to cause those collisions —
    e.g. the workload's unwanted keys) stop matching; otherwise return
    an empty plan, because retouching without evidence only costs
    sacrificed interests.

    Parameters are otherwise those of
    :func:`repro.core.retouched.plan_retouch`.
    """
    feedback = feedback_from_analysis(analysis)
    if feedback.relay_filter_fp < min_relay_filter_fp:
        return RetouchPlan(frozenset(), frozenset(), frozenset())
    return plan_retouch(
        fp_candidate_keys,
        protected_keys,
        family,
        max_sacrifice=max_sacrifice,
    )
