"""Typed protocol events and their canonical JSONL encoding.

A trace is a sequence of :class:`TraceEvent` records, one per
protocol-level happening.  Ten event types cover the whole B-SUB
message lifecycle (paper Sec. V), and four more cover the
fault-injection layer (:mod:`repro.faults`):

=================  ============================================================
type               meaning / load-bearing fields
=================  ============================================================
``create``         a producer creates a message (``msg``, ``node``, ``size``,
                   ``ttl``, and the ground-truth ``num_intended`` recipient
                   count — the denominator the delivery ratio is built from)
``contact``        two nodes meet (``a``, ``b``, ``duration``)
``a_merge``        additive merge into a relay filter (``node``, ``src``,
                   ``kind`` = ``consumer`` announcement | ``broker`` ablation,
                   ``max_before``/``max_after``, and for announcements
                   ``num_keys`` + ``min_key_counter_after``)
``m_merge``        maximum merge between brokers (``node``, ``peer``,
                   ``max_before``/``max_peer``/``max_after``)
``decay_tick``     lazy decay applied to a relay filter (``node``, ``dt``,
                   ``set_bits_before``/``set_bits_after``)
``forward``        one message transmission (``msg``, ``src``, ``dst``,
                   ``kind`` = ``direct`` | ``inject`` | ``relay``, ``size``,
                   for ``relay`` the preferential-query value ``pref``, and a
                   ``match`` provenance flag: direct hops record how the
                   consumer filter matched (``bloom`` | ``exact``), inject
                   hops record the ground-truth class of the relay-filter
                   match (``genuine`` | ``stale`` | ``fp``))
``delivery``       a (message, node) delivery (``msg``, ``node``,
                   ``intended`` ground-truth flag, ``cause`` = ``direct``
                   final-hop filter match | ``self`` exact local match at a
                   carrying broker)
``false_injection``  a producer→broker replication of a message no node is
                   interested in — a pure relay-filter false positive
                   (``msg``, ``src``, ``dst``)
``broker_role``    the Sec. V-B election changed a node's role (``node``,
                   ``action`` = ``promote`` | ``demote``, ``by``)
``frame_dropped``  an injected channel fault consumed a transfer's airtime
                   without delivering it (``src``, ``dst``, ``size``,
                   ``cause`` = ``loss`` | ``corruption``)
``frame_truncated``  a contact broke mid-transfer: the straddling frame was
                   cut (``src``, ``dst``, ``size``, ``sent`` prefix bytes)
``node_crashed``   a churn crash wiped/aged a node's volatile state
                   (``node``, ``mode`` = ``wipe`` | ``age``)
``node_recovered``  a crashed node came back online (``node``)
``sim_end``        the engine finished replaying the trace (``contacts``,
                   ``messages``) — the analyzer's end-of-run anchor
=================  ============================================================

Every event additionally carries ``seq`` (a 0-based sequence number
assigned by the recorder) and ``t`` (simulation time, seconds).  The
JSON encoding is canonical — compact separators, sorted keys — so a
trace file is a deterministic function of protocol behaviour, and its
SHA-256 digest (:func:`repro.obs.recorder.trace_digest`) can be pinned
by golden tests.

Trace files additionally start with one *meta* line (``{"schema":2,
"type":"trace_meta"}``) identifying the schema version.  Schema 1
files (no meta line, no ``create``/``sim_end`` events, no
``match``/``cause`` provenance fields) still parse — the reader treats
a missing header as version 1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

__all__ = [
    "EVENT_TYPES",
    "TraceEvent",
    "TRACE_SCHEMA_VERSION",
    "TRACE_META_TYPE",
    "trace_meta_line",
]

#: Version of the trace schema written by :class:`TraceRecorder`.
#: Version 1 (PR 2) had no meta header, no ``create``/``sim_end``
#: events, and no ``match``/``cause`` provenance fields; version 2
#: added all of them for the lineage analyzer.
TRACE_SCHEMA_VERSION = 2

#: The ``type`` value of the meta header line (not a protocol event).
TRACE_META_TYPE = "trace_meta"

#: The fourteen event types, in the order they are documented above
#: (ten protocol/engine events, then the four fault-injection events).
EVENT_TYPES = (
    "create",
    "contact",
    "a_merge",
    "m_merge",
    "decay_tick",
    "forward",
    "delivery",
    "false_injection",
    "broker_role",
    "frame_dropped",
    "frame_truncated",
    "node_crashed",
    "node_recovered",
    "sim_end",
)


def trace_meta_line() -> str:
    """The canonical JSON meta header line (without trailing newline)."""
    return json.dumps(
        {"schema": TRACE_SCHEMA_VERSION, "type": TRACE_META_TYPE},
        sort_keys=True,
        separators=(",", ":"),
    )

_EVENT_TYPE_SET = frozenset(EVENT_TYPES)


def _plain(value: Any) -> Any:
    """Coerce numpy scalars and other number-likes to plain Python.

    JSON output must not depend on which backend produced a number:
    ``np.float64(3.0)`` and ``3.0`` must encode identically.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if type(value) is int or type(value) is float:
        return value
    if hasattr(value, "item"):  # numpy scalar (including float64 subclasses)
        return value.item()
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One structured protocol event."""

    seq: int
    t: float
    type: str
    fields: Dict[str, Any]

    def __post_init__(self):
        if self.type not in _EVENT_TYPE_SET:
            raise ValueError(
                f"unknown event type {self.type!r}; expected one of {EVENT_TYPES}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """The event as one flat JSON-ready dict."""
        record = {"seq": self.seq, "t": float(self.t), "type": self.type}
        for key, value in self.fields.items():
            if key in record:
                raise ValueError(f"field {key!r} collides with an envelope key")
            record[key] = _plain(value)
        return record

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, compact separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "TraceEvent":
        """Rebuild an event from a parsed JSONL record."""
        record = dict(record)
        seq = record.pop("seq")
        t = record.pop("t")
        type_ = record.pop("type")
        return cls(seq=seq, t=t, type=type_, fields=record)
