"""Read-only filter introspection used when emitting merge events.

Works across the three relay representations by duck typing — a
:class:`~repro.core.tcbf.TemporalCountingBloomFilter`, a
:class:`~repro.core.allocation.TCBFCollection` (``filters`` property),
and an :class:`~repro.pubsub.exact.ExactInterestRelay` — all of which
expose ``items()`` as (position-or-key, counter) pairs.  These helpers
are only called behind a ``recorder.enabled`` guard, so their cost
never reaches an uninstrumented run.
"""

from __future__ import annotations

__all__ = ["relay_max_counter", "relay_set_bits"]


def relay_max_counter(relay) -> float:
    """The largest counter value anywhere in *relay* (0.0 when empty)."""
    filters = getattr(relay, "filters", None)
    if filters is not None:  # TCBFCollection
        return max((relay_max_counter(f) for f in filters), default=0.0)
    return max((float(counter) for _, counter in relay.items()), default=0.0)


def relay_set_bits(relay) -> int:
    """Set bits (TCBF) or stored keys (exact relay) in *relay*."""
    return len(relay)
