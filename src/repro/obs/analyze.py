"""Offline trace analysis: lineage, latency, false-positive attribution.

:func:`analyze_trace` streams a JSONL event trace once (bounded
memory, via :class:`~repro.obs.lineage.LineageBuilder`) and produces a
:class:`TraceAnalysis`: aggregate totals that reproduce the run's
:class:`~repro.pubsub.metrics.MetricsSummary` *exactly* from the trace
alone, a latency decomposition (wait-at-producer / per-broker dwell /
final hop), per-broker contribution accounting, the top-K slowest
deliveries with their full hop chains, and a false-positive
attribution that classifies every false injection and every delivery
by cause:

* ``relay_filter_fp`` — a producer→broker replication of a message
  whose keys nobody anywhere subscribes to: the relay filter can only
  have matched through Bloom bit collisions (the Sec. VI-B quantity).
  The analyzer pairs each one with merge/decay *evidence*: how many
  A-/M-merges the receiving broker had absorbed (the collisions'
  source material) and how long since its filter last decayed.
* ``genuine_but_stale`` — the matched key genuinely sits in the relay
  filter (someone announced it) but the message has no intended
  recipients, so the replication can never produce a delivery.
* ``direct_bf_fp`` — a delivery to a node not interested in the
  message: the final-hop consumer Bloom filter false-positived
  (impossible under ``interest_encoding="raw"``).
* ``producer_self`` — an exact-match self-delivery to an unintended
  node (only the producer itself can be one); bookkeeping, not a
  filter artefact.

The analysis is a pure function of the trace bytes: same trace file,
same ``analysis.json``, which is what the CI drift check pins.
"""

from __future__ import annotations

import heapq
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from .events import TraceEvent
from .lineage import DeliveryLeg, LineageBuilder, MessageLineage
from .recorder import read_trace_iter, read_trace_meta

__all__ = ["TraceAnalysis", "analyze_trace", "ANALYSIS_VERSION"]

#: Version of the analysis.json document layout.
ANALYSIS_VERSION = 1

#: Number of per-broker rows / slowest-delivery rows kept by default.
DEFAULT_TOP_K = 10


@dataclass
class _BrokerAccount:
    """Per-node contribution tallies."""

    dwell_s: float = 0.0
    deliveries_carried: int = 0
    relay_forwards: int = 0
    injections_received: int = 0
    false_injections_received: int = 0
    # Evidence accumulators for received false injections.
    a_merges_at_fi: int = 0
    m_merges_at_fi: int = 0


@dataclass
class TraceAnalysis:
    """Everything :func:`analyze_trace` derived from one trace."""

    trace_schema: int
    event_counts: Dict[str, int]
    messages: Dict[str, int]
    forwards: Dict[str, int]
    deliveries: Dict[str, object]
    injections: Dict[str, object]
    attribution: Dict[str, object]
    latency: Dict[str, object]
    brokers: List[Dict[str, object]]
    slowest: List[Dict[str, object]]
    memory: Dict[str, int]
    engine: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready nested dict (deterministic for a given trace)."""
        return {
            "schema": {
                "analysis": ANALYSIS_VERSION,
                "trace": self.trace_schema,
            },
            "events": dict(self.event_counts),
            "messages": dict(self.messages),
            "forwards": dict(self.forwards),
            "deliveries": dict(self.deliveries),
            "injections": dict(self.injections),
            "attribution": dict(self.attribution),
            "latency": dict(self.latency),
            "brokers": list(self.brokers),
            "slowest": list(self.slowest),
            "memory": dict(self.memory),
            "engine": dict(self.engine),
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact separators, newline)."""
        return (
            json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":"),
                allow_nan=False,
            )
            + "\n"
        )

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())


class _Analyzer:
    """The streaming aggregation pass behind :func:`analyze_trace`."""

    def __init__(self, top_k: int):
        self.top_k = top_k
        self.builder = LineageBuilder(on_finalized=self._absorb)
        self.event_counts: Dict[str, int] = {}
        # Merge/decay evidence, maintained per node as events stream.
        self._a_merges: Dict[int, int] = {}
        self._m_merges: Dict[int, int] = {}
        self._last_decay: Dict[int, float] = {}
        self._brokers: Dict[int, _BrokerAccount] = {}
        # Message-level aggregates folded in at finalisation.
        self.messages_created = 0
        self.intended_pairs = 0
        self.with_intended = 0
        self.fully_delivered = 0
        self.partially_delivered = 0
        self.undelivered = 0
        self.expired = 0
        self.open_at_end = 0
        self.forwards: Dict[str, int] = {"direct": 0, "inject": 0, "relay": 0}
        self.deliveries_total = 0
        self.deliveries_intended = 0
        self.deliveries_false = 0
        self.delivery_causes: Dict[str, int] = {}
        self.intended_delays: List[float] = []
        self.injection_match: Dict[str, int] = {}
        self.false_injections = 0
        self.attribution: Dict[str, int] = {
            "relay_filter_fp": 0,
            "genuine_but_stale": 0,
            "direct_bf_fp": 0,
            "producer_self": 0,
        }
        # Latency accumulators (intended deliveries with full evidence).
        self.decomposed = 0
        self.producer_wait_sum = 0.0
        self.carry_sum = 0.0
        self.final_hop_sum = 0.0
        self.max_residual = 0.0
        #: min-heap of (delay, msg, node, record) keeping the K slowest.
        self._slowest: List[Tuple[float, int, int, Dict[str, object]]] = []
        self.engine: Dict[str, object] = {}

    # -- streaming ----------------------------------------------------------

    def feed(self, event: TraceEvent) -> None:
        self.event_counts[event.type] = (
            self.event_counts.get(event.type, 0) + 1
        )
        fields = event.fields
        type_ = event.type
        if type_ == "create":
            self.messages_created += 1
            intended = int(fields.get("num_intended", 0))
            self.intended_pairs += intended
            if intended:
                self.with_intended += 1
        elif type_ == "forward":
            kind = fields.get("kind", "?")
            self.forwards[kind] = self.forwards.get(kind, 0) + 1
            if kind == "inject":
                match = fields.get("match", "legacy")
                self.injection_match[match] = (
                    self.injection_match.get(match, 0) + 1
                )
                self._broker(int(fields["dst"])).injections_received += 1
            elif kind == "relay":
                self._broker(int(fields["src"])).relay_forwards += 1
        elif type_ == "a_merge":
            node = int(fields["node"])
            self._a_merges[node] = self._a_merges.get(node, 0) + 1
        elif type_ == "m_merge":
            node = int(fields["node"])
            self._m_merges[node] = self._m_merges.get(node, 0) + 1
        elif type_ == "decay_tick":
            self._last_decay[int(fields["node"])] = event.t
        elif type_ == "false_injection":
            self.false_injections += 1
            self.attribution["relay_filter_fp"] += 1
            broker = self._broker(int(fields["dst"]))
            broker.false_injections_received += 1
            broker.a_merges_at_fi += self._a_merges.get(
                int(fields["dst"]), 0
            )
            broker.m_merges_at_fi += self._m_merges.get(
                int(fields["dst"]), 0
            )
        elif type_ == "sim_end":
            self.engine = {
                "end_time": event.t,
                "contacts": fields.get("contacts"),
                "messages": fields.get("messages"),
            }
        self.builder.feed(event)

    def _broker(self, node: int) -> _BrokerAccount:
        account = self._brokers.get(node)
        if account is None:
            account = self._brokers[node] = _BrokerAccount()
        return account

    # -- lineage finalisation -----------------------------------------------

    def _absorb(self, lineage: MessageLineage) -> None:
        if lineage.closed_by == "expired":
            self.expired += 1
        else:
            self.open_at_end += 1
        intended = lineage.num_intended
        if intended:
            delivered = lineage.num_intended_delivered
            if delivered >= intended:
                self.fully_delivered += 1
            elif delivered > 0:
                self.partially_delivered += 1
            else:
                self.undelivered += 1
        for leg in lineage.deliveries:
            self._absorb_delivery(lineage, leg)

    def _absorb_delivery(
        self, lineage: MessageLineage, leg: DeliveryLeg
    ) -> None:
        self.deliveries_total += 1
        cause = leg.cause or "legacy"
        self.delivery_causes[cause] = self.delivery_causes.get(cause, 0) + 1
        if leg.intended:
            self.deliveries_intended += 1
            if leg.delay_s is not None:
                self.intended_delays.append(leg.delay_s)
        else:
            self.deliveries_false += 1
            if cause == "self":
                self.attribution["producer_self"] += 1
            else:
                # "direct" — and the only unintended-delivery mechanism
                # schema-1 traces had, so "legacy" lands here too.
                self.attribution["direct_bf_fp"] += 1
        decomposition = leg.decomposition
        if (
            decomposition is not None
            and decomposition.producer_wait_s is not None
        ):
            self.decomposed += 1
            self.producer_wait_sum += decomposition.producer_wait_s
            self.carry_sum += decomposition.carry_s
            self.final_hop_sum += decomposition.final_hop_s
            if leg.delay_s is not None:
                residual = abs(
                    leg.delay_s
                    - (
                        decomposition.producer_wait_s
                        + decomposition.carry_s
                        + decomposition.final_hop_s
                    )
                )
                self.max_residual = max(self.max_residual, residual)
            for node, dwell in decomposition.dwells:
                account = self._broker(node)
                account.dwell_s += dwell
                account.deliveries_carried += 1
        if leg.delay_s is not None:
            record = {
                "msg": lineage.msg,
                "node": leg.node,
                "delay_s": leg.delay_s,
                "intended": leg.intended,
                "chain": leg.chain_label(),
                "hops": len(leg.chain),
                "producer_wait_s": (
                    decomposition.producer_wait_s if decomposition else None
                ),
                "carry_s": decomposition.carry_s if decomposition else None,
                "final_hop_s": (
                    decomposition.final_hop_s if decomposition else None
                ),
            }
            entry = (leg.delay_s, -lineage.msg, -leg.node, record)
            if len(self._slowest) < self.top_k:
                heapq.heappush(self._slowest, entry)
            elif entry > self._slowest[0]:
                heapq.heapreplace(self._slowest, entry)

    # -- result assembly ----------------------------------------------------

    def result(self, trace_schema: int) -> TraceAnalysis:
        self.builder.flush()
        delays = sorted(self.intended_delays)
        if delays:
            delay_mean = sum(delays) / len(delays)
            mid = len(delays) // 2
            delay_median = (
                delays[mid]
                if len(delays) % 2
                else (delays[mid - 1] + delays[mid]) / 2.0
            )
        else:
            delay_mean = delay_median = None
        injections_total = self.forwards.get("inject", 0)
        stale = self.injection_match.get("stale", 0)
        genuine = self.injection_match.get("genuine", 0)
        legacy = self.injection_match.get("legacy", 0)
        self.attribution["genuine_but_stale"] = stale
        attribution: Dict[str, object] = dict(self.attribution)
        attribution["false_injections_attributed"] = self.attribution[
            "relay_filter_fp"
        ]
        attribution["false_injection_coverage"] = (
            1.0 if self.false_injections else None
        )
        brokers = [
            {
                "node": node,
                "dwell_s": account.dwell_s,
                "deliveries_carried": account.deliveries_carried,
                "relay_forwards": account.relay_forwards,
                "injections_received": account.injections_received,
                "false_injections_received": account.false_injections_received,
                "mean_merges_absorbed_at_fi": (
                    (account.a_merges_at_fi + account.m_merges_at_fi)
                    / account.false_injections_received
                    if account.false_injections_received
                    else None
                ),
            }
            for node, account in sorted(
                self._brokers.items(),
                key=lambda item: (
                    -item[1].dwell_s,
                    -item[1].deliveries_carried,
                    item[0],
                ),
            )
            if account.dwell_s > 0.0
            or account.injections_received
            or account.relay_forwards
        ][: self.top_k]
        slowest = [
            entry[3]
            for entry in sorted(self._slowest, reverse=True)
        ]
        return TraceAnalysis(
            trace_schema=trace_schema,
            event_counts=dict(sorted(self.event_counts.items())),
            messages={
                "created": self.messages_created,
                "intended_pairs": self.intended_pairs,
                "with_intended": self.with_intended,
                "fully_delivered": self.fully_delivered,
                "partially_delivered": self.partially_delivered,
                "undelivered": self.undelivered,
                "expired": self.expired,
                "open_at_end": self.open_at_end,
            },
            forwards={
                **dict(sorted(self.forwards.items())),
                "total": sum(self.forwards.values()),
            },
            deliveries={
                "total": self.deliveries_total,
                "intended": self.deliveries_intended,
                "false": self.deliveries_false,
                "by_cause": dict(sorted(self.delivery_causes.items())),
                "delay_mean_s": delay_mean,
                "delay_median_s": delay_median,
                "delivery_ratio": (
                    self.deliveries_intended / self.intended_pairs
                    if self.intended_pairs
                    else None
                ),
                "false_positive_ratio": (
                    self.deliveries_false / self.deliveries_total
                    if self.deliveries_total
                    else 0.0
                ),
            },
            injections={
                "total": injections_total,
                "false": self.false_injections,
                "genuine": genuine,
                "genuine_but_stale": stale,
                "legacy_unclassified": legacy,
                "false_injection_ratio": (
                    self.false_injections / injections_total
                    if injections_total
                    else 0.0
                ),
                "useless_injection_ratio": (
                    (self.false_injections + stale) / injections_total
                    if injections_total and not legacy
                    else None
                ),
            },
            attribution=attribution,
            latency={
                "decomposed": self.decomposed,
                "producer_wait_mean_s": (
                    self.producer_wait_sum / self.decomposed
                    if self.decomposed
                    else None
                ),
                "carry_mean_s": (
                    self.carry_sum / self.decomposed
                    if self.decomposed
                    else None
                ),
                "final_hop_mean_s": (
                    self.final_hop_sum / self.decomposed
                    if self.decomposed
                    else None
                ),
                "max_residual_s": self.max_residual,
            },
            brokers=brokers,
            slowest=slowest,
            memory={
                "peak_live_messages": self.builder.peak_live,
                "finalized_messages": self.builder.finalized,
            },
            engine=self.engine,
        )


def analyze_trace(
    source: Union[str, Iterable[TraceEvent]],
    top_k: int = DEFAULT_TOP_K,
    trace_schema: Optional[int] = None,
) -> TraceAnalysis:
    """Analyze a trace — a JSONL file path or an event iterable.

    The trace is consumed strictly as a stream: peak analyzer memory is
    O(messages alive at once) plus O(nodes), never O(events), so
    million-event traces from the columnar backend analyze in bounded
    space.  Given a path, the schema version is read from the file's
    meta header (headerless files are treated as schema 1 and fully
    supported); given an iterable, pass ``trace_schema`` explicitly if
    known.
    """
    if top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")
    if isinstance(source, str):
        if trace_schema is None:
            trace_schema = int(read_trace_meta(source).get("schema", 1))
        events: Iterable[TraceEvent] = read_trace_iter(source)
    else:
        events = source
    analyzer = _Analyzer(top_k=top_k)
    for event in events:
        analyzer.feed(event)
    return analyzer.result(
        trace_schema if trace_schema is not None else 1
    )
