"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the whole evaluation pipeline without writing
code:

* ``run``       — one simulation, one protocol, printed summary; add
  ``--trace-out`` / ``--metrics-out`` for a structured event trace
  (JSONL) and a metrics snapshot (see ``docs/observability.md``), or
  ``--faults loss=0.1,crash=2`` to inject faults and print the
  degradation against the fault-free twin (see ``docs/faults.md``).
* ``analyze``   — per-message lineage, latency decomposition, and
  false-positive attribution over a recorded trace.
* ``sweep-ttl`` — the Fig. 7/8 TTL sweep as series tables.
* ``sweep-df``  — the Fig. 9 DF sweep as series tables.
* ``tables``    — regenerate Table I and Table II.
* ``stats``     — contact-trace statistics.
* ``export``    — write a synthetic trace to CSV (for other tools).
* ``synth``     — stream a city-scale synthetic trace to an on-disk
  dataset directory (out-of-core; see ``docs/performance.md``).
* ``serve``     — run the live asyncio TCP broker daemon (binary wire
  format, durable subscriptions, Prometheus metrics, schema-v2 trace
  emission; see ``docs/serving.md``).
* ``load``      — replay a deterministic synthetic workload against a
  live broker and report end-to-end latency.
* ``watch``     — tail a (growing) trace, or a fleet's shards, and
  render a refreshing live summary table (rolling completeness,
  latency percentiles, attribution; see ``docs/observability.md``).
* ``dash``      — the same live view as a dependency-free web
  dashboard (stdlib HTTP server + polling JSON endpoint).

Traces come from the built-in generators (``haggle``, ``mit``,
``mobility``), from a file (``csv:PATH`` / ``txt:PATH``), or from an
on-disk trace dataset (``dataset:DIR``, memory-mapped — a dataset far
larger than RAM opens in constant memory).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .api import ExperimentSpec, resilience, run, sweep
from .dtn.bandwidth import BLUETOOTH_EFFECTIVE_BPS
from .experiments import (
    DF_SWEEP_TTL_MIN,
    ascii_chart,
    format_observability,
    PAPER_DF_VALUES_PER_MIN,
    PAPER_TTL_VALUES_MIN,
    ExperimentConfig,
    figure_series,
    format_table,
    format_table_i,
    format_table_ii,
    metric_series,
    series_table,
)
from .faults import FaultSpec
from .traces import (
    ContactTrace,
    compute_stats,
    haggle_like,
    load_csv_trace,
    load_whitespace_trace,
    mit_reality_like,
    open_trace_dataset,
)
from .obs import Observability
from .traces.backends import TRACE_BACKEND_ENV_VAR, TRACE_BACKENDS
from .traces.mobility import MobilityConfig, simulate_mobility

__all__ = ["main", "build_parser", "resolve_trace"]


def resolve_trace(
    spec: str, scale: float, seed: int, backend: Optional[str] = None
) -> ContactTrace:
    """Turn a ``--trace`` argument into a ContactTrace.

    ``haggle`` / ``mit`` / ``mobility`` use the built-in generators;
    ``csv:PATH`` and ``txt:PATH`` load recorded traces;
    ``dataset:DIR`` opens an on-disk trace dataset (memory-mapped
    unless *backend* overrides it).
    """
    if spec == "haggle":
        return haggle_like(scale=scale, seed=seed)
    if spec == "mit":
        return mit_reality_like(scale=scale, seed=seed)
    if spec == "mobility":
        config = MobilityConfig(
            num_nodes=max(2, round(50 * max(scale, 0.04))),
            duration_s=scale * 3 * 86_400.0,
            seed=seed,
            name=f"mobility@{scale:g}",
        )
        return simulate_mobility(config)
    if spec.startswith("csv:"):
        return load_csv_trace(spec[4:])
    if spec.startswith("txt:"):
        return load_whitespace_trace(spec[4:])
    if spec.startswith("dataset:"):
        return open_trace_dataset(spec[8:], backend=backend or "mmap")
    raise SystemExit(
        f"unknown trace {spec!r}: use haggle, mit, mobility, csv:PATH, "
        f"txt:PATH or dataset:DIR"
    )


def _resolve_trace(args) -> ContactTrace:
    """resolve_trace plus the ``--trace-backend`` override."""
    if getattr(args, "trace_backend", None):
        os.environ[TRACE_BACKEND_ENV_VAR] = args.trace_backend
    trace = resolve_trace(
        args.trace, args.scale, args.seed,
        backend=getattr(args, "trace_backend", None),
    )
    first_days = getattr(args, "first_days", None)
    if first_days is not None:
        trace = trace.first_days(first_days)
    return trace


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", default="haggle",
        help="haggle | mit | mobility | csv:PATH | txt:PATH | dataset:DIR "
             "(default: haggle)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="synthetic trace scale, 1.0 = the paper's contact volume",
    )
    parser.add_argument("--seed", type=int, default=1, help="trace seed")
    parser.add_argument(
        "--min-rate", type=float, default=1 / 1800.0,
        help="minimum per-node message rate, msgs/s (paper: 1/1800)",
    )
    parser.add_argument(
        "--trace-backend", choices=list(TRACE_BACKENDS), default=None,
        help="trace storage backend (default: $BSUB_TRACE_BACKEND or "
             "columnar); all backends produce identical results",
    )
    parser.add_argument(
        "--first-days", type=float, default=None, metavar="DAYS",
        help="keep only the first DAYS days of the trace (handy for "
             "windowing a city-scale dataset down to a runnable slice)",
    )


def _add_jobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the sweep grid: 1 = serial (default), "
             "N = that many processes, 0 = one per CPU; results are "
             "identical for any value",
    )


def _add_filter(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--filter", dest="filter_spec", default=None, metavar="SPEC",
        help="relay filter backend spec: dict | array | "
             "multi[:keys=N,mem=BYTES|:threshold=F,max=H] | "
             "retouched[:clear=B+B+...] | countbf[:rows=R] "
             "(default: the paper's single array-backed TCBF; "
             "see docs/filters.md)",
    )


def _add_shards(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=None,
        help="split the contact timeline into this many shards "
             "(bit-identical to serial; passive replay of an mmap dataset "
             "reduces shards in parallel worker processes)",
    )


def _config(args, **overrides) -> ExperimentConfig:
    defaults = dict(min_rate_per_s=args.min_rate)
    if getattr(args, "shards", None):
        defaults["shards"] = args.shards
    if getattr(args, "filter_spec", None):
        defaults["filter_spec"] = args.filter_spec
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def _cmd_passive(args, trace: ContactTrace) -> int:
    """``run --protocol PASSIVE``: replay the trace with no protocol.

    The passive engine skips interests and the message workload
    entirely (both would be prohibitive at city scale), so this is the
    path that takes a 10⁸-contact dataset end to end: the sharded
    reducer streams mmap windows and merges their partials.
    """
    import time

    from .dtn.simulator import PassiveProtocol, Simulation

    started = time.perf_counter()
    report = Simulation(
        trace, PassiveProtocol(),
        rate_bps=BLUETOOTH_EFFECTIVE_BPS, shards=args.shards,
    ).run()
    elapsed = time.perf_counter() - started
    busiest = (
        max(report.contacts_by_node.values())
        if report.contacts_by_node else 0
    )
    rows = [
        ["trace", trace.name],
        ["protocol", "PASSIVE"],
        ["contacts replayed", report.num_contacts],
        ["trace end (days)", round(report.end_time / 86_400.0, 3)],
        ["channels exhausted", report.channels_exhausted],
        ["nodes seen", len(report.contacts_by_node)],
        ["busiest node contacts", busiest],
        ["shards", args.shards or 1],
        ["replay wall-clock (s)", round(elapsed, 2)],
        ["contacts/s", round(report.num_contacts / max(elapsed, 1e-9))],
    ]
    print(format_table(["metric", "value"], rows, title="Passive replay"))
    return 0


def _cmd_run(args) -> int:
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    trace = _resolve_trace(args)
    if args.protocol == "PASSIVE":
        for flag, name in [
            (args.faults, "--faults"), (args.trace_out, "--trace-out"),
            (args.metrics_out, "--metrics-out"),
        ]:
            if flag:
                raise SystemExit(f"{name} is not supported with PASSIVE")
        code = _cmd_passive(args, trace)
        if profiler is not None:
            profiler.disable()
            _print_profile(profiler)
        return code
    faults = FaultSpec.parse(args.faults) if args.faults else None
    config = _config(
        args, ttl_min=args.ttl_min, decay_factor_per_min=args.df,
        num_bits=args.num_bits, num_hashes=args.num_hashes,
        faults=faults,
    )
    spec = ExperimentSpec.from_config(config, protocol=args.protocol)
    observing = args.trace_out or args.metrics_out
    obs = Observability.enabled() if observing else None
    report = None
    if faults is not None and faults.enabled:
        report = resilience(trace, spec, obs=obs)
        result = report.faulted
    else:
        result = run(trace, spec, obs=obs)
    if profiler is not None:
        profiler.disable()
    s = result.summary
    rows = [
        ["trace", trace.name],
        ["protocol", result.protocol],
        ["TTL (min)", result.ttl_min],
        ["DF (/min)", round(result.decay_factor_per_min, 4)],
        ["messages", s.num_messages],
        ["intended pairs", s.num_intended_pairs],
        ["delivery ratio", round(s.delivery_ratio, 4)],
        ["mean delay (min)", round(s.mean_delay_min, 1)],
        ["forwardings/delivered", round(s.forwardings_per_delivered, 2)],
        ["false positive ratio", round(s.false_positive_ratio, 4)],
        ["broker fraction", round(result.broker_fraction, 2)],
        ["bytes transferred", round(result.engine.bytes_transferred)],
    ]
    print(format_table(["metric", "value"], rows, title="Run summary"))
    if report is not None:
        print()
        print(format_table(
            ["metric", "faulted", "fault-free"], report.rows(),
            title=f"Resilience vs fault-free twin ({faults.describe()})",
        ))
    if obs is not None:
        print()
        print(format_observability(obs))
        if args.trace_out:
            count = obs.tracer.write_jsonl(args.trace_out)
            print(f"\nwrote {count} events to {args.trace_out}")
        if args.metrics_out:
            if args.metrics_format == "prom":
                obs.registry.write_prom(args.metrics_out)
            else:
                obs.registry.write_json(args.metrics_out)
            print(
                f"wrote metrics ({args.metrics_format}) to {args.metrics_out}"
            )
    if profiler is not None:
        _print_profile(profiler)
    return 0


def _print_profile(profiler) -> None:
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    print()
    print(stream.getvalue().rstrip())


def _format_seconds(value) -> str:
    if value is None:
        return "-"
    return f"{value / 60.0:.1f} min" if value >= 60 else f"{value:.1f} s"


def _cmd_analyze(args) -> int:
    from .obs import analyze_trace

    analysis = analyze_trace(args.trace_file, top_k=args.top)
    doc = analysis.to_dict()
    messages = doc["messages"]
    deliveries = doc["deliveries"]
    injections = doc["injections"]
    attribution = doc["attribution"]
    latency = doc["latency"]
    overview = [
        ["trace schema", doc["schema"]["trace"]],
        ["events", sum(doc["events"].values())],
        ["messages created", messages["created"]],
        ["intended pairs", messages["intended_pairs"]],
        ["fully delivered", messages["fully_delivered"]],
        ["partially delivered", messages["partially_delivered"]],
        ["undelivered (had recipients)", messages["undelivered"]],
        ["deliveries", deliveries["total"]],
        ["  intended", deliveries["intended"]],
        ["  false", deliveries["false"]],
        ["delivery ratio",
         round(deliveries["delivery_ratio"], 4)
         if deliveries["delivery_ratio"] is not None else "-"],
        ["mean delay", _format_seconds(deliveries["delay_mean_s"])],
        ["median delay", _format_seconds(deliveries["delay_median_s"])],
        ["injections", injections["total"]],
        ["false injections", injections["false"]],
        ["peak live messages (analyzer)",
         doc["memory"]["peak_live_messages"]],
    ]
    print(format_table(["metric", "value"], overview,
                       title=f"Trace analysis — {args.trace_file}"))
    print()
    attribution_rows = [
        ["false injection: relay-filter Bloom FP",
         attribution["relay_filter_fp"]],
        ["wasted injection: genuine but stale interest",
         attribution["genuine_but_stale"]],
        ["false delivery: consumer-filter Bloom FP",
         attribution["direct_bf_fp"]],
        ["false delivery: producer self-match",
         attribution["producer_self"]],
        ["false injections attributed",
         f'{attribution["false_injections_attributed"]}'
         f'/{injections["false"]}'],
    ]
    print(format_table(["cause", "count"], attribution_rows,
                       title="False-positive attribution"))
    print()
    latency_rows = [
        ["deliveries decomposed", latency["decomposed"]],
        ["mean wait at producer",
         _format_seconds(latency["producer_wait_mean_s"])],
        ["mean in-flight carry (broker dwell)",
         _format_seconds(latency["carry_mean_s"])],
        ["mean final hop", _format_seconds(latency["final_hop_mean_s"])],
        ["max decomposition residual (s)",
         f'{latency["max_residual_s"]:.2e}'],
    ]
    print(format_table(["component", "value"], latency_rows,
                       title="Latency decomposition"))
    if doc["brokers"]:
        print()
        broker_rows = [
            [
                b["node"],
                _format_seconds(b["dwell_s"]),
                b["deliveries_carried"],
                b["relay_forwards"],
                b["injections_received"],
                b["false_injections_received"],
            ]
            for b in doc["brokers"]
        ]
        print(format_table(
            ["node", "dwell", "carried", "relayed", "injected", "false inj"],
            broker_rows,
            title="Top broker contributions (by total dwell)",
        ))
    if doc["slowest"]:
        print()
        slow_rows = [
            [
                entry["msg"],
                entry["node"],
                _format_seconds(entry["delay_s"]),
                entry["hops"],
                "yes" if entry["intended"] else "no",
                entry["chain"],
            ]
            for entry in doc["slowest"]
        ]
        print(format_table(
            ["msg", "node", "delay", "hops", "intended", "hop chain"],
            slow_rows,
            title=f"Slowest {len(slow_rows)} deliveries",
        ))
    if args.json:
        analysis.write_json(args.json)
        print(f"\nwrote analysis to {args.json}")
    return 0


def _cmd_sweep_ttl(args) -> int:
    trace = _resolve_trace(args)
    ttls = args.ttl or list(PAPER_TTL_VALUES_MIN)
    spec = ExperimentSpec.from_config(_config(args))
    results = sweep(trace, spec, ttl_min=ttls, jobs=args.jobs)
    for metric, title in [
        ("delivery_ratio", "Delivery ratio"),
        ("delay_min", "Delay (minutes)"),
        ("forwardings", "Forwardings per delivered message"),
    ]:
        data = figure_series(results, metric)
        print(series_table("TTL(min)", ttls, data,
                           title=f"{title} — {trace.name}"))
        print()
        print(ascii_chart(ttls, data, title=f"{title} (chart)"))
        print()
    return 0


def _cmd_sweep_df(args) -> int:
    trace = _resolve_trace(args)
    dfs = args.df_values or list(PAPER_DF_VALUES_PER_MIN)
    spec = ExperimentSpec.from_config(_config(args, ttl_min=args.ttl_min))
    results = sweep(trace, spec, df_per_min=dfs, jobs=args.jobs)
    for metric, title in [
        ("delivery_ratio", "Delivery ratio"),
        ("delay_min", "Delay (minutes)"),
        ("forwardings", "Forwardings per delivered message"),
        ("useless_injection", "False-positive traffic (useless-injection ratio)"),
        ("fpr", "Falsely delivered ratio"),
    ]:
        print(series_table(
            "DF(/min)", dfs, {"B-SUB": metric_series(results, metric)},
            title=f"{title} — {trace.name}, TTL = {args.ttl_min:g} min",
        ))
        print()
    return 0


def _cmd_tables(args) -> int:
    traces = [
        haggle_like(scale=args.scale, seed=args.seed),
        mit_reality_like(scale=args.scale, seed=args.seed),
    ]
    print(format_table_i(traces))
    print()
    print(format_table_ii())
    return 0


def _cmd_stats(args) -> int:
    trace = _resolve_trace(args)
    stats = compute_stats(trace)
    rows = [
        ["name", stats.name],
        ["nodes", stats.num_nodes],
        ["contacts", stats.num_contacts],
        ["duration (days)", round(stats.duration_days, 3)],
        ["contacts/day", round(stats.contacts_per_day, 1)],
        ["mean contact duration (s)", round(stats.mean_contact_duration_s, 1)],
        ["median contact duration (s)", round(stats.median_contact_duration_s, 1)],
        ["mean degree", round(stats.mean_degree, 1)],
        ["max degree", stats.max_degree],
        ["median inter-contact (min)", round(stats.median_inter_contact_s / 60, 1)],
    ]
    print(format_table(["statistic", "value"], rows, title="Trace statistics"))
    return 0


def _cmd_synth(args) -> int:
    import time

    from .traces.synthetic import CityTraceConfig, generate_city_trace

    config = CityTraceConfig(
        num_nodes=args.nodes,
        duration_days=args.days,
        target_contacts=args.contacts,
        num_communities=args.communities,
        seed=args.seed,
        name=args.name,
    )
    started = time.perf_counter()
    trace = generate_city_trace(config, args.output)
    elapsed = time.perf_counter() - started
    rows = [
        ["dataset", args.output],
        ["name", trace.name],
        ["nodes", config.num_nodes],
        ["contacts", trace.num_contacts],
        ["duration (days)", round(trace.end_time / 86_400.0, 3)],
        ["communities", config.num_communities],
        ["seed", config.seed],
        ["generation wall-clock (s)", round(elapsed, 2)],
    ]
    print(format_table(["field", "value"], rows, title="Synthesised dataset"))
    print(f"\nrun it with: python -m repro run --trace dataset:{args.output} "
          f"--protocol PASSIVE --shards 4")
    return 0


def _cmd_export(args) -> int:
    trace = _resolve_trace(args)
    with open(args.output, "w") as fh:
        fh.write("a,b,start,end\n")
        for contact in trace:
            fh.write(
                f"{contact.a},{contact.b},{contact.start:.3f},{contact.end:.3f}\n"
            )
    print(f"wrote {trace.num_contacts} contacts to {args.output}")
    return 0


def _write_metrics(registry, path: str, fmt: str) -> None:
    if fmt == "prom":
        registry.write_prom(path)
    else:
        with open(path, "w") as fh:
            fh.write(registry.to_json())


def _cmd_serve(args) -> int:
    import json

    from .obs.registry import MetricsRegistry
    from .serve import ServeSpec
    from .serve.broker import run_broker

    spec = ServeSpec.parse(args.spec) if args.spec else ServeSpec()
    if args.port is not None:
        spec = spec.with_port(args.port)
    if args.metrics_port is not None:
        spec = spec.with_metrics_port(args.metrics_port)
    if args.trace_out is not None:
        spec = spec.with_trace(args.trace_out)
    if args.workers is not None:
        spec = spec.with_workers(args.workers, spec.state_dir)
    if args.live:
        spec = spec.with_live(True)
    registry = MetricsRegistry()
    print(f"broker: {spec.describe()}", file=sys.stderr)
    summary = run_broker(spec, args.duration, registry=registry)
    if args.metrics_out is not None:
        _write_metrics(registry, args.metrics_out, args.metrics_format)
    if args.json:
        print(json.dumps(summary, sort_keys=True))
    else:
        flat = {
            key: value
            for key, value in summary.items()
            if not isinstance(value, (dict, list))
        }
        rows = [[key, flat[key]] for key in sorted(flat)]
        print(format_table(["field", "value"], rows, title="Broker run"))
    return 0


def _cmd_load(args) -> int:
    import json

    from .serve import LoadSpec
    from .serve.load import run_load

    spec = LoadSpec.parse(args.spec) if args.spec else LoadSpec()
    if args.host is not None or args.port is not None:
        spec = spec.with_target(
            args.host if args.host is not None else spec.host,
            args.port if args.port is not None else spec.port,
        )
    if args.sessions is not None:
        spec = spec.with_sessions(args.sessions)
    if args.duration is not None:
        spec = spec.with_duration(args.duration)
    print(f"load: {spec.describe()}", file=sys.stderr)
    report = run_load(spec)
    if args.json:
        print(json.dumps(report.as_dict(), sort_keys=True))
    else:
        flat = report.as_dict()
        latency = flat.pop("latency")
        rows = [[key, flat[key]] for key in sorted(flat)]
        rows += [
            [f"latency {key}", round(value, 3)]
            for key, value in latency.items()
        ]
        print(format_table(["field", "value"], rows, title="Load run"))
    # A healthy run decodes every broker frame it receives.
    return 1 if report.decode_errors else 0


def _live_source(args):
    """Build the (shard, event) stream a watch/dash session consumes."""
    from .obs.live import follow_merged_traces, replay_trace_iter

    if args.replay is not None:
        if len(args.traces) != 1:
            raise SystemExit("--replay takes exactly one trace file")
        return (
            (0, event)
            for event in replay_trace_iter(args.traces[0], speed=args.replay)
        )
    return follow_merged_traces(args.traces, follow=args.follow)


def _cmd_watch(args) -> int:
    import time

    from .obs.live import LiveTailer, ParityError, format_watch_table

    tailer = LiveTailer(
        window_s=args.window,
        source_paths=args.traces,
        checkpoint_every=args.parity_every,
    )
    source = _live_source(args)
    refreshing = not args.once and sys.stdout.isatty()
    last_render = 0.0
    try:
        for shard, event in source:
            tailer.feed(event, shard=shard)
            now = time.monotonic()
            if refreshing and now - last_render >= args.interval:
                print(
                    "\x1b[2J\x1b[H" + format_watch_table(tailer.snapshot()),
                    flush=True,
                )
                last_render = now
    except KeyboardInterrupt:
        pass
    except ParityError as error:
        print(format_watch_table(tailer.snapshot()))
        print(f"\nPARITY FAILURE: {error}", file=sys.stderr)
        return 1
    if args.verify and args.replay is None:
        try:
            tailer.verify_parity()
        except ParityError as error:
            print(format_watch_table(tailer.snapshot()))
            print(f"\nPARITY FAILURE: {error}", file=sys.stderr)
            return 1
    print(format_watch_table(tailer.snapshot()))
    return 0


def _cmd_dash(args) -> int:
    import time

    from .obs.dash import DashboardServer
    from .obs.live import LiveTailer
    from .obs.registry import MetricsRegistry

    tailer = LiveTailer(
        registry=MetricsRegistry(),
        window_s=args.window,
        source_paths=args.traces,
        checkpoint_every=args.parity_every,
    )
    dash = DashboardServer(tailer, host=args.host, port=args.port).start()
    print(f"dashboard: {dash.url}", file=sys.stderr)
    feeder = dash.feed_from(_live_source(args))
    try:
        if args.duration is not None:
            deadline = time.monotonic() + args.duration
            while time.monotonic() < deadline:
                time.sleep(min(0.2, deadline - time.monotonic()))
        else:
            # Serve until the operator interrupts; the feeder may have
            # finished long ago (offline replay) — the page stays up.
            while True:
                time.sleep(3600.0)
    except KeyboardInterrupt:
        pass
    finally:
        dash.stop()
        feeder.join(timeout=2.0)
    from .obs.live import format_watch_table

    print(format_watch_table(tailer.snapshot()))
    return 0


def _add_live_source_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "traces", nargs="+", metavar="TRACE",
        help="JSONL trace file(s); pass every fleet shard "
             "(trace.jsonl.w0 trace.jsonl.w1 ...) to watch a fleet",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="tail growing files (tail -f); default reads to EOF",
    )
    parser.add_argument(
        "--replay", type=float, default=None, metavar="SPEED",
        help="replay one finished trace at SPEED trace-seconds per "
             "wall second instead of tailing",
    )
    parser.add_argument(
        "--window", type=float, default=300.0,
        help="rolling-window horizon in trace seconds (default: 300)",
    )
    parser.add_argument(
        "--parity-every", type=int, default=0, metavar="N",
        help="re-run the offline analyzer over the consumed prefix "
             "every N events and fail loudly on divergence (0 = off)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="B-SUB (ICDCS 2010) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="one simulation run")
    _add_common(run)
    run.add_argument("--protocol", default="B-SUB",
                     choices=["PUSH", "B-SUB", "PULL", "SPRAY", "PASSIVE"])
    _add_shards(run)
    run.add_argument("--ttl-min", type=float, default=600.0)
    run.add_argument("--df", "--df-per-min", type=float, default=None,
                     help="DF per minute (default: derive via Eq. 5)")
    run.add_argument("--num-bits", "--m", type=int, default=256,
                     help="filter size m in bits (default: 256)")
    run.add_argument("--num-hashes", "--k", type=int, default=4,
                     help="hash functions k per filter (default: 4)")
    _add_filter(run)
    run.add_argument("--faults", default=None, metavar="SPEC",
                     help="inject faults and compare against the fault-free "
                          "twin; SPEC is e.g. "
                          "'loss=0.1,trunc=0.05,crash=2,downtime=1800,"
                          "mode=age,seed=3' (see docs/faults.md)")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write the structured event trace as JSONL")
    run.add_argument("--metrics-out", default=None, metavar="PATH",
                     help="write the metrics-registry snapshot")
    run.add_argument("--metrics-format", choices=["json", "prom"],
                     default="json",
                     help="metrics snapshot format: canonical JSON "
                          "(default) or Prometheus text exposition")
    run.add_argument("--profile", action="store_true",
                     help="profile trace build + simulation with cProfile "
                          "and print the 25 hottest functions")
    run.set_defaults(func=_cmd_run)

    analyze = commands.add_parser(
        "analyze",
        help="lineage / latency / false-positive analysis of a trace",
        description="Reconstruct per-message lineage from a JSONL event "
                    "trace (as written by 'run --trace-out') and report "
                    "latency decomposition, per-broker contributions, and "
                    "false-positive attribution.",
    )
    analyze.add_argument("trace_file", metavar="TRACE",
                         help="JSONL event trace (from run --trace-out)")
    analyze.add_argument("--json", default=None, metavar="PATH",
                         help="also write the machine-readable analysis.json")
    analyze.add_argument("--top", type=int, default=10,
                         help="rows in the slowest-deliveries and "
                              "broker tables (default: 10)")
    analyze.set_defaults(func=_cmd_analyze)

    sweep_ttl = commands.add_parser("sweep-ttl", help="Fig. 7/8 TTL sweep")
    _add_common(sweep_ttl)
    sweep_ttl.add_argument("--ttl", type=float, nargs="+",
                           help="TTL values in minutes")
    _add_filter(sweep_ttl)
    _add_jobs(sweep_ttl)
    _add_shards(sweep_ttl)
    sweep_ttl.set_defaults(func=_cmd_sweep_ttl)

    sweep_df = commands.add_parser("sweep-df", help="Fig. 9 DF sweep")
    _add_common(sweep_df)
    sweep_df.add_argument("--df-values", type=float, nargs="+")
    sweep_df.add_argument("--ttl-min", type=float, default=DF_SWEEP_TTL_MIN)
    _add_filter(sweep_df)
    _add_jobs(sweep_df)
    _add_shards(sweep_df)
    sweep_df.set_defaults(func=_cmd_sweep_df)

    tables = commands.add_parser("tables", help="regenerate Tables I and II")
    tables.add_argument("--scale", type=float, default=0.05)
    tables.add_argument("--seed", type=int, default=1)
    tables.set_defaults(func=_cmd_tables)

    stats = commands.add_parser("stats", help="contact-trace statistics")
    _add_common(stats)
    stats.set_defaults(func=_cmd_stats)

    export = commands.add_parser("export", help="write a trace to CSV")
    _add_common(export)
    export.add_argument("--output", required=True)
    export.set_defaults(func=_cmd_export)

    synth = commands.add_parser(
        "synth",
        help="stream a city-scale synthetic trace to a dataset directory",
        description="Generate a community-structured city trace directly "
                    "to an on-disk columnar dataset (constant memory, any "
                    "size). Open it later as --trace dataset:DIR.",
    )
    synth.add_argument("--output", required=True, metavar="DIR",
                       help="dataset directory to create")
    synth.add_argument("--nodes", type=int, default=1_000_000,
                       help="number of nodes (default: 1M)")
    synth.add_argument("--contacts", type=int, default=100_000_000,
                       help="target contact count (default: 100M)")
    synth.add_argument("--days", type=float, default=7.0,
                       help="trace duration in days (default: 7)")
    synth.add_argument("--communities", type=int, default=20_000,
                       help="number of communities (default: 20000)")
    synth.add_argument("--seed", type=int, default=0)
    synth.add_argument("--name", default="city")
    synth.set_defaults(func=_cmd_synth)

    serve = commands.add_parser(
        "serve",
        help="run the live asyncio TCP broker daemon",
        description="Serve the binary wire format over TCP: durable "
                    "subscriptions, live Prometheus metrics, and a "
                    "schema-v2 event trace that 'analyze' reproduces "
                    "exactly (see docs/serving.md).",
    )
    serve.add_argument("--spec", default=None, metavar="KV",
                       help="ServeSpec as 'key=value,...', e.g. "
                            "'port=7410,matching=bloom,m=512,k=4,"
                            "faults=loss:0.05+seed:3'")
    serve.add_argument("--port", type=int, default=None,
                       help="override the listen port (0 = ephemeral)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="serve Prometheus text on this port")
    serve.add_argument("--workers", type=int, default=None,
                       help="run N SO_REUSEPORT worker processes "
                            "sharing the port (default 1 = one process)")
    serve.add_argument("--duration", type=float, default=None,
                       help="serve this many seconds then stop "
                            "(default: until Ctrl-C)")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="stream the schema-v2 event trace here")
    serve.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the final metrics snapshot")
    serve.add_argument("--metrics-format", choices=["json", "prom"],
                       default="json")
    serve.add_argument("--live", action="store_true",
                       help="attach the live tailer: /metrics gains "
                            "rolling live_* series and shutdown "
                            "cross-checks live vs dispatcher parity "
                            "(needs --trace-out)")
    serve.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")
    serve.set_defaults(func=_cmd_serve)

    load = commands.add_parser(
        "load",
        help="replay a synthetic workload against a live broker",
        description="Plan a deterministic pub-sub workload (Table II "
                    "keys, diurnal arrivals) and drive it over real "
                    "sockets; reports client-side end-to-end latency. "
                    "Exits non-zero if any broker frame failed to "
                    "decode.",
    )
    load.add_argument("--spec", default=None, metavar="KV",
                      help="LoadSpec as 'key=value,...', e.g. "
                           "'sessions=1000,duration_s=30,"
                           "publish_rate_per_s=2,arrival=conference'")
    load.add_argument("--host", default=None)
    load.add_argument("--port", type=int, default=None)
    load.add_argument("--sessions", type=int, default=None)
    load.add_argument("--duration", type=float, default=None,
                      help="run window in seconds")
    load.add_argument("--json", action="store_true",
                      help="print the report as JSON")
    load.set_defaults(func=_cmd_load)

    watch = commands.add_parser(
        "watch",
        help="live terminal summary of a (growing) trace or fleet shards",
        description="Stream trace events through the live tailer and "
                    "render a refreshing summary table: rolling "
                    "completeness, latency decomposition percentiles, "
                    "false-injection attribution, per-broker dwell. "
                    "Works on a finished trace, a growing one "
                    "(--follow), a fleet's shards, or a wall-clock "
                    "replay (--replay).",
    )
    _add_live_source_args(watch)
    watch.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh interval in wall seconds (default: 1)",
    )
    watch.add_argument(
        "--once", action="store_true",
        help="consume the stream silently, print one final table",
    )
    watch.add_argument(
        "--verify", action="store_true",
        help="after the stream ends, re-run the offline analyzer over "
             "everything consumed and fail on any parity mismatch",
    )
    watch.set_defaults(func=_cmd_watch)

    dash = commands.add_parser(
        "dash",
        help="single-file web dashboard over the same live tailer",
        description="Serve an embedded HTML/JS page (no dependencies, "
                    "no external assets) polling a JSON endpoint of "
                    "the live tailer's snapshot, plus /metrics and "
                    "/healthz. Same sources as 'watch'.",
    )
    _add_live_source_args(dash)
    dash.add_argument("--host", default="127.0.0.1")
    dash.add_argument(
        "--dash-port", dest="port", type=int, default=8780,
        help="dashboard HTTP port (0 = ephemeral; default: 8780)",
    )
    dash.add_argument(
        "--duration", type=float, default=None,
        help="serve this many seconds then stop (default: until Ctrl-C)",
    )
    dash.set_defaults(func=_cmd_dash)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
