"""DTN simulation substrate: engine, events, and bandwidth model."""

from .bandwidth import (
    BLUETOOTH_EFFECTIVE_BPS,
    BLUETOOTH_PEAK_BPS,
    ContactChannel,
)
from .energy import BLUETOOTH_CLASS2_MODEL, EnergyModel, EnergyReport
from .events import MessageEvent
from .simulator import PassiveProtocol, Protocol, Simulation, SimulationReport

__all__ = [
    "BLUETOOTH_EFFECTIVE_BPS",
    "BLUETOOTH_PEAK_BPS",
    "BLUETOOTH_CLASS2_MODEL",
    "ContactChannel",
    "EnergyModel",
    "EnergyReport",
    "MessageEvent",
    "PassiveProtocol",
    "Protocol",
    "Simulation",
    "SimulationReport",
]
