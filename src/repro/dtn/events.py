"""Simulation event types.

The trace-driven simulator processes two kinds of events in global time
order: *contacts* (from the trace) and *message creations* (from the
workload generator).  Contacts are :class:`~repro.traces.model.Contact`
instances; message creations are :class:`MessageEvent` wrappers around
an opaque payload object, so the engine stays independent of the
pub-sub layer's message type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageEvent"]


@dataclass(frozen=True, order=True)
class MessageEvent:
    """A message-creation event.

    Attributes
    ----------
    time:
        Creation time in seconds from trace origin.
    node:
        The producer node creating the message.
    message:
        The payload object handed to the protocol (opaque to the
        engine; excluded from ordering comparisons).
    """

    time: float
    node: int
    message: Any = field(compare=False)

    def __post_init__(self):
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
