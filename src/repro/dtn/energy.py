"""Radio energy accounting.

The paper's central resource argument is energy: "The devices in
HUNETs are powered by batteries, which limits their abilities to
perform computational and communication tasks" (Sec. I), and the DF
exists partly because wasted traffic "wast[es] devices' energy and
bandwidth" (Sec. VI-A).  This module turns the simulator's per-node
byte accounting into Joules, so protocols can be compared on *energy
per delivered message* — the figure of merit the battery constraint
implies.

The default coefficients are in the range reported for Bluetooth 2.x
class-2 radios: transmitting and receiving cost on the order of
0.1 µJ/byte at the effective data rate, and each device discovery /
connection establishment costs a fixed amount on the order of tens of
millijoules (inquiry scans are notoriously the expensive part).  Exact
values vary per chipset; all coefficients are parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .simulator import SimulationReport

__all__ = ["EnergyModel", "EnergyReport", "BLUETOOTH_CLASS2_MODEL"]


@dataclass(frozen=True)
class EnergyModel:
    """Linear radio energy model.

    Attributes
    ----------
    tx_j_per_byte:
        Energy to transmit one byte (Joules).
    rx_j_per_byte:
        Energy to receive one byte (Joules).
    contact_setup_j:
        Fixed cost each endpoint pays per contact (discovery +
        connection establishment).
    """

    tx_j_per_byte: float = 1.2e-7
    rx_j_per_byte: float = 0.9e-7
    contact_setup_j: float = 0.03

    def __post_init__(self):
        if min(self.tx_j_per_byte, self.rx_j_per_byte, self.contact_setup_j) < 0:
            raise ValueError("energy coefficients must be >= 0")

    def evaluate(self, report: SimulationReport) -> "EnergyReport":
        """Energy consumed in a finished run, per node and in total.

        Data energy (protocol-dependent) and contact-setup energy
        (trace-dependent — every protocol pays the same discovery cost
        on the same trace) are kept separate so protocols can be
        compared on the marginal energy they actually control.
        """
        data: Dict[int, float] = {}
        for node, tx in report.tx_bytes_by_node.items():
            data[node] = data.get(node, 0.0) + tx * self.tx_j_per_byte
        for node, rx in report.rx_bytes_by_node.items():
            data[node] = data.get(node, 0.0) + rx * self.rx_j_per_byte
        setup: Dict[int, float] = {
            node: contacts * self.contact_setup_j
            for node, contacts in report.contacts_by_node.items()
        }
        return EnergyReport(per_node_data_j=data, per_node_setup_j=setup)


#: A ready-made model with the default Bluetooth class-2 coefficients.
BLUETOOTH_CLASS2_MODEL = EnergyModel()


@dataclass(frozen=True)
class EnergyReport:
    """Per-node and aggregate energy of one run."""

    per_node_data_j: Dict[int, float]
    per_node_setup_j: Dict[int, float]

    @property
    def per_node_j(self) -> Dict[int, float]:
        """node -> total Joules (data + setup)."""
        total = dict(self.per_node_setup_j)
        for node, joules in self.per_node_data_j.items():
            total[node] = total.get(node, 0.0) + joules
        return total

    @property
    def data_j(self) -> float:
        """Protocol-controlled (data transfer) energy."""
        return sum(self.per_node_data_j.values())

    @property
    def setup_j(self) -> float:
        """Trace-determined (discovery/connection) energy."""
        return sum(self.per_node_setup_j.values())

    @property
    def total_j(self) -> float:
        return self.data_j + self.setup_j

    @property
    def max_node_j(self) -> float:
        """The worst-off battery — brokers concentrate load by design."""
        return max(self.per_node_j.values(), default=0.0)

    def mean_node_j(self) -> float:
        per_node = self.per_node_j
        if not per_node:
            return 0.0
        return sum(per_node.values()) / len(per_node)

    def energy_per_delivery_j(
        self, num_deliveries: int, data_only: bool = True
    ) -> float:
        """Joules spent per delivered message.

        Defaults to *data* energy, the protocol-controlled share; pass
        ``data_only=False`` for the all-in figure (which every protocol
        pays mostly to discovery on the same trace).
        """
        if num_deliveries <= 0:
            return float("nan")
        joules = self.data_j if data_only else self.total_j
        return joules / num_deliveries

    def hotspot_ratio(self, data_only: bool = True) -> float:
        """max / mean node energy — how unbalanced the burden is.

        B-SUB deliberately puts "unbalanced burden on brokers"
        (Sec. V-A); this quantifies it.  Defaults to the data share,
        where the protocol's choices show.
        """
        per_node = self.per_node_data_j if data_only else self.per_node_j
        if not per_node:
            return float("nan")
        mean = sum(per_node.values()) / len(per_node)
        if mean <= 0:
            return float("nan")
        return max(per_node.values()) / mean
