"""Trace-driven discrete-event DTN simulator.

The engine replays a contact trace in time order, interleaving
workload events (message creations), and hands each event to a
:class:`Protocol`.  Store-carry-forward semantics live entirely in the
protocol implementations (:mod:`repro.pubsub`); the engine owns time,
event ordering, and per-contact bandwidth budgets.

This mirrors the paper's evaluation methodology (Sec. VII-A): "The
durations of all the contacts are already recorded in the trace" and
transfers are bounded by the 250 Kbps effective Bluetooth rate.

The replay loop is written for throughput: contact columns are pulled
out of the trace backend once, per-node byte accounting uses
``defaultdict`` instead of repeated ``dict.get``, and attribute
lookups are bound to locals outside the loop.  A protocol that opts in
with ``passive = True`` (no per-contact handler work, no workload, no
recorder, no faults) is replayed on a fully vectorised accounting path
that never materialises a :class:`Contact` at all — the two paths
produce identical reports.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional

import numpy as np

from ..obs.recorder import NULL_RECORDER
from ..traces.model import Contact, ContactTrace
from .bandwidth import BLUETOOTH_EFFECTIVE_BPS, ContactChannel
from .events import MessageEvent

__all__ = ["PassiveProtocol", "Protocol", "Simulation", "SimulationReport"]


class Protocol(abc.ABC):
    """Interface a routing/pub-sub protocol implements to be simulated.

    One protocol instance manages the state of *all* nodes (a
    per-node-object design would be truer to deployment but an order of
    magnitude slower in Python for zero analytic benefit; per-node state
    is still strictly partitioned inside the implementations).
    """

    #: Human-readable protocol name, used in reports.
    name: str = "protocol"

    #: A passive protocol declares its handlers side-effect free, which
    #: lets the engine replay pure accounting runs on a vectorised fast
    #: path (see :class:`PassiveProtocol`).
    passive: bool = False

    def setup(self, trace: ContactTrace) -> None:
        """Called once before the first event, with the full trace."""

    @abc.abstractmethod
    def on_message_created(self, node: int, message: Any, now: float) -> None:
        """A producer *node* creates *message* at time *now*."""

    @abc.abstractmethod
    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        """Nodes ``contact.a`` and ``contact.b`` meet at time *now*.

        All transfers must be charged to *channel*; when it refuses, the
        transfer did not happen.
        """

    def finish(self, now: float) -> None:
        """Called once after the last event (trace end time)."""

    def on_node_crashed(self, node: int, now: float, mode: str = "wipe") -> None:
        """Fault injection: *node* crashed at *now*, losing volatile state.

        ``mode="wipe"`` loses everything; ``mode="age"`` may keep
        state that plausibly survives on flash (protocol-defined).
        Default: no-op, for protocols that carry no volatile state
        worth modelling.
        """

    def on_node_recovered(self, node: int, now: float) -> None:
        """Fault injection: *node* came back online at *now*.  Default no-op."""


class PassiveProtocol(Protocol):
    """A protocol that transfers nothing — pure trace-replay accounting.

    Useful for measuring engine throughput and for workloads that only
    need the :class:`SimulationReport` contact statistics (contact
    counts per node, exhausted channels, trace end time).  Because it
    declares ``passive = True``, the engine replays it on the
    vectorised fast path whenever no workload, recorder, or fault plan
    is attached.
    """

    name = "PASSIVE"
    passive = True

    def on_message_created(self, node: int, message: Any, now: float) -> None:
        pass

    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        pass


@dataclass
class SimulationReport:
    """Engine-level accounting for one run."""

    num_contacts: int = 0
    num_messages_created: int = 0
    end_time: float = 0.0
    bytes_transferred: float = 0.0
    refused_transfers: int = 0
    channels_exhausted: int = 0
    #: node -> bytes transmitted / received (populated when the
    #: protocol attributes transfers; used by the energy model).
    tx_bytes_by_node: dict = field(default_factory=lambda: defaultdict(float))
    rx_bytes_by_node: dict = field(default_factory=lambda: defaultdict(float))
    #: node -> number of contacts the node took part in.
    contacts_by_node: dict = field(default_factory=lambda: defaultdict(int))
    extra: dict = field(default_factory=dict)


class Simulation:
    """One protocol run over one trace.

    Parameters
    ----------
    trace:
        The contact trace to replay.
    protocol:
        The protocol under test.
    message_events:
        Workload events (any order; sorted internally).
    rate_bps:
        Effective per-contact link rate; ``None`` for infinite
        bandwidth.
    recorder:
        Observability recorder (:mod:`repro.obs`); when enabled, every
        contact is emitted as a ``contact`` event *before* the protocol
        handles it, so per-contact protocol events nest after their
        announcing contact in the trace.
    faults:
        Optional fault plan (duck-typed — see
        :class:`repro.faults.FaultPlan`): supplies churn via
        ``advance(now, protocol)`` / ``is_down(node)``, per-contact
        channels via ``make_channel(contact, index, rate_bps)``, and
        degradation tallies via ``accounting``.  ``None`` (the default)
        takes the exact fault-free code path.
    """

    def __init__(
        self,
        trace: ContactTrace,
        protocol: Protocol,
        message_events: Iterable[MessageEvent] = (),
        rate_bps: Optional[float] = BLUETOOTH_EFFECTIVE_BPS,
        recorder=NULL_RECORDER,
        faults=None,
    ):
        self.trace = trace
        self.protocol = protocol
        self.message_events: List[MessageEvent] = sorted(
            message_events, key=lambda e: e.time
        )
        self.rate_bps = rate_bps
        self.recorder = recorder
        self.faults = faults
        self.report = SimulationReport()
        self._ran = False

    def run(self) -> SimulationReport:
        """Replay the trace once; returns the engine report.

        A Simulation is single-shot: protocols accumulate state, so
        re-running the same instance would silently double-count.
        """
        if self._ran:
            raise RuntimeError("Simulation instances are single-shot; build a new one")
        self._ran = True

        protocol = self.protocol
        protocol.setup(self.trace)
        if (
            getattr(protocol, "passive", False)
            and self.faults is None
            and not self.message_events
            and not self.recorder.enabled
        ):
            return self._run_passive()
        return self._run_general()

    def _run_passive(self) -> SimulationReport:
        """Vectorised replay for passive protocols.

        No handler can transfer bytes, no workload or fault plan
        perturbs the timeline, and no recorder observes it — so the
        report reduces to closed-form column arithmetic.  Produces a
        report identical to :meth:`_run_general` (pinned by an
        equivalence test).
        """
        report = self.report
        trace = self.trace
        store = trace.contacts
        columns = getattr(store, "columns", None)
        if columns is not None:
            starts, durations, a, b = columns()
        else:  # bare sequence of contacts (defensive; not used by traces)
            starts = np.array([c.start for c in store], dtype=np.float64)
            durations = np.array([c.duration for c in store], dtype=np.float64)
            a = np.array([c.a for c in store], dtype=np.int64)
            b = np.array([c.b for c in store], dtype=np.int64)

        n = len(starts)
        report.num_contacts = n
        rate = self.rate_bps
        if n:
            if rate is not None:
                # Same expression ContactChannel evaluates per contact:
                # exhausted() <=> budget - 0 spent < 1 byte.
                budgets = (durations * rate) / 8.0
                report.channels_exhausted = int(
                    np.count_nonzero(budgets < 1.0)
                )
            if int(a.min()) >= 0 and int(b.min()) >= 0:
                # bincount over the (dense, small) node ids: no
                # O(contacts) temporaries, unlike concatenate + unique.
                length = int(max(a.max(), b.max())) + 1
                counts = np.bincount(a, minlength=length) + np.bincount(
                    b, minlength=length
                )
                nodes = np.flatnonzero(counts)
                report.contacts_by_node.update(
                    zip(nodes.tolist(), counts[nodes].tolist())
                )
            else:  # negative node ids: bincount cannot index them
                nodes, counts = np.unique(
                    np.concatenate((a, b)), return_counts=True
                )
                report.contacts_by_node.update(
                    zip(nodes.tolist(), counts.tolist())
                )
            now = max(0.0, float(starts[n - 1]))
        else:
            now = 0.0
        end_time = max(now, trace.end_time)
        self.protocol.finish(end_time)
        report.end_time = end_time
        return report

    def _run_general(self) -> SimulationReport:
        protocol = self.protocol
        trace = self.trace
        store = trace.contacts
        events = self.message_events
        report = self.report
        faults = self.faults
        rate_bps = self.rate_bps
        recorder = self.recorder

        # Bind the hot-path lookups once: handler methods, recorder
        # state (fixed for the lifetime of a run), accounting dicts.
        on_contact = protocol.on_contact
        on_message_created = protocol.on_message_created
        rec_enabled = recorder.enabled
        rec_emit = recorder.emit
        tx_by_node = report.tx_bytes_by_node
        rx_by_node = report.rx_bytes_by_node
        contacts_by_node = report.contacts_by_node

        # Pull the contact columns out as plain Python lists: the merge
        # loop then touches only list indexing and float compares, and
        # Contact objects are built one at a time (transiently, under
        # the columnar backend) instead of living for the whole run.
        if getattr(store, "backend", "object") == "columnar":
            contact_list = None
            c_start, c_duration, c_a, c_b = (
                column.tolist() for column in store.columns()
            )
        else:
            contact_list = list(store)
            c_start = [c.start for c in contact_list]
            c_duration = [c.duration for c in contact_list]
            c_a = [c.a for c in contact_list]
            c_b = [c.b for c in contact_list]
        num_contacts = len(c_start)
        num_events = len(events)

        num_messages_created = 0
        contacts_seen = 0
        bytes_transferred = 0.0
        refused_transfers = 0
        channels_exhausted = 0

        ci = mi = 0
        now = 0.0
        while ci < num_contacts or mi < num_events:
            take_message = mi < num_events and (
                ci >= num_contacts or events[mi].time <= c_start[ci]
            )
            if take_message:
                event = events[mi]
                mi += 1
                if event.time > now:
                    now = event.time
                if faults is not None:
                    faults.advance(event.time, protocol)
                    if faults.is_down(event.node):
                        # The producer's device is off: the message is
                        # never created (it still shrinks the intended
                        # workload, which is the point).
                        faults.accounting.messages_skipped += 1
                        continue
                on_message_created(event.node, event.message, event.time)
                num_messages_created += 1
            else:
                index = ci
                start = c_start[ci]
                duration = c_duration[ci]
                a = c_a[ci]
                b = c_b[ci]
                ci += 1
                if start > now:
                    now = start
                if contact_list is None:
                    contact = Contact(start, duration, a, b)
                else:
                    contact = contact_list[index]
                if faults is not None:
                    faults.advance(start, protocol)
                    if faults.is_down(a) or faults.is_down(b):
                        # A crashed endpoint cannot communicate; the
                        # contact never happens at the protocol level.
                        faults.accounting.contacts_skipped += 1
                        contacts_seen += 1
                        continue
                    channel = faults.make_channel(contact, index, rate_bps)
                else:
                    channel = ContactChannel(duration, rate_bps)
                if rec_enabled:
                    rec_emit(
                        "contact", t=start, a=a, b=b, duration=float(duration),
                    )
                on_contact(contact, channel, start)
                contacts_seen += 1
                bytes_transferred += channel.spent_bytes
                refused_transfers += channel.refused_transfers
                if channel.exhausted():
                    channels_exhausted += 1
                for node, amount in channel.tx_bytes.items():
                    tx_by_node[node] += amount
                for node, amount in channel.rx_bytes.items():
                    rx_by_node[node] += amount
                contacts_by_node[a] += 1
                contacts_by_node[b] += 1

        report.num_messages_created = num_messages_created
        report.num_contacts = contacts_seen
        report.bytes_transferred = bytes_transferred
        report.refused_transfers = refused_transfers
        report.channels_exhausted = channels_exhausted

        end_time = max(now, trace.end_time)
        if faults is not None:
            # Drain churn events due before the end so recoveries are
            # accounted and the protocol sees a consistent final state.
            faults.advance(end_time, protocol)
            report.extra["faults"] = faults.accounting.as_dict()
        protocol.finish(end_time)
        if rec_enabled:
            # End-of-run anchor: lets offline analyzers finalise every
            # still-live message lineage and cross-check engine totals
            # without re-running the simulation.
            rec_emit(
                "sim_end", t=end_time,
                contacts=contacts_seen, messages=num_messages_created,
            )
        report.end_time = end_time
        return report
