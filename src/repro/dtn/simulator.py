"""Trace-driven discrete-event DTN simulator.

The engine replays a contact trace in time order, interleaving
workload events (message creations), and hands each event to a
:class:`Protocol`.  Store-carry-forward semantics live entirely in the
protocol implementations (:mod:`repro.pubsub`); the engine owns time,
event ordering, and per-contact bandwidth budgets.

This mirrors the paper's evaluation methodology (Sec. VII-A): "The
durations of all the contacts are already recorded in the trace" and
transfers are bounded by the 250 Kbps effective Bluetooth rate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence

from ..obs.recorder import NULL_RECORDER
from ..traces.model import Contact, ContactTrace
from .bandwidth import BLUETOOTH_EFFECTIVE_BPS, ContactChannel
from .events import MessageEvent

__all__ = ["Protocol", "Simulation", "SimulationReport"]


class Protocol(abc.ABC):
    """Interface a routing/pub-sub protocol implements to be simulated.

    One protocol instance manages the state of *all* nodes (a
    per-node-object design would be truer to deployment but an order of
    magnitude slower in Python for zero analytic benefit; per-node state
    is still strictly partitioned inside the implementations).
    """

    #: Human-readable protocol name, used in reports.
    name: str = "protocol"

    def setup(self, trace: ContactTrace) -> None:
        """Called once before the first event, with the full trace."""

    @abc.abstractmethod
    def on_message_created(self, node: int, message: Any, now: float) -> None:
        """A producer *node* creates *message* at time *now*."""

    @abc.abstractmethod
    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        """Nodes ``contact.a`` and ``contact.b`` meet at time *now*.

        All transfers must be charged to *channel*; when it refuses, the
        transfer did not happen.
        """

    def finish(self, now: float) -> None:
        """Called once after the last event (trace end time)."""

    def on_node_crashed(self, node: int, now: float, mode: str = "wipe") -> None:
        """Fault injection: *node* crashed at *now*, losing volatile state.

        ``mode="wipe"`` loses everything; ``mode="age"`` may keep
        state that plausibly survives on flash (protocol-defined).
        Default: no-op, for protocols that carry no volatile state
        worth modelling.
        """

    def on_node_recovered(self, node: int, now: float) -> None:
        """Fault injection: *node* came back online at *now*.  Default no-op."""


@dataclass
class SimulationReport:
    """Engine-level accounting for one run."""

    num_contacts: int = 0
    num_messages_created: int = 0
    end_time: float = 0.0
    bytes_transferred: float = 0.0
    refused_transfers: int = 0
    channels_exhausted: int = 0
    #: node -> bytes transmitted / received (populated when the
    #: protocol attributes transfers; used by the energy model).
    tx_bytes_by_node: dict = field(default_factory=dict)
    rx_bytes_by_node: dict = field(default_factory=dict)
    #: node -> number of contacts the node took part in.
    contacts_by_node: dict = field(default_factory=dict)
    extra: dict = field(default_factory=dict)


class Simulation:
    """One protocol run over one trace.

    Parameters
    ----------
    trace:
        The contact trace to replay.
    protocol:
        The protocol under test.
    message_events:
        Workload events (any order; sorted internally).
    rate_bps:
        Effective per-contact link rate; ``None`` for infinite
        bandwidth.
    recorder:
        Observability recorder (:mod:`repro.obs`); when enabled, every
        contact is emitted as a ``contact`` event *before* the protocol
        handles it, so per-contact protocol events nest after their
        announcing contact in the trace.
    faults:
        Optional fault plan (duck-typed — see
        :class:`repro.faults.FaultPlan`): supplies churn via
        ``advance(now, protocol)`` / ``is_down(node)``, per-contact
        channels via ``make_channel(contact, index, rate_bps)``, and
        degradation tallies via ``accounting``.  ``None`` (the default)
        takes the exact fault-free code path.
    """

    def __init__(
        self,
        trace: ContactTrace,
        protocol: Protocol,
        message_events: Iterable[MessageEvent] = (),
        rate_bps: Optional[float] = BLUETOOTH_EFFECTIVE_BPS,
        recorder=NULL_RECORDER,
        faults=None,
    ):
        self.trace = trace
        self.protocol = protocol
        self.message_events: List[MessageEvent] = sorted(
            message_events, key=lambda e: e.time
        )
        self.rate_bps = rate_bps
        self.recorder = recorder
        self.faults = faults
        self.report = SimulationReport()
        self._ran = False

    def run(self) -> SimulationReport:
        """Replay the trace once; returns the engine report.

        A Simulation is single-shot: protocols accumulate state, so
        re-running the same instance would silently double-count.
        """
        if self._ran:
            raise RuntimeError("Simulation instances are single-shot; build a new one")
        self._ran = True

        self.protocol.setup(self.trace)
        contacts: Sequence[Contact] = self.trace.contacts
        events = self.message_events
        report = self.report
        faults = self.faults

        ci = mi = 0
        now = 0.0
        while ci < len(contacts) or mi < len(events):
            take_message = mi < len(events) and (
                ci >= len(contacts) or events[mi].time <= contacts[ci].start
            )
            if take_message:
                event = events[mi]
                mi += 1
                now = max(now, event.time)
                if faults is not None:
                    faults.advance(event.time, self.protocol)
                    if faults.is_down(event.node):
                        # The producer's device is off: the message is
                        # never created (it still shrinks the intended
                        # workload, which is the point).
                        faults.accounting.messages_skipped += 1
                        continue
                self.protocol.on_message_created(event.node, event.message, event.time)
                report.num_messages_created += 1
            else:
                contact = contacts[ci]
                index = ci
                ci += 1
                now = max(now, contact.start)
                if faults is not None:
                    faults.advance(contact.start, self.protocol)
                    if faults.is_down(contact.a) or faults.is_down(contact.b):
                        # A crashed endpoint cannot communicate; the
                        # contact never happens at the protocol level.
                        faults.accounting.contacts_skipped += 1
                        report.num_contacts += 1
                        continue
                    channel = faults.make_channel(contact, index, self.rate_bps)
                else:
                    channel = ContactChannel(contact.duration, self.rate_bps)
                if self.recorder.enabled:
                    self.recorder.emit(
                        "contact", t=contact.start, a=contact.a,
                        b=contact.b, duration=float(contact.duration),
                    )
                self.protocol.on_contact(contact, channel, contact.start)
                report.num_contacts += 1
                report.bytes_transferred += channel.spent_bytes
                report.refused_transfers += channel.refused_transfers
                if channel.exhausted():
                    report.channels_exhausted += 1
                for node, amount in channel.tx_bytes.items():
                    report.tx_bytes_by_node[node] = (
                        report.tx_bytes_by_node.get(node, 0.0) + amount
                    )
                for node, amount in channel.rx_bytes.items():
                    report.rx_bytes_by_node[node] = (
                        report.rx_bytes_by_node.get(node, 0.0) + amount
                    )
                for node in (contact.a, contact.b):
                    report.contacts_by_node[node] = (
                        report.contacts_by_node.get(node, 0) + 1
                    )

        end_time = max(now, self.trace.end_time)
        if faults is not None:
            # Drain churn events due before the end so recoveries are
            # accounted and the protocol sees a consistent final state.
            faults.advance(end_time, self.protocol)
            report.extra["faults"] = faults.accounting.as_dict()
        self.protocol.finish(end_time)
        report.end_time = end_time
        return report
