"""Trace-driven discrete-event DTN simulator.

The engine replays a contact trace in time order, interleaving
workload events (message creations), and hands each event to a
:class:`Protocol`.  Store-carry-forward semantics live entirely in the
protocol implementations (:mod:`repro.pubsub`); the engine owns time,
event ordering, and per-contact bandwidth budgets.

This mirrors the paper's evaluation methodology (Sec. VII-A): "The
durations of all the contacts are already recorded in the trace" and
transfers are bounded by the 250 Kbps effective Bluetooth rate.

The replay loop is written for throughput *and* bounded memory:
contact columns are consumed in fixed-size chunks (so an mmap-backed
trace far larger than RAM replays without ever materialising a whole
column), per-node byte accounting uses ``defaultdict`` instead of
repeated ``dict.get``, and attribute lookups are bound to locals
outside the loop.  A protocol that opts in with ``passive = True`` (no
per-contact handler work, no workload, no recorder, no faults) is
replayed on a fully vectorised accounting path that never materialises
a :class:`Contact` at all — the two paths produce identical reports.

The passive path additionally decomposes into *mergeable partials*
(:func:`passive_partial` / :func:`merge_passive_partials`): every
engine total is either a sum, a max, or a per-node count, so the
contact timeline can be split into contiguous row windows, each window
reduced independently (in another process, reading only its slice of
the mmap), and the partials merged bit-identically to a serial run.
Active protocols carry protocol state contact-to-contact and therefore
execute shard windows serially, with chunk boundaries aligned to the
shard bounds — same results, bounded memory, no parallel speedup.
"""

from __future__ import annotations

import abc
import os
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..obs.recorder import NULL_RECORDER
from ..traces.model import Contact, ContactTrace
from .bandwidth import BLUETOOTH_EFFECTIVE_BPS, ContactChannel
from .events import MessageEvent

__all__ = [
    "PassiveProtocol",
    "Protocol",
    "Simulation",
    "SimulationReport",
    "passive_partial",
    "merge_passive_partials",
    "split_rows",
]

#: Contact rows pulled into Python lists per replay chunk.  Bounds the
#: transient footprint of the general path to a few tens of MB no
#: matter how large the trace is.
REPLAY_CHUNK_SIZE = 1 << 18


def split_rows(n: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``[0, n)`` into *shards* contiguous equal-count ranges.

    Rows are time-sorted, so equal row counts are contiguous time
    windows.  Deterministic pure integer arithmetic; empty ranges are
    kept so shard indices stay stable.
    """
    shards = max(1, int(shards))
    edges = [i * n // shards for i in range(shards + 1)]
    return [(edges[i], edges[i + 1]) for i in range(shards)]


def replay_chunks(
    n: int, shards: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Chunk ranges for the general replay loop.

    Plain ``REPLAY_CHUNK_SIZE`` windows, additionally cut at shard
    boundaries when *shards* is given, so a sharded active-protocol run
    consumes exactly the same row windows a passive sharded run would —
    the windowed-serial execution mode.
    """
    if n <= 0:
        return []
    cuts = {0, n}
    if shards and shards > 1:
        cuts.update(lo for lo, _ in split_rows(n, shards))
    ranges: List[Tuple[int, int]] = []
    edges = sorted(cuts)
    for lo, hi in zip(edges, edges[1:]):
        for sub in range(lo, hi, REPLAY_CHUNK_SIZE):
            ranges.append((sub, min(sub + REPLAY_CHUNK_SIZE, hi)))
    return ranges


class Protocol(abc.ABC):
    """Interface a routing/pub-sub protocol implements to be simulated.

    One protocol instance manages the state of *all* nodes (a
    per-node-object design would be truer to deployment but an order of
    magnitude slower in Python for zero analytic benefit; per-node state
    is still strictly partitioned inside the implementations).
    """

    #: Human-readable protocol name, used in reports.
    name: str = "protocol"

    #: A passive protocol declares its handlers side-effect free, which
    #: lets the engine replay pure accounting runs on a vectorised fast
    #: path (see :class:`PassiveProtocol`).
    passive: bool = False

    def setup(self, trace: ContactTrace) -> None:
        """Called once before the first event, with the full trace."""

    @abc.abstractmethod
    def on_message_created(self, node: int, message: Any, now: float) -> None:
        """A producer *node* creates *message* at time *now*."""

    @abc.abstractmethod
    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        """Nodes ``contact.a`` and ``contact.b`` meet at time *now*.

        All transfers must be charged to *channel*; when it refuses, the
        transfer did not happen.
        """

    def finish(self, now: float) -> None:
        """Called once after the last event (trace end time)."""

    def on_node_crashed(self, node: int, now: float, mode: str = "wipe") -> None:
        """Fault injection: *node* crashed at *now*, losing volatile state.

        ``mode="wipe"`` loses everything; ``mode="age"`` may keep
        state that plausibly survives on flash (protocol-defined).
        Default: no-op, for protocols that carry no volatile state
        worth modelling.
        """

    def on_node_recovered(self, node: int, now: float) -> None:
        """Fault injection: *node* came back online at *now*.  Default no-op."""


class PassiveProtocol(Protocol):
    """A protocol that transfers nothing — pure trace-replay accounting.

    Useful for measuring engine throughput and for workloads that only
    need the :class:`SimulationReport` contact statistics (contact
    counts per node, exhausted channels, trace end time).  Because it
    declares ``passive = True``, the engine replays it on the
    vectorised fast path whenever no workload, recorder, or fault plan
    is attached.
    """

    name = "PASSIVE"
    passive = True

    def on_message_created(self, node: int, message: Any, now: float) -> None:
        pass

    def on_contact(
        self, contact: Contact, channel: ContactChannel, now: float
    ) -> None:
        pass


def passive_partial(store, rate_bps: Optional[float]) -> Dict[str, Any]:
    """Reduce one contact-row window to its passive accounting partial.

    *store* is any contact store (typically a ``row_slice`` view or a
    shard worker's re-opened mmap slice).  The reduction is chunked so
    peak memory stays bounded by ``REPLAY_CHUNK_SIZE`` rows regardless
    of window size.  Every field merges exactly (sums, maxima, per-node
    counts), so any partition of the timeline recombines to the same
    result as one global pass — float max is exact and the budget test
    ``duration * rate / 8 < 1`` is evaluated per row either way.
    """
    columns = getattr(store, "columns", None)
    if columns is not None:
        starts, durations, a, b = columns()
    else:  # bare sequence of contacts (defensive; not used by traces)
        starts = np.array([c.start for c in store], dtype=np.float64)
        durations = np.array([c.duration for c in store], dtype=np.float64)
        a = np.array([c.a for c in store], dtype=np.int64)
        b = np.array([c.b for c in store], dtype=np.int64)
    n = len(starts)
    exhausted = 0
    end_max = -np.inf
    counts = np.zeros(0, dtype=np.int64)
    oddball: Dict[int, int] = {}  # negative node ids: bincount can't
    for lo in range(0, n, REPLAY_CHUNK_SIZE):
        hi = lo + REPLAY_CHUNK_SIZE
        d = durations[lo:hi]
        if rate_bps is not None:
            # Same expression ContactChannel evaluates per contact:
            # exhausted() <=> budget - 0 spent < 1 byte.
            exhausted += int(np.count_nonzero((d * rate_bps) / 8.0 < 1.0))
        end_max = max(end_max, float(np.max(starts[lo:hi] + d)))
        ca, cb = a[lo:hi], b[lo:hi]
        if int(ca.min()) >= 0 and int(cb.min()) >= 0:
            length = int(max(ca.max(), cb.max())) + 1
            chunk_counts = np.bincount(ca, minlength=length) + np.bincount(
                cb, minlength=length
            )
            if length > len(counts):
                counts = np.concatenate(
                    (counts, np.zeros(length - len(counts), dtype=np.int64))
                )
            counts[: len(chunk_counts)] += chunk_counts
        else:
            for arr in (ca, cb):
                nodes, node_counts = np.unique(arr, return_counts=True)
                for node, count in zip(
                    nodes.tolist(), node_counts.tolist()
                ):
                    oddball[node] = oddball.get(node, 0) + count
    return {
        "rows": n,
        "exhausted": exhausted,
        "counts": counts,
        "oddball": oddball,
        "last_start": float(starts[n - 1]) if n else None,
        "end_max": end_max,
    }


def merge_passive_partials(partials: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge time-ordered passive partials into one global partial.

    Deterministic: contact counts add, maxima combine, and the global
    last start is the last non-empty window's (rows are time-sorted
    across windows).
    """
    rows = 0
    exhausted = 0
    end_max = -np.inf
    last_start: Optional[float] = None
    length = max((len(p["counts"]) for p in partials), default=0)
    counts = np.zeros(length, dtype=np.int64)
    oddball: Dict[int, int] = {}
    for partial in partials:
        rows += partial["rows"]
        exhausted += partial["exhausted"]
        end_max = max(end_max, partial["end_max"])
        if partial["last_start"] is not None:
            last_start = partial["last_start"]
        counts[: len(partial["counts"])] += partial["counts"]
        for node, count in partial["oddball"].items():
            oddball[node] = oddball.get(node, 0) + count
    by_node: Dict[int, int] = {}
    if oddball:
        # Mixed/negative ids: fold both maps through one sorted pass so
        # the result matches a single global np.unique reduction.
        for node in counts.nonzero()[0].tolist():
            oddball[node] = oddball.get(node, 0) + int(counts[node])
        by_node = dict(sorted(oddball.items()))
    else:
        nodes = np.flatnonzero(counts)
        by_node = dict(zip(nodes.tolist(), counts[nodes].tolist()))
    return {
        "rows": rows,
        "exhausted": exhausted,
        "by_node": by_node,
        "last_start": last_start,
        "end_max": end_max,
    }


@dataclass
class SimulationReport:
    """Engine-level accounting for one run."""

    num_contacts: int = 0
    num_messages_created: int = 0
    end_time: float = 0.0
    bytes_transferred: float = 0.0
    refused_transfers: int = 0
    channels_exhausted: int = 0
    #: node -> bytes transmitted / received (populated when the
    #: protocol attributes transfers; used by the energy model).
    tx_bytes_by_node: dict = field(default_factory=lambda: defaultdict(float))
    rx_bytes_by_node: dict = field(default_factory=lambda: defaultdict(float))
    #: node -> number of contacts the node took part in.
    contacts_by_node: dict = field(default_factory=lambda: defaultdict(int))
    extra: dict = field(default_factory=dict)


class Simulation:
    """One protocol run over one trace.

    Parameters
    ----------
    trace:
        The contact trace to replay.
    protocol:
        The protocol under test.
    message_events:
        Workload events (any order; sorted internally).
    rate_bps:
        Effective per-contact link rate; ``None`` for infinite
        bandwidth.
    recorder:
        Observability recorder (:mod:`repro.obs`); when enabled, every
        contact is emitted as a ``contact`` event *before* the protocol
        handles it, so per-contact protocol events nest after their
        announcing contact in the trace.
    faults:
        Optional fault plan (duck-typed — see
        :class:`repro.faults.FaultPlan`): supplies churn via
        ``advance(now, protocol)`` / ``is_down(node)``, per-contact
        channels via ``make_channel(contact, index, rate_bps)``, and
        degradation tallies via ``accounting``.  ``None`` (the default)
        takes the exact fault-free code path.
    shards:
        Split the contact timeline into this many contiguous windows.
        The passive fast path reduces windows independently (in
        parallel worker processes when the trace is an mmap dataset and
        the machine has spare cores) and merges the partials; active
        protocols execute the same windows serially with state carried
        across boundaries.  Either way the report is bit-identical to
        an unsharded run.  ``None``/``1`` disables sharding.
    """

    def __init__(
        self,
        trace: ContactTrace,
        protocol: Protocol,
        message_events: Iterable[MessageEvent] = (),
        rate_bps: Optional[float] = BLUETOOTH_EFFECTIVE_BPS,
        recorder=NULL_RECORDER,
        faults=None,
        shards: Optional[int] = None,
    ):
        self.trace = trace
        self.protocol = protocol
        self.message_events: List[MessageEvent] = sorted(
            message_events, key=lambda e: e.time
        )
        self.rate_bps = rate_bps
        self.recorder = recorder
        self.faults = faults
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.report = SimulationReport()
        self._ran = False

    def run(self) -> SimulationReport:
        """Replay the trace once; returns the engine report.

        A Simulation is single-shot: protocols accumulate state, so
        re-running the same instance would silently double-count.
        """
        if self._ran:
            raise RuntimeError("Simulation instances are single-shot; build a new one")
        self._ran = True

        protocol = self.protocol
        protocol.setup(self.trace)
        if (
            getattr(protocol, "passive", False)
            and self.faults is None
            and not self.message_events
            and not self.recorder.enabled
        ):
            return self._run_passive()
        return self._run_general()

    def _run_passive(self) -> SimulationReport:
        """Vectorised replay for passive protocols.

        No handler can transfer bytes, no workload or fault plan
        perturbs the timeline, and no recorder observes it — so the
        report reduces to closed-form column arithmetic: the timeline
        is split into ``shards`` row windows (one, when unsharded),
        each reduced by :func:`passive_partial`, and the partials
        merged.  Produces a report identical to :meth:`_run_general`
        (pinned by an equivalence test) for any shard count.
        """
        report = self.report
        trace = self.trace
        store = trace.contacts
        rate = self.rate_bps
        shards = self.shards or 1
        if shards > 1 and hasattr(store, "row_slice"):
            partials = self._passive_partials(store, shards)
        else:
            partials = [passive_partial(store, rate)]
        merged = merge_passive_partials(partials)
        report.num_contacts = merged["rows"]
        report.channels_exhausted = merged["exhausted"]
        report.contacts_by_node.update(merged["by_node"])
        if merged["rows"]:
            now = max(0.0, merged["last_start"])
            end_time = max(now, merged["end_max"])
        else:
            now = 0.0
            end_time = max(now, trace.end_time)
        self.protocol.finish(end_time)
        report.end_time = end_time
        return report

    def _passive_partials(self, store, shards: int) -> List[Dict[str, Any]]:
        """Per-window passive partials, fanned out to workers if viable.

        Worker processes re-open the dataset from ``store.source`` and
        read only their row range, so the fan-out never pickles contact
        data.  When the store has no re-openable source (in-memory
        columnar, anonymous spill, sliced view) or the machine has a
        single core, the same windows are reduced in-process — the
        merge is identical either way.
        """
        bounds = split_rows(len(store), shards)
        source = getattr(store, "source", None)
        if source is not None and (os.cpu_count() or 1) > 1 and shards > 1:
            from ..experiments.parallel import run_passive_shards

            return run_passive_shards(source, bounds, self.rate_bps)
        return [
            passive_partial(store.row_slice(lo, hi), self.rate_bps)
            for lo, hi in bounds
        ]

    def _run_general(self) -> SimulationReport:
        protocol = self.protocol
        trace = self.trace
        store = trace.contacts
        events = self.message_events
        report = self.report
        faults = self.faults
        rate_bps = self.rate_bps
        recorder = self.recorder

        # Bind the hot-path lookups once: handler methods, recorder
        # state (fixed for the lifetime of a run), accounting dicts.
        on_contact = protocol.on_contact
        on_message_created = protocol.on_message_created
        rec_enabled = recorder.enabled
        rec_emit = recorder.emit
        tx_by_node = report.tx_bytes_by_node
        rx_by_node = report.rx_bytes_by_node
        contacts_by_node = report.contacts_by_node

        # Contacts are consumed chunk by chunk: per chunk, the columns
        # are pulled out as plain Python lists (the merge loop then
        # touches only list indexing and float compares) and Contact
        # objects are built one at a time, transiently.  Chunking
        # bounds peak memory on out-of-core traces; the event order is
        # exactly that of one global merge loop because chunks are
        # consecutive row ranges of the time-sorted trace.  When
        # ``shards`` is set, chunk edges are additionally cut at the
        # shard bounds (windowed-serial execution — identical results).
        if getattr(store, "backend", "object") == "object":
            contact_list = list(store)
            columns = None
            chunk_ranges = replay_chunks(len(contact_list), self.shards)
        else:
            contact_list = None
            columns = store.columns()
            chunk_ranges = replay_chunks(len(columns[0]), self.shards)
        num_events = len(events)

        num_messages_created = 0
        contacts_seen = 0
        bytes_transferred = 0.0
        refused_transfers = 0
        channels_exhausted = 0

        mi = 0
        now = 0.0
        for lo, hi in chunk_ranges:
            if columns is not None:
                c_start = columns[0][lo:hi].tolist()
                c_duration = columns[1][lo:hi].tolist()
                c_a = columns[2][lo:hi].tolist()
                c_b = columns[3][lo:hi].tolist()
            else:
                chunk = contact_list[lo:hi]
                c_start = [c.start for c in chunk]
                c_duration = [c.duration for c in chunk]
                c_a = [c.a for c in chunk]
                c_b = [c.b for c in chunk]
            n_chunk = len(c_start)
            # Fault-quiet chunk: no churn event is due before the last
            # contact of this chunk, so every ``advance`` call inside
            # it would be a no-op and the down-set is constant — the
            # endpoint checks collapse to one vectorised mask (or
            # nothing at all when every node is up).
            quiet = down = None
            if faults is not None and n_chunk and columns is not None:
                if faults.next_event_time() > c_start[n_chunk - 1]:
                    quiet = True
                    down = faults.down_mask(
                        columns[2][lo:hi], columns[3][lo:hi]
                    )
                    if down is not None:
                        down = down.tolist()
            ci = 0
            while ci < n_chunk:
                if mi < num_events and events[mi].time <= c_start[ci]:
                    event = events[mi]
                    mi += 1
                    if event.time > now:
                        now = event.time
                    if faults is not None:
                        if not quiet:
                            faults.advance(event.time, protocol)
                        if faults.is_down(event.node):
                            # The producer's device is off: the message
                            # is never created (it still shrinks the
                            # intended workload, which is the point).
                            faults.accounting.messages_skipped += 1
                            continue
                    on_message_created(event.node, event.message, event.time)
                    num_messages_created += 1
                    continue
                index = lo + ci
                start = c_start[ci]
                duration = c_duration[ci]
                a = c_a[ci]
                b = c_b[ci]
                ci += 1
                if start > now:
                    now = start
                if faults is not None:
                    if quiet:
                        skip = down is not None and down[ci - 1]
                    else:
                        faults.advance(start, protocol)
                        skip = faults.is_down(a) or faults.is_down(b)
                    if skip:
                        # A crashed endpoint cannot communicate; the
                        # contact never happens at the protocol level.
                        faults.accounting.contacts_skipped += 1
                        contacts_seen += 1
                        continue
                if contact_list is None:
                    contact = Contact(start, duration, a, b)
                else:
                    contact = contact_list[index]
                if faults is not None:
                    channel = faults.make_channel(contact, index, rate_bps)
                else:
                    channel = ContactChannel(duration, rate_bps)
                if rec_enabled:
                    rec_emit(
                        "contact", t=start, a=a, b=b, duration=float(duration),
                    )
                on_contact(contact, channel, start)
                contacts_seen += 1
                bytes_transferred += channel.spent_bytes
                refused_transfers += channel.refused_transfers
                if channel.exhausted():
                    channels_exhausted += 1
                for node, amount in channel.tx_bytes.items():
                    tx_by_node[node] += amount
                for node, amount in channel.rx_bytes.items():
                    rx_by_node[node] += amount
                contacts_by_node[a] += 1
                contacts_by_node[b] += 1
        # Workload events after the final contact.
        while mi < num_events:
            event = events[mi]
            mi += 1
            if event.time > now:
                now = event.time
            if faults is not None:
                faults.advance(event.time, protocol)
                if faults.is_down(event.node):
                    faults.accounting.messages_skipped += 1
                    continue
            on_message_created(event.node, event.message, event.time)
            num_messages_created += 1

        report.num_messages_created = num_messages_created
        report.num_contacts = contacts_seen
        report.bytes_transferred = bytes_transferred
        report.refused_transfers = refused_transfers
        report.channels_exhausted = channels_exhausted

        end_time = max(now, trace.end_time)
        if faults is not None:
            # Drain churn events due before the end so recoveries are
            # accounted and the protocol sees a consistent final state.
            faults.advance(end_time, protocol)
            report.extra["faults"] = faults.accounting.as_dict()
        protocol.finish(end_time)
        if rec_enabled:
            # End-of-run anchor: lets offline analyzers finalise every
            # still-live message lineage and cross-check engine totals
            # without re-running the simulation.
            rec_emit(
                "sim_end", t=end_time,
                contacts=contacts_seen, messages=num_messages_created,
            )
        report.end_time = end_time
        return report
