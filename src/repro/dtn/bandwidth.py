"""Contact bandwidth budgeting.

The paper assumes Bluetooth radios with a 1 Mbps peak and a 250 Kbps
*effective* transfer rate ("It is well-known that a wireless channel
offers far less bandwidth than its claimed peak value", Sec. VII-A).
Each contact therefore carries a byte budget of
``duration × rate / 8``; every filter or message a protocol sends is
charged against it and transfers truncate when it runs out — this is
exactly the mechanism that makes compressed interest representations
valuable (Sec. IV-B).
"""

from __future__ import annotations

__all__ = [
    "BLUETOOTH_PEAK_BPS",
    "BLUETOOTH_EFFECTIVE_BPS",
    "ContactChannel",
]

BLUETOOTH_PEAK_BPS = 1_000_000       # 1 Mbps claimed peak
BLUETOOTH_EFFECTIVE_BPS = 250_000    # paper's assumed average rate


class ContactChannel:
    """The byte budget of a single contact.

    Parameters
    ----------
    duration_s:
        Contact duration in seconds.
    rate_bps:
        Effective link rate in bits per second; ``None`` disables the
        budget entirely (infinite bandwidth — useful for isolating
        protocol logic in tests).
    """

    __slots__ = ("budget_bytes", "_spent", "_refused", "tx_bytes", "rx_bytes")

    def __init__(self, duration_s: float, rate_bps: float = BLUETOOTH_EFFECTIVE_BPS):
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        if rate_bps is not None and rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.budget_bytes = (
            float("inf") if rate_bps is None else duration_s * rate_bps / 8.0
        )
        self._spent = 0.0
        self._refused = 0
        # Per-node attribution of accepted transfers (for the energy
        # model); only populated when callers identify the endpoints.
        self.tx_bytes: dict = {}
        self.rx_bytes: dict = {}

    @property
    def spent_bytes(self) -> float:
        """Bytes charged so far."""
        return self._spent

    @property
    def remaining_bytes(self) -> float:
        return self.budget_bytes - self._spent

    @property
    def refused_transfers(self) -> int:
        """Number of transfers rejected for lack of budget."""
        return self._refused

    def can_send(self, num_bytes: float) -> bool:
        """Whether *num_bytes* still fit in the budget."""
        return num_bytes <= self.remaining_bytes

    def send(self, num_bytes: float, sender=None, receiver=None) -> bool:
        """Charge *num_bytes*; returns False (untouched budget) if they don't fit.

        Passing *sender*/*receiver* node ids attributes the transfer for
        per-node accounting (energy, fairness); omitting them only
        skips the attribution, never the charge.
        """
        if num_bytes < 0:
            raise ValueError(f"cannot send a negative size: {num_bytes}")
        if not self.can_send(num_bytes):
            self._refused += 1
            return False
        self._spent += num_bytes
        if sender is not None:
            self.tx_bytes[sender] = self.tx_bytes.get(sender, 0.0) + num_bytes
        if receiver is not None:
            self.rx_bytes[receiver] = self.rx_bytes.get(receiver, 0.0) + num_bytes
        return True

    def exhausted(self) -> bool:
        """True once even a 1-byte transfer no longer fits."""
        return self.remaining_bytes < 1.0

    def __repr__(self) -> str:
        return (
            f"ContactChannel(spent={self._spent:.0f}B, "
            f"remaining={self.remaining_bytes:.0f}B)"
        )
