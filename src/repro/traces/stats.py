"""Contact-trace statistics (regenerates the Table I comparison).

Computes the aggregate characteristics the paper reports for its two
datasets — node count, contact count, duration — plus the distributional
properties the synthetic generator is calibrated against: contacts per
day, per-node degree, contact-duration and inter-contact-time
summaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .model import ContactTrace

__all__ = ["TraceStats", "compute_stats", "inter_contact_times"]


@dataclass(frozen=True)
class TraceStats:
    """Aggregate statistics of one contact trace."""

    name: str
    num_nodes: int
    num_contacts: int
    duration_days: float
    contacts_per_day: float
    mean_contact_duration_s: float
    median_contact_duration_s: float
    mean_degree: float
    max_degree: int
    mean_inter_contact_s: float
    median_inter_contact_s: float

    def as_table_row(self) -> Dict[str, object]:
        """The Table I columns for this trace."""
        return {
            "Data Set": self.name,
            "Duration (days)": round(self.duration_days, 2),
            "Number of nodes": self.num_nodes,
            "Number of contacts": self.num_contacts,
        }


def _median(values: List[float]) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def inter_contact_times(trace: ContactTrace) -> List[float]:
    """Per-pair gaps between consecutive contacts, pooled over pairs.

    The heavy (power-law-with-cutoff) tail of this distribution is the
    signature property of human contact traces ([8], [9] in the paper).
    """
    by_pair: Dict[Tuple[int, int], List[float]] = {}
    for contact in trace:
        by_pair.setdefault(contact.pair, []).append(contact.start)
    gaps: List[float] = []
    for starts in by_pair.values():
        starts.sort()
        gaps.extend(b - a for a, b in zip(starts, starts[1:]))
    return gaps


def compute_stats(trace: ContactTrace) -> TraceStats:
    """Compute :class:`TraceStats` for *trace*."""
    durations = [c.duration for c in trace]
    degrees = [len(trace.neighbours(node)) for node in trace.nodes]
    gaps = inter_contact_times(trace)
    days = trace.duration_days
    return TraceStats(
        name=trace.name,
        num_nodes=trace.num_nodes,
        num_contacts=trace.num_contacts,
        duration_days=days,
        contacts_per_day=trace.num_contacts / days if days > 0 else math.nan,
        mean_contact_duration_s=(
            sum(durations) / len(durations) if durations else math.nan
        ),
        median_contact_duration_s=_median(durations),
        mean_degree=sum(degrees) / len(degrees) if degrees else math.nan,
        max_degree=max(degrees, default=0),
        mean_inter_contact_s=sum(gaps) / len(gaps) if gaps else math.nan,
        median_inter_contact_s=_median(gaps),
    )
