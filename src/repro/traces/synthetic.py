"""Synthetic human-contact trace generation.

The paper evaluates on two CRAWDAD traces (Haggle Infocom'06 and MIT
Reality Mining) that cannot be redistributed, so this module provides a
seeded generator that reproduces the *properties B-SUB's mechanisms
depend on*:

* **heterogeneous node activity** — a lognormal activity level per node
  creates the socially-active hubs the broker election is designed to
  find;
* **community structure** — intra-community contact rates are boosted,
  so contact patterns "directly represent people's activity in a social
  group" (Sec. I);
* **recurrent pairwise meetings** — per-pair Poisson contact processes
  make counter reinforcement/decay meaningful;
* **diurnal rhythm** — conference-session or campus-day activity
  profiles shape inter-contact times.

Two presets are calibrated to the published aggregate statistics of
Table I: :func:`haggle_like` (79 nodes, 3 days, ≈67,360 contacts,
conference rhythm) and :func:`mit_reality_like` (97 nodes, a 3-day
active-period slice, campus rhythm, markedly sparser — the paper's only
cross-trace claims are that MIT is sparser with lower contact
frequency, which the preset preserves).

Generation is *columnar*: per-pair contact intervals are coalesced
with vectorised cummax/reduceat arithmetic and accumulated as numpy
column chunks, so a million-contact trace never builds a Python object
per row.  The RNG call sequence and every floating-point operation
match the original per-contact implementation exactly, so seeds keep
producing byte-identical traces (the golden digests in ``tests/obs``
pin this).

For populations far beyond the paper's scale (ROADMAP item 2: city
scale, ≥10⁶ nodes and ≥10⁸ contacts) the per-pair process above is
infeasible — a million-node population has ~5×10¹¹ pairs before a
single contact is drawn.  :func:`generate_city_trace` switches to a
*window-Poisson* process: contacts are drawn per hour window with
activity-weighted endpoint sampling and community-biased partner
choice, then streamed straight to an on-disk trace dataset through
:class:`~repro.traces.loaders.ChunkedTraceWriter`.  Peak memory is one
window of contacts, never the trace.

Real CRAWDAD files, if the user has them, load through
:mod:`repro.traces.loaders` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from .loaders import ChunkedTraceWriter, open_trace_dataset
from .model import ContactTrace

__all__ = [
    "DiurnalProfile",
    "SyntheticTraceConfig",
    "CityTraceConfig",
    "generate_trace",
    "generate_city_trace",
    "haggle_like",
    "mit_reality_like",
    "CONFERENCE_PROFILE",
    "CAMPUS_PROFILE",
    "FLAT_PROFILE",
]


@dataclass(frozen=True)
class DiurnalProfile:
    """Hour-of-day activity weights (24 values, arbitrary scale).

    Contact instants are drawn from the normalised piecewise-constant
    density these weights define, repeated across days.
    """

    hourly_weights: Tuple[float, ...]

    def __post_init__(self):
        if len(self.hourly_weights) != 24:
            raise ValueError(
                f"need 24 hourly weights, got {len(self.hourly_weights)}"
            )
        if min(self.hourly_weights) < 0 or sum(self.hourly_weights) <= 0:
            raise ValueError("hourly weights must be non-negative, not all zero")

    def sample_times(
        self, count: int, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw *count* timestamps in [0, duration_s) from the profile."""
        if count == 0:
            return np.empty(0)
        cdf = self._hourly_cdf(duration_s)
        # Inverse-CDF sampling over hour bins.  This is exactly what
        # ``rng.choice(num_hours, size=count, p=probabilities)`` does
        # internally — same single ``rng.random(count)`` draw, same
        # searchsorted — but against a memoised cdf, because a
        # generator run re-enters here once per active node pair and
        # rebuilding the density each time dominated generation cost.
        hours = cdf.searchsorted(rng.random(count), side="right")
        offsets = rng.random(count) * 3600.0
        times = hours * 3600.0 + offsets
        return np.minimum(times, duration_s - 1e-6)

    def _hourly_cdf(self, duration_s: float) -> np.ndarray:
        """The hour-bin sampling cdf for a trace of *duration_s*.

        Pure arithmetic — no RNG draws — so memoising it cannot change
        any generated trace (the golden digests in ``tests/obs`` pin
        this).
        """
        key = (self.hourly_weights, duration_s)
        cached = _CDF_CACHE.get(key)
        if cached is not None:
            return cached
        weights = np.asarray(self.hourly_weights, dtype=float)
        # Density over a full day, tiled across the trace duration and
        # truncated at the end; hour bins of 3600 s.
        num_hours = int(np.ceil(duration_s / 3600.0))
        tiled = np.tile(weights, (num_hours + 23) // 24)[:num_hours].copy()
        # Partial final hour contributes proportionally.
        last_fraction = duration_s / 3600.0 - (num_hours - 1)
        tiled[-1] *= last_fraction
        probabilities = tiled / tiled.sum()
        cdf = probabilities.cumsum()
        cdf /= cdf[-1]
        cdf.flags.writeable = False
        if len(_CDF_CACHE) >= _CDF_CACHE_LIMIT:
            _CDF_CACHE.clear()
        _CDF_CACHE[key] = cdf
        return cdf


#: (hourly_weights, duration_s) -> sampling cdf; bounded so
#: pathological many-duration workloads cannot grow it without limit.
_CDF_CACHE: dict = {}
_CDF_CACHE_LIMIT = 64


CONFERENCE_PROFILE = DiurnalProfile(
    # Infocom-style: sessions 9:00-18:00, social evening, quiet nights.
    hourly_weights=(
        0.02, 0.02, 0.02, 0.02, 0.02, 0.02,   # 0-5
        0.05, 0.15, 0.60, 1.00, 1.00, 1.00,   # 6-11
        0.80, 1.00, 1.00, 1.00, 1.00, 0.90,   # 12-17
        0.50, 0.40, 0.30, 0.20, 0.10, 0.05,   # 18-23
    )
)

CAMPUS_PROFILE = DiurnalProfile(
    # Reality-Mining-style: classes/office hours, lunch peak, evenings.
    hourly_weights=(
        0.02, 0.02, 0.02, 0.02, 0.02, 0.03,
        0.08, 0.25, 0.60, 0.80, 0.90, 1.00,
        1.00, 0.90, 0.85, 0.80, 0.70, 0.55,
        0.40, 0.30, 0.20, 0.12, 0.06, 0.03,
    )
)

FLAT_PROFILE = DiurnalProfile(hourly_weights=(1.0,) * 24)


@dataclass
class SyntheticTraceConfig:
    """Parameters of the synthetic contact process.

    Attributes
    ----------
    num_nodes:
        Population size.
    duration_days:
        Trace length.
    target_contacts:
        Expected total contact count; the base rate is calibrated so
        the Poisson totals match this in expectation.
    num_communities:
        Number of (roughly equal) communities nodes are split into.
    intra_community_boost:
        Multiplier on the contact rate of same-community pairs.
    activity_sigma:
        σ of the lognormal node-activity distribution (0 = homogeneous).
    mean_contact_duration_s:
        Mean of the exponential contact-duration distribution.
    min_contact_duration_s:
        Hard floor on contact durations (Bluetooth discovery takes a
        few seconds).
    profile:
        Diurnal activity profile.
    seed:
        RNG seed; identical configs generate identical traces.
    name:
        Trace label.
    """

    num_nodes: int
    duration_days: float
    target_contacts: int
    num_communities: int = 4
    intra_community_boost: float = 3.0
    activity_sigma: float = 0.6
    mean_contact_duration_s: float = 240.0
    min_contact_duration_s: float = 10.0
    profile: DiurnalProfile = field(default_factory=lambda: FLAT_PROFILE)
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self):
        if self.num_nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {self.num_nodes}")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.target_contacts < 0:
            raise ValueError("target_contacts must be >= 0")
        if self.num_communities < 1:
            raise ValueError("num_communities must be >= 1")
        if self.intra_community_boost < 1.0:
            raise ValueError("intra_community_boost must be >= 1")
        if self.mean_contact_duration_s <= 0:
            raise ValueError("mean_contact_duration_s must be positive")


def _merge_pair_intervals(
    starts: np.ndarray, durations: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Coalesce one pair's overlapping intervals, vectorised.

    Two devices cannot be "in contact twice at once"; overlapping draws
    from the Poisson process are merged into a single longer contact,
    exactly as a Bluetooth logger would record them.

    Returns the merged ``(start, duration)`` columns, sorted by start.
    The result is element-for-element identical to the sequential
    running-max merge: once intervals are sorted by start, every
    element of a group that begins after the running maximum end also
    begins after *all* earlier ends (each end exceeds its own start,
    and starts are non-decreasing), so the global cumulative maximum of
    ends equals the within-group running maximum — the merge condition
    ``s <= current_end`` becomes a single vector comparison against the
    shifted cummax.
    """
    order = np.argsort(starts)
    s = starts[order]
    e = s + durations[order]
    cummax_e = np.maximum.accumulate(e)
    new_group = np.empty(len(s), dtype=bool)
    new_group[0] = True
    new_group[1:] = s[1:] > cummax_e[:-1]
    heads = np.flatnonzero(new_group)
    merged_start = s[heads]
    merged_end = np.maximum.reduceat(e, heads)
    return merged_start, merged_end - merged_start


def generate_trace(config: SyntheticTraceConfig) -> ContactTrace:
    """Generate a contact trace from *config* (deterministic per seed)."""
    rng = np.random.default_rng(config.seed)
    n = config.num_nodes
    duration_s = config.duration_days * 86_400.0

    communities = rng.integers(0, config.num_communities, size=n)
    activity = rng.lognormal(mean=0.0, sigma=config.activity_sigma, size=n)

    # Pairwise rate weights: activity product with community boost.
    # triu_indices walks (i, j) pairs in the same row-major order as
    # the nested ``for i … for j > i`` loops this replaces.
    iu, ju = np.triu_indices(n, k=1)
    weights = (
        activity[iu]
        * activity[ju]
        * np.where(
            communities[iu] == communities[ju],
            config.intra_community_boost,
            1.0,
        )
    )
    total_weight = weights.sum()
    if total_weight <= 0 or config.target_contacts == 0:
        return ContactTrace([], nodes=range(n), name=config.name)
    expected_per_pair = weights / total_weight * config.target_contacts

    counts = rng.poisson(expected_per_pair)
    start_chunks: List[np.ndarray] = []
    duration_chunks: List[np.ndarray] = []
    a_chunks: List[np.ndarray] = []
    b_chunks: List[np.ndarray] = []
    # The per-pair loop must stay a loop: each active pair consumes its
    # own profile.sample_times + exponential draws, and the RNG stream
    # order is part of the trace's seeded identity.
    nonzero = np.flatnonzero(counts)
    iu_list = iu.tolist()
    ju_list = ju.tolist()
    counts_list = counts.tolist()
    sample_times = config.profile.sample_times
    for k in nonzero.tolist():
        count = counts_list[k]
        starts = sample_times(int(count), duration_s, rng)
        durations = np.maximum(
            rng.exponential(config.mean_contact_duration_s, size=int(count)),
            config.min_contact_duration_s,
        )
        m_start, m_duration = _merge_pair_intervals(starts, durations)
        start_chunks.append(m_start)
        duration_chunks.append(m_duration)
        a_chunks.append(np.full(len(m_start), iu_list[k], dtype=np.int64))
        b_chunks.append(np.full(len(m_start), ju_list[k], dtype=np.int64))

    if not start_chunks:
        return ContactTrace([], nodes=range(n), name=config.name)
    # Chunks arrive in pair order with each chunk internally sorted;
    # from_arrays applies the final stable start-time sort, matching
    # the original sorted(contacts) tie-breaking exactly.
    return ContactTrace.from_arrays(
        np.concatenate(start_chunks),
        np.concatenate(duration_chunks),
        np.concatenate(a_chunks),
        np.concatenate(b_chunks),
        nodes=range(n),
        name=config.name,
        validate=False,
    )


@dataclass
class CityTraceConfig:
    """Parameters of the out-of-core window-Poisson city generator.

    The statistical knobs mirror :class:`SyntheticTraceConfig`
    (lognormal activity, communities, diurnal profile) but the process
    is per *hour window* rather than per pair: each window draws a
    Poisson number of contacts, endpoint ``a`` activity-weighted,
    partner ``b`` from ``a``'s community with probability
    ``intra_community_p`` (uniform otherwise).  Repeat pairwise
    meetings emerge from the community bias instead of explicit
    per-pair processes, which is what makes ≥10⁶-node populations
    tractable.
    """

    num_nodes: int = 1_000_000
    duration_days: float = 7.0
    target_contacts: int = 100_000_000
    num_communities: int = 20_000
    intra_community_p: float = 0.7
    activity_sigma: float = 0.9
    mean_contact_duration_s: float = 180.0
    min_contact_duration_s: float = 10.0
    profile: DiurnalProfile = field(default_factory=lambda: CAMPUS_PROFILE)
    seed: int = 0
    name: str = "city"

    def __post_init__(self):
        if self.num_nodes < 2:
            raise ValueError(f"need >= 2 nodes, got {self.num_nodes}")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.target_contacts < 0:
            raise ValueError("target_contacts must be >= 0")
        if not 1 <= self.num_communities <= self.num_nodes:
            raise ValueError("num_communities must be in [1, num_nodes]")
        if not 0.0 <= self.intra_community_p <= 1.0:
            raise ValueError("intra_community_p must be in [0, 1]")
        if self.mean_contact_duration_s <= 0:
            raise ValueError("mean_contact_duration_s must be positive")


def generate_city_trace(
    config: CityTraceConfig,
    path: Union[str, Path],
    max_window_rows: int = 4 << 20,
) -> ContactTrace:
    """Stream a city-scale trace to the dataset directory at *path*.

    Returns the generated trace opened on the ``mmap`` backend, so the
    call is usable exactly like :func:`generate_trace` but never holds
    more than one hour window (capped at *max_window_rows* rows) of
    contacts in memory.  Deterministic per seed.
    """
    rng = np.random.default_rng(config.seed)
    n = config.num_nodes
    duration_s = config.duration_days * 86_400.0
    num_hours = int(np.ceil(duration_s / 3600.0))

    activity = rng.lognormal(mean=0.0, sigma=config.activity_sigma, size=n)
    activity_cdf = np.cumsum(activity)
    activity_cdf /= activity_cdf[-1]
    communities = rng.integers(0, config.num_communities, size=n)
    # Community membership as one argsorted index array + offsets:
    # members of community k are comm_order[comm_offsets[k] :
    # comm_offsets[k + 1]].  Empty communities fall back to uniform.
    comm_order = np.argsort(communities, kind="stable").astype(np.int64)
    comm_sizes = np.bincount(communities, minlength=config.num_communities)
    comm_offsets = np.zeros(config.num_communities + 1, dtype=np.int64)
    np.cumsum(comm_sizes, out=comm_offsets[1:])

    # Expected contacts per hour window follow the diurnal profile.
    weights = np.asarray(config.profile.hourly_weights, dtype=float)
    tiled = np.tile(weights, (num_hours + 23) // 24)[:num_hours].copy()
    tiled[-1] *= duration_s / 3600.0 - (num_hours - 1)
    window_mean = tiled / tiled.sum() * config.target_contacts
    window_counts = rng.poisson(window_mean)

    writer = ChunkedTraceWriter(
        path, nodes=n, name=config.name, validate=False
    )
    with writer:
        for hour in range(num_hours):
            total = int(window_counts[hour])
            window_start = hour * 3600.0
            done = 0
            while done < total:
                count = min(total - done, max_window_rows)
                # Oversized windows emit several chunks; each covers a
                # count-proportional sub-interval of the hour so the
                # stream stays globally sorted and the union is still
                # uniform over the window.
                t0 = window_start + 3600.0 * (done / total)
                t1 = window_start + 3600.0 * ((done + count) / total)
                done += count
                a = np.searchsorted(
                    activity_cdf, rng.random(count), side="right"
                ).astype(np.int64)
                intra = rng.random(count) < config.intra_community_p
                b = rng.integers(0, n, size=count, dtype=np.int64)
                if intra.any():
                    ka = communities[a[intra]]
                    sizes = comm_sizes[ka]
                    member = (
                        comm_offsets[ka]
                        + (rng.random(int(intra.sum())) * sizes).astype(
                            np.int64
                        )
                    )
                    picked = comm_order[np.minimum(member, len(comm_order) - 1)]
                    # Singleton/empty communities keep the uniform draw.
                    b[intra] = np.where(sizes > 1, picked, b[intra])
                # Self-contacts get the deterministic next node.
                self_hit = a == b
                if self_hit.any():
                    b[self_hit] = (b[self_hit] + 1) % n
                lo_node = np.minimum(a, b)
                hi_node = np.maximum(a, b)
                starts = np.minimum(
                    t0 + rng.random(count) * (t1 - t0),
                    duration_s - 1e-6,
                )
                durations = np.maximum(
                    rng.exponential(
                        config.mean_contact_duration_s, size=count
                    ),
                    config.min_contact_duration_s,
                )
                order = np.argsort(starts, kind="stable")
                writer.append(
                    starts[order], durations[order],
                    lo_node[order], hi_node[order],
                )
    return open_trace_dataset(path, name=config.name)


def haggle_like(seed: int = 0, scale: float = 1.0) -> ContactTrace:
    """A Haggle (Infocom'06)-like trace (Table I row 1).

    79 iMote-carrying conference attendees over 3 days with ≈67,360
    contacts.  *scale* < 1 shrinks the contact count proportionally for
    fast tests and benchmarks while keeping population, duration, and
    structure fixed.
    """
    config = SyntheticTraceConfig(
        num_nodes=79,
        duration_days=3.0,
        target_contacts=round(67_360 * scale),
        num_communities=5,
        intra_community_boost=2.5,
        activity_sigma=0.55,
        mean_contact_duration_s=230.0,
        profile=CONFERENCE_PROFILE,
        seed=seed,
        name="haggle-infocom06-like" if scale == 1.0 else
        f"haggle-infocom06-like@{scale:g}",
    )
    return generate_trace(config)


def mit_reality_like(seed: int = 0, scale: float = 1.0) -> ContactTrace:
    """An MIT-Reality-like 3-day active-period slice (Table I row 2).

    97 phone-carrying subjects.  The full published trace spans 246
    days with 54,667 contacts; the paper simulates a 3-day slice.  We
    synthesise a 3-day *active-term* slice of ≈18,000 contacts —
    markedly sparser and more community-bound than the conference
    trace, which reproduces the paper's cross-trace observations
    (lower delivery ratio, higher delay on MIT).
    """
    config = SyntheticTraceConfig(
        num_nodes=97,
        duration_days=3.0,
        target_contacts=round(18_000 * scale),
        num_communities=8,
        intra_community_boost=6.0,
        activity_sigma=0.75,
        mean_contact_duration_s=300.0,
        profile=CAMPUS_PROFILE,
        seed=seed,
        name="mit-reality-like" if scale == 1.0 else
        f"mit-reality-like@{scale:g}",
    )
    return generate_trace(config)
