"""Community-based mobility simulation (an HCMM-style generator).

The synthetic generator in :mod:`repro.traces.synthetic` draws contact
*processes* directly; this module instead simulates the underlying
*mobility* — nodes moving in a 2-D area with community-biased waypoint
selection — and extracts Bluetooth-range contacts from the positions.
It produces the same social signatures (communities, hubs, recurrent
meetings) from first principles, in the spirit of the
community-based mobility models the HUNET literature uses ([8]-[10] in
the paper).

Model
-----
The area is a square of ``area_m`` metres split into a ``grid × grid``
cell lattice.  Each community is assigned a *home cell*.  Nodes follow
a waypoint process: pick a target (inside the home cell with
probability ``home_bias``, uniformly elsewhere otherwise), walk to it
at a per-leg speed drawn from ``[speed_min, speed_max]``, pause for a
random time, repeat.  Two nodes are *in contact* while within
``tx_range_m`` (Bluetooth: ~10 m); positions are advanced on a fixed
``time_step_s`` and contact intervals are the maximal runs of adjacent
steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .model import Contact, ContactTrace

__all__ = ["MobilityConfig", "simulate_mobility"]


@dataclass(frozen=True)
class MobilityConfig:
    """Parameters of the mobility simulation.

    Attributes
    ----------
    num_nodes:
        Population size.
    duration_s:
        Simulated wall-clock span.
    area_m:
        Side of the square simulation area, metres.
    grid:
        Cells per side of the home-cell lattice.
    num_communities:
        Communities; each gets one home cell (must fit the lattice).
    home_bias:
        Probability that a waypoint is drawn inside the node's home
        cell (0 = pure random waypoint, 1 = never leaves home).
    speed_min, speed_max:
        Walking-speed range, m/s (human: ~0.5-1.5).
    pause_min_s, pause_max_s:
        Pause-time range at each waypoint.
    tx_range_m:
        Radio contact range.
    time_step_s:
        Position-sampling period; contact intervals are resolved to
        this granularity.
    seed:
        RNG seed — identical configs produce identical traces.
    name:
        Trace label.
    """

    num_nodes: int = 50
    duration_s: float = 6 * 3600.0
    area_m: float = 500.0
    grid: int = 4
    num_communities: int = 4
    home_bias: float = 0.8
    speed_min: float = 0.5
    speed_max: float = 1.5
    pause_min_s: float = 10.0
    pause_max_s: float = 300.0
    tx_range_m: float = 10.0
    time_step_s: float = 5.0
    seed: int = 0
    name: str = "mobility"

    def __post_init__(self):
        if self.num_nodes < 2:
            raise ValueError("need at least 2 nodes")
        if self.duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.grid < 1:
            raise ValueError("grid must be >= 1")
        if self.num_communities > self.grid * self.grid:
            raise ValueError(
                f"{self.num_communities} communities will not fit a "
                f"{self.grid}x{self.grid} lattice"
            )
        if not 0.0 <= self.home_bias <= 1.0:
            raise ValueError("home_bias must be in [0, 1]")
        if not 0 < self.speed_min <= self.speed_max:
            raise ValueError("need 0 < speed_min <= speed_max")
        if not 0 <= self.pause_min_s <= self.pause_max_s:
            raise ValueError("need 0 <= pause_min_s <= pause_max_s")
        if self.tx_range_m <= 0:
            raise ValueError("tx_range_m must be positive")
        if self.time_step_s <= 0:
            raise ValueError("time_step_s must be positive")


class _Walkers:
    """Vectorised waypoint state for the whole population."""

    def __init__(self, config: MobilityConfig, rng: np.random.Generator):
        self.config = config
        self.rng = rng
        n = config.num_nodes
        cell = config.area_m / config.grid
        # Home cells: one lattice cell per community, spread deterministically.
        cells = rng.permutation(config.grid * config.grid)[: config.num_communities]
        self.community = rng.integers(0, config.num_communities, size=n)
        home = cells[self.community]
        self.home_x0 = (home % config.grid) * cell
        self.home_y0 = (home // config.grid) * cell
        self.cell = cell
        # Start everyone at a point in their home cell.
        self.pos = np.column_stack(
            [
                self.home_x0 + rng.random(n) * cell,
                self.home_y0 + rng.random(n) * cell,
            ]
        )
        self.target = self.pos.copy()
        self.speed = np.zeros(n)
        self.pause_until = np.zeros(n)
        self._retarget(np.arange(n), now=0.0)

    def _retarget(self, idx: np.ndarray, now: float) -> None:
        """Pick new waypoints (and speeds) for the nodes in *idx*."""
        if idx.size == 0:
            return
        config, rng = self.config, self.rng
        going_home = rng.random(idx.size) < config.home_bias
        x = rng.random(idx.size)
        y = rng.random(idx.size)
        tx = np.where(
            going_home,
            self.home_x0[idx] + x * self.cell,
            x * config.area_m,
        )
        ty = np.where(
            going_home,
            self.home_y0[idx] + y * self.cell,
            y * config.area_m,
        )
        self.target[idx, 0] = tx
        self.target[idx, 1] = ty
        self.speed[idx] = rng.uniform(
            config.speed_min, config.speed_max, size=idx.size
        )
        self.pause_until[idx] = now + rng.uniform(
            config.pause_min_s, config.pause_max_s, size=idx.size
        )

    def step(self, now: float) -> np.ndarray:
        """Advance one time step; returns current positions."""
        dt = self.config.time_step_s
        moving = now >= self.pause_until
        delta = self.target - self.pos
        distance = np.hypot(delta[:, 0], delta[:, 1])
        reach = self.speed * dt
        arrived = moving & (distance <= reach)
        en_route = moving & ~arrived
        if en_route.any():
            step_fraction = (reach[en_route] / distance[en_route])[:, None]
            self.pos[en_route] += delta[en_route] * step_fraction
        if arrived.any():
            self.pos[arrived] = self.target[arrived]
            self._retarget(np.flatnonzero(arrived), now)
        return self.pos


def simulate_mobility(config: MobilityConfig) -> ContactTrace:
    """Run the mobility model and extract the contact trace."""
    rng = np.random.default_rng(config.seed)
    walkers = _Walkers(config, rng)
    steps = int(config.duration_s // config.time_step_s)
    dt = config.time_step_s
    n = config.num_nodes

    # open_contacts maps (a, b) -> start time of the current interval
    open_contacts: Dict[Tuple[int, int], float] = {}
    contacts: List[Contact] = []
    upper = np.triu_indices(n, k=1)

    for step in range(steps):
        now = step * dt
        pos = walkers.step(now)
        diff = pos[:, None, :] - pos[None, :, :]
        adjacent = np.hypot(diff[..., 0], diff[..., 1]) <= config.tx_range_m
        in_range = set(zip(upper[0][adjacent[upper]], upper[1][adjacent[upper]]))
        # close intervals that ended
        for pair in [p for p in open_contacts if p not in in_range]:
            start = open_contacts.pop(pair)
            contacts.append(
                Contact.make(start, max(now - start, dt), pair[0], pair[1])
            )
        # open intervals that began
        for pair in in_range:
            if pair not in open_contacts:
                open_contacts[pair] = now
    # close whatever is still open at the end
    end = steps * dt
    for pair, start in open_contacts.items():
        contacts.append(
            Contact.make(start, max(end - start, dt), pair[0], pair[1])
        )

    trace = ContactTrace(
        [Contact.make(c.start, c.duration, int(c.a), int(c.b)) for c in contacts],
        nodes=range(n),
        name=config.name,
    )
    return trace
