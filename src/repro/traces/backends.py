"""Storage backends for :class:`~repro.traces.model.ContactTrace`.

The trace model describes *what* a contact sequence is; this module
provides the *storage* behind it through a seam that mirrors
:mod:`repro.core.backends`:

* ``object`` — the original representation: a time-sorted Python list
  of frozen :class:`~repro.traces.model.Contact` dataclasses.  Cheap
  for small traces and maximally debuggable, but costs a few hundred
  bytes and a couple of microseconds *per contact*.
* ``columnar`` — a struct-of-arrays layout: four parallel numpy
  vectors (``start``, ``duration``, ``a``, ``b``).  Storage is 32
  bytes per contact, time slicing is a zero-copy ``searchsorted``
  view, and bulk consumers (the simulator's vectorised accounting
  path, trace statistics) operate on the columns directly.
  :class:`Contact` objects are materialised lazily, one at a time,
  only when somebody actually indexes or iterates the trace.
* ``mmap`` — the columnar layout, but memory-mapped from ``.npy``
  sidecar files (one per column) instead of resident arrays.  The
  operating system pages contact data in on demand and may drop clean
  pages under pressure, so a trace far larger than RAM replays in
  bounded memory.  Time slices stay zero-copy (they are views into
  the same mapping), and a store opened from a dataset directory
  remembers its ``source`` path so shard workers in other processes
  can re-open just their slice.

All backends are **observationally identical**: they hold the same
contacts in the same order with the same IEEE-754 start/duration
values, so slices, statistics, and full simulation runs agree exactly
(a Hypothesis property test pins this down).  Select the default
backend process-wide with the ``BSUB_TRACE_BACKEND`` environment
variable or per trace with the ``backend=`` constructor argument.

A trace *constructed in memory* under the ``mmap`` backend is spilled
to a scratch dataset first (under ``BSUB_TRACE_MMAP_DIR`` when set,
else a temporary directory that is removed when the store is garbage
collected).  Traces that are already on disk open without any copy via
:func:`repro.traces.loaders.open_trace_dataset`.
"""

from __future__ import annotations

import atexit
import os
import shutil
import tempfile
import weakref
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = [
    "TRACE_BACKENDS",
    "TRACE_BACKEND_ENV_VAR",
    "TRACE_MMAP_DIR_ENV_VAR",
    "TRACE_COLUMN_NAMES",
    "default_trace_backend",
    "resolve_trace_backend",
    "make_contact_store",
    "store_from_arrays",
    "ObjectContactStore",
    "ColumnarContactStore",
    "MmapContactStore",
    "spill_columns_to_mmap",
]

#: Environment variable overriding the process-wide default backend.
TRACE_BACKEND_ENV_VAR = "BSUB_TRACE_BACKEND"

#: Environment variable pointing mmap spills at a persistent directory
#: (default: a per-store temporary directory, removed on collection).
TRACE_MMAP_DIR_ENV_VAR = "BSUB_TRACE_MMAP_DIR"

#: The recognised trace-backend names.
TRACE_BACKENDS = ("object", "columnar", "mmap")

#: The four dataset columns, in canonical order.
TRACE_COLUMN_NAMES = ("start", "duration", "a", "b")

#: numpy dtypes per column (little-endian, fixed for the disk format).
TRACE_COLUMN_DTYPES = {
    "start": np.dtype("<f8"),
    "duration": np.dtype("<f8"),
    "a": np.dtype("<i8"),
    "b": np.dtype("<i8"),
}

#: Rows per block for chunked bulk scans (end_time, node_ids, __iter__)
#: so whole-column temporaries never materialise for mmap traces.
SCAN_CHUNK_ROWS = 1 << 20


def default_trace_backend() -> str:
    """The process-wide default backend (``columnar`` unless overridden)."""
    backend = os.environ.get(TRACE_BACKEND_ENV_VAR, "columnar")
    if backend not in TRACE_BACKENDS:
        raise ValueError(
            f"{TRACE_BACKEND_ENV_VAR}={backend!r} is not a valid trace "
            f"backend; expected one of {TRACE_BACKENDS}"
        )
    return backend


def resolve_trace_backend(backend: Union[str, None]) -> str:
    """Normalise a ``backend=`` argument (``None`` -> the default)."""
    if backend is None:
        return default_trace_backend()
    if backend not in TRACE_BACKENDS:
        raise ValueError(
            f"unknown trace backend {backend!r}; "
            f"expected one of {TRACE_BACKENDS}"
        )
    return backend


def _as_columns(
    start, duration, a, b
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Coerce the four column inputs to the canonical dtypes."""
    return (
        np.ascontiguousarray(start, dtype=np.float64),
        np.ascontiguousarray(duration, dtype=np.float64),
        np.ascontiguousarray(a, dtype=np.int64),
        np.ascontiguousarray(b, dtype=np.int64),
    )


class ObjectContactStore:
    """The original list-of-:class:`Contact` storage.

    The list must already be sorted by start time (stable); the store
    never re-sorts.

    Stores are immutable once built, so the per-node contact index and
    the ``end_time``/``node_ids`` aggregates are computed lazily on
    first use and cached forever — no invalidation is ever needed.
    """

    __slots__ = ("_contacts", "_columns", "_by_node", "_end_time", "_node_ids")

    backend = "object"

    def __init__(self, contacts: List):
        self._contacts = contacts
        self._columns = None
        self._by_node: Optional[Dict[int, List[int]]] = None
        self._end_time: Optional[float] = None
        self._node_ids: Optional[Set[int]] = None

    @classmethod
    def from_arrays(cls, start, duration, a, b) -> "ObjectContactStore":
        """Materialise one :class:`Contact` per row (rows pre-sorted)."""
        from .model import Contact  # circular at import time only

        return cls(
            [
                Contact(s, d, na, nb)
                for s, d, na, nb in zip(
                    start.tolist(), duration.tolist(), a.tolist(), b.tolist()
                )
            ]
        )

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._contacts)

    def __getitem__(self, index):
        return self._contacts[index]

    def __iter__(self) -> Iterator:
        return iter(self._contacts)

    # -- bulk views ---------------------------------------------------------

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(start, duration, a, b) numpy columns (built once, cached)."""
        if self._columns is None:
            contacts = self._contacts
            n = len(contacts)
            self._columns = (
                np.fromiter((c.start for c in contacts), np.float64, count=n),
                np.fromiter((c.duration for c in contacts), np.float64, count=n),
                np.fromiter((c.a for c in contacts), np.int64, count=n),
                np.fromiter((c.b for c in contacts), np.int64, count=n),
            )
        return self._columns

    def start_times(self) -> List[float]:
        return [c.start for c in self._contacts]

    def end_time(self) -> float:
        if self._end_time is None:
            self._end_time = max(
                (c.end for c in self._contacts), default=0.0
            )
        return self._end_time

    def node_ids(self) -> Set[int]:
        if self._node_ids is None:
            seen: Set[int] = set()
            for c in self._contacts:
                seen.add(c.a)
                seen.add(c.b)
            self._node_ids = seen
        return set(self._node_ids)

    # -- transforms -----------------------------------------------------------

    def time_slice(self, start: float, end: float) -> "ObjectContactStore":
        """Contacts *starting* within [start, end)."""
        return ObjectContactStore(
            [c for c in self._contacts if start <= c.start < end]
        )

    def upto(self, horizon: float) -> "ObjectContactStore":
        return ObjectContactStore(
            [c for c in self._contacts if c.start < horizon]
        )

    def row_slice(self, lo: int, hi: int) -> "ObjectContactStore":
        """Rows [lo, hi) (clamped) — the shard-window primitive."""
        n = len(self._contacts)
        lo = max(0, min(int(lo), n))
        hi = max(lo, min(int(hi), n))
        return ObjectContactStore(self._contacts[lo:hi])

    def shifted(self, offset: float) -> "ObjectContactStore":
        from .model import Contact

        return ObjectContactStore(
            [
                Contact(c.start + offset, c.duration, c.a, c.b)
                for c in self._contacts
            ]
        )

    # -- per-node views -------------------------------------------------------

    def _node_index(self) -> Dict[int, List[int]]:
        """node -> time-ordered row indices, built once on first use."""
        if self._by_node is None:
            by_node: Dict[int, List[int]] = {}
            for i, c in enumerate(self._contacts):
                by_node.setdefault(c.a, []).append(i)
                by_node.setdefault(c.b, []).append(i)
            self._by_node = by_node
        return self._by_node

    def contacts_of(self, node: int) -> List:
        contacts = self._contacts
        return [contacts[i] for i in self._node_index().get(node, ())]

    def neighbour_ids(self, node: int) -> Set[int]:
        contacts = self._contacts
        return {
            contacts[i].peer_of(node)
            for i in self._node_index().get(node, ())
        }

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        counts: Dict[Tuple[int, int], int] = {}
        for c in self._contacts:
            counts[c.pair] = counts.get(c.pair, 0) + 1
        return counts


class ColumnarContactStore:
    """Struct-of-arrays contact storage, sorted by start time.

    Rows are identified by position; a :class:`Contact` is only built
    when a row is individually addressed.  All four columns may be
    views into a parent store's arrays (time slices are zero-copy).
    """

    __slots__ = ("start", "duration", "a", "b")

    backend = "columnar"

    def __init__(
        self,
        start: np.ndarray,
        duration: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
    ):
        self.start, self.duration, self.a, self.b = _as_columns(
            start, duration, a, b
        )
        if not (
            len(self.start) == len(self.duration) == len(self.a) == len(self.b)
        ):
            raise ValueError("trace columns must have equal lengths")

    @classmethod
    def from_contacts(cls, contacts: List) -> "ColumnarContactStore":
        """Pack a pre-sorted :class:`Contact` list into columns."""
        n = len(contacts)
        return cls(
            np.fromiter((c.start for c in contacts), np.float64, count=n),
            np.fromiter((c.duration for c in contacts), np.float64, count=n),
            np.fromiter((c.a for c in contacts), np.int64, count=n),
            np.fromiter((c.b for c in contacts), np.int64, count=n),
        )

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.start)

    def _materialise(self, i: int):
        from .model import Contact

        return Contact(
            float(self.start[i]),
            float(self.duration[i]),
            int(self.a[i]),
            int(self.b[i]),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"contact index {index} out of range")
        return self._materialise(index)

    def __iter__(self) -> Iterator:
        from .model import Contact

        # Chunked so iterating an out-of-core trace never materialises
        # whole-column Python lists.
        for lo in range(0, len(self.start), SCAN_CHUNK_ROWS):
            hi = lo + SCAN_CHUNK_ROWS
            for row in zip(
                self.start[lo:hi].tolist(),
                self.duration[lo:hi].tolist(),
                self.a[lo:hi].tolist(),
                self.b[lo:hi].tolist(),
            ):
                yield Contact(*row)

    # -- bulk views ---------------------------------------------------------

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The (start, duration, a, b) columns themselves (no copy)."""
        return (self.start, self.duration, self.a, self.b)

    def start_times(self) -> List[float]:
        return self.start.tolist()

    def end_time(self) -> float:
        n = len(self.start)
        if not n:
            return 0.0
        # Chunked max so no whole-column (start + duration) temporary
        # is built; float max is associative, so the result is
        # bit-identical to the single-pass expression.
        best = -np.inf
        for lo in range(0, n, SCAN_CHUNK_ROWS):
            hi = lo + SCAN_CHUNK_ROWS
            best = max(
                best, float(np.max(self.start[lo:hi] + self.duration[lo:hi]))
            )
        return best

    def node_ids(self) -> Set[int]:
        if not len(self.a):
            return set()
        seen: Set[int] = set()
        for lo in range(0, len(self.a), SCAN_CHUNK_ROWS):
            hi = lo + SCAN_CHUNK_ROWS
            seen.update(np.unique(self.a[lo:hi]).tolist())
            seen.update(np.unique(self.b[lo:hi]).tolist())
        return seen

    # -- transforms -----------------------------------------------------------

    def _view(self, lo: int, hi: int) -> "ColumnarContactStore":
        """Zero-copy row-range view; preserves the concrete store type."""
        clone = object.__new__(type(self))
        clone.start = self.start[lo:hi]
        clone.duration = self.duration[lo:hi]
        clone.a = self.a[lo:hi]
        clone.b = self.b[lo:hi]
        return clone

    def time_slice(self, start: float, end: float) -> "ColumnarContactStore":
        """Zero-copy view of the contacts *starting* within [start, end)."""
        lo = int(np.searchsorted(self.start, start, side="left"))
        hi = int(np.searchsorted(self.start, end, side="left"))
        return self._view(lo, hi)

    def upto(self, horizon: float) -> "ColumnarContactStore":
        hi = int(np.searchsorted(self.start, horizon, side="left"))
        return self._view(0, hi)

    def row_slice(self, lo: int, hi: int) -> "ColumnarContactStore":
        """Zero-copy view of rows [lo, hi) — the shard-window primitive."""
        n = len(self.start)
        lo = max(0, min(int(lo), n))
        hi = max(lo, min(int(hi), n))
        return self._view(lo, hi)

    def shifted(self, offset: float) -> "ColumnarContactStore":
        return ColumnarContactStore(
            self.start + offset, self.duration, self.a, self.b
        )

    def materialised(self) -> "ColumnarContactStore":
        """An in-memory copy of the columns (detaches from any mmap)."""
        return ColumnarContactStore(
            np.array(self.start), np.array(self.duration),
            np.array(self.a), np.array(self.b),
        )

    # -- per-node views -------------------------------------------------------

    def contacts_of(self, node: int) -> List:
        mask = (self.a == node) | (self.b == node)
        indices = np.flatnonzero(mask)
        return [self._materialise(int(i)) for i in indices]

    def neighbour_ids(self, node: int) -> Set[int]:
        peers = np.concatenate(
            (self.b[self.a == node], self.a[self.b == node])
        )
        return set(np.unique(peers).tolist())

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        if not len(self.a):
            return {}
        pairs = np.stack((self.a, self.b), axis=1)
        unique, counts = np.unique(pairs, axis=0, return_counts=True)
        return {
            (int(pa), int(pb)): int(count)
            for (pa, pb), count in zip(unique.tolist(), counts.tolist())
        }


class MmapContactStore(ColumnarContactStore):
    """Columnar storage memory-mapped from ``.npy`` sidecar files.

    Behaviourally identical to :class:`ColumnarContactStore` (it *is*
    one — all the column arithmetic is inherited); the only difference
    is that the four columns are read-only ``np.memmap`` views, so the
    resident set is whatever the OS chooses to keep paged in, not the
    trace size.  ``source`` records the dataset directory the store
    was opened from (``None`` for anonymous spills whose files may be
    gone), which lets shard workers re-open just their row range.

    Zero-copy transforms (``time_slice`` / ``upto`` / ``row_slice``)
    stay mmap-backed; ``shifted`` necessarily materialises and
    therefore returns a plain columnar store.
    """

    __slots__ = ("source", "__weakref__")

    backend = "mmap"

    def __init__(self, start, duration, a, b, source: Optional[str] = None):
        super().__init__(start, duration, a, b)
        self.source = source

    def _view(self, lo: int, hi: int) -> "MmapContactStore":
        clone = super()._view(lo, hi)
        # ``source`` promises "re-opening this path yields these exact
        # rows" (shard workers rely on it); only a full-range view can
        # keep that promise.
        clone.source = (
            self.source if (lo, hi) == (0, len(self)) else None
        )
        return clone

    def shifted(self, offset: float) -> ColumnarContactStore:
        # Shifting materialises a new start column, so the result is an
        # honest in-memory columnar store, not a fake "mmap" one.
        return ColumnarContactStore(
            self.start + offset, self.duration, self.a, self.b
        )

    @classmethod
    def open(
        cls,
        path: Union[str, Path],
        lo: int = 0,
        hi: Optional[int] = None,
    ) -> "MmapContactStore":
        """Open the column files under *path*, optionally a row range.

        The mapping is read-only; opening costs four small reads (the
        ``.npy`` headers), never the trace size.
        """
        path = Path(path)
        columns = []
        for name in TRACE_COLUMN_NAMES:
            column_path = path / f"{name}.npy"
            if not column_path.is_file():
                raise FileNotFoundError(
                    f"{path} is not a trace dataset: missing {name}.npy"
                )
            column = np.load(column_path, mmap_mode="r")
            expected = TRACE_COLUMN_DTYPES[name]
            if column.dtype != expected or column.ndim != 1:
                raise ValueError(
                    f"{column_path}: expected 1-D {expected}, "
                    f"got {column.dtype} with shape {column.shape}"
                )
            columns.append(column)
        store = cls(*columns, source=str(path))
        if lo or hi is not None:
            store = store.row_slice(lo, len(store) if hi is None else hi)
        return store


#: Spill directories created for anonymous in-memory -> mmap
#: conversions; removed at interpreter exit as a backstop (the
#: per-store weakref finalizer usually gets there first).
_SPILL_DIRS: Set[str] = set()


def _cleanup_spill_dirs() -> None:
    while _SPILL_DIRS:
        shutil.rmtree(_SPILL_DIRS.pop(), ignore_errors=True)


atexit.register(_cleanup_spill_dirs)


def _release_spill_dir(path: str) -> None:
    _SPILL_DIRS.discard(path)
    shutil.rmtree(path, ignore_errors=True)


def spill_columns_to_mmap(
    start: np.ndarray,
    duration: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
) -> MmapContactStore:
    """Write in-memory columns to a scratch dataset and mmap them back.

    The scratch directory lives under ``BSUB_TRACE_MMAP_DIR`` when that
    is set (and is then left on disk for reuse/inspection), else under
    the system temp dir with removal tied to the returned store's
    lifetime.  Mapped pages of an unlinked file stay readable on POSIX,
    so views that outlive the store keep working.
    """
    root = os.environ.get(TRACE_MMAP_DIR_ENV_VAR) or None
    if root:
        Path(root).mkdir(parents=True, exist_ok=True)
    spill_dir = tempfile.mkdtemp(prefix="bsub-trace-", dir=root)
    persistent = root is not None
    for name, column in zip(
        TRACE_COLUMN_NAMES, (start, duration, a, b)
    ):
        mapped = np.lib.format.open_memmap(
            Path(spill_dir) / f"{name}.npy",
            mode="w+",
            dtype=TRACE_COLUMN_DTYPES[name],
            shape=(len(column),),
        )
        mapped[:] = column
        mapped.flush()
        del mapped
    store = MmapContactStore.open(spill_dir)
    if not persistent:
        store.source = None  # the files are transient; not re-openable
        _SPILL_DIRS.add(spill_dir)
        weakref.finalize(store, _release_spill_dir, spill_dir)
    return store


ContactStore = Union[ObjectContactStore, ColumnarContactStore]


def make_contact_store(
    backend: Union[str, None], sorted_contacts: List
) -> ContactStore:
    """Build a store from an already-sorted :class:`Contact` list."""
    backend = resolve_trace_backend(backend)
    if backend == "object":
        return ObjectContactStore(sorted_contacts)
    store = ColumnarContactStore.from_contacts(sorted_contacts)
    if backend == "mmap":
        return spill_columns_to_mmap(
            store.start, store.duration, store.a, store.b
        )
    return store


def store_from_arrays(
    backend: Union[str, None],
    start: Sequence[float],
    duration: Sequence[float],
    a: Sequence[int],
    b: Sequence[int],
    validate: bool = True,
    assume_sorted: bool = False,
) -> ContactStore:
    """Build a store directly from columns, never touching Contact objects
    on the columnar path.

    ``validate`` applies the :meth:`Contact.make` rules vectorised:
    positive durations, distinct endpoints, canonical (min, max) node
    order.  ``assume_sorted`` skips the stable sort by start time.
    """
    start, duration, a, b = _as_columns(start, duration, a, b)
    if not (len(start) == len(duration) == len(a) == len(b)):
        raise ValueError("trace columns must have equal lengths")
    if validate and len(start):
        if not (duration > 0).all():
            bad = float(duration[np.argmin(duration)])
            raise ValueError(f"contact duration must be > 0, got {bad}")
        equal = a == b
        if equal.any():
            node = int(a[np.argmax(equal)])
            raise ValueError(
                f"contact endpoints must differ, got {node} == {node}"
            )
        swap = a > b
        if swap.any():
            a, b = np.where(swap, b, a), np.where(swap, a, b)
    if not assume_sorted and len(start):
        order = np.argsort(start, kind="stable")
        start = start[order]
        duration = duration[order]
        a = a[order]
        b = b[order]
    backend = resolve_trace_backend(backend)
    if backend == "object":
        return ObjectContactStore.from_arrays(start, duration, a, b)
    if backend == "mmap":
        return spill_columns_to_mmap(start, duration, a, b)
    return ColumnarContactStore(start, duration, a, b)
