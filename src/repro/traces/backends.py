"""Storage backends for :class:`~repro.traces.model.ContactTrace`.

The trace model describes *what* a contact sequence is; this module
provides the *storage* behind it through a seam that mirrors
:mod:`repro.core.backends`:

* ``object`` — the original representation: a time-sorted Python list
  of frozen :class:`~repro.traces.model.Contact` dataclasses.  Cheap
  for small traces and maximally debuggable, but costs a few hundred
  bytes and a couple of microseconds *per contact*.
* ``columnar`` — a struct-of-arrays layout: four parallel numpy
  vectors (``start``, ``duration``, ``a``, ``b``).  Storage is 32
  bytes per contact, time slicing is a zero-copy ``searchsorted``
  view, and bulk consumers (the simulator's vectorised accounting
  path, trace statistics) operate on the columns directly.
  :class:`Contact` objects are materialised lazily, one at a time,
  only when somebody actually indexes or iterates the trace.

Both backends are **observationally identical**: they hold the same
contacts in the same order with the same IEEE-754 start/duration
values, so slices, statistics, and full simulation runs agree exactly
(a Hypothesis property test pins this down).  Select the default
backend process-wide with the ``BSUB_TRACE_BACKEND`` environment
variable or per trace with the ``backend=`` constructor argument.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Sequence, Set, Tuple, Union

import numpy as np

__all__ = [
    "TRACE_BACKENDS",
    "TRACE_BACKEND_ENV_VAR",
    "default_trace_backend",
    "resolve_trace_backend",
    "make_contact_store",
    "store_from_arrays",
    "ObjectContactStore",
    "ColumnarContactStore",
]

#: Environment variable overriding the process-wide default backend.
TRACE_BACKEND_ENV_VAR = "BSUB_TRACE_BACKEND"

#: The recognised trace-backend names.
TRACE_BACKENDS = ("object", "columnar")


def default_trace_backend() -> str:
    """The process-wide default backend (``columnar`` unless overridden)."""
    backend = os.environ.get(TRACE_BACKEND_ENV_VAR, "columnar")
    if backend not in TRACE_BACKENDS:
        raise ValueError(
            f"{TRACE_BACKEND_ENV_VAR}={backend!r} is not a valid trace "
            f"backend; expected one of {TRACE_BACKENDS}"
        )
    return backend


def resolve_trace_backend(backend: Union[str, None]) -> str:
    """Normalise a ``backend=`` argument (``None`` -> the default)."""
    if backend is None:
        return default_trace_backend()
    if backend not in TRACE_BACKENDS:
        raise ValueError(
            f"unknown trace backend {backend!r}; "
            f"expected one of {TRACE_BACKENDS}"
        )
    return backend


def _as_columns(
    start, duration, a, b
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Coerce the four column inputs to the canonical dtypes."""
    return (
        np.ascontiguousarray(start, dtype=np.float64),
        np.ascontiguousarray(duration, dtype=np.float64),
        np.ascontiguousarray(a, dtype=np.int64),
        np.ascontiguousarray(b, dtype=np.int64),
    )


class ObjectContactStore:
    """The original list-of-:class:`Contact` storage.

    The list must already be sorted by start time (stable); the store
    never re-sorts.
    """

    __slots__ = ("_contacts", "_columns")

    backend = "object"

    def __init__(self, contacts: List):
        self._contacts = contacts
        self._columns = None

    @classmethod
    def from_arrays(cls, start, duration, a, b) -> "ObjectContactStore":
        """Materialise one :class:`Contact` per row (rows pre-sorted)."""
        from .model import Contact  # circular at import time only

        return cls(
            [
                Contact(s, d, na, nb)
                for s, d, na, nb in zip(
                    start.tolist(), duration.tolist(), a.tolist(), b.tolist()
                )
            ]
        )

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._contacts)

    def __getitem__(self, index):
        return self._contacts[index]

    def __iter__(self) -> Iterator:
        return iter(self._contacts)

    # -- bulk views ---------------------------------------------------------

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(start, duration, a, b) numpy columns (built once, cached)."""
        if self._columns is None:
            contacts = self._contacts
            n = len(contacts)
            self._columns = (
                np.fromiter((c.start for c in contacts), np.float64, count=n),
                np.fromiter((c.duration for c in contacts), np.float64, count=n),
                np.fromiter((c.a for c in contacts), np.int64, count=n),
                np.fromiter((c.b for c in contacts), np.int64, count=n),
            )
        return self._columns

    def start_times(self) -> List[float]:
        return [c.start for c in self._contacts]

    def end_time(self) -> float:
        return max((c.end for c in self._contacts), default=0.0)

    def node_ids(self) -> Set[int]:
        seen: Set[int] = set()
        for c in self._contacts:
            seen.add(c.a)
            seen.add(c.b)
        return seen

    # -- transforms -----------------------------------------------------------

    def time_slice(self, start: float, end: float) -> "ObjectContactStore":
        """Contacts *starting* within [start, end)."""
        return ObjectContactStore(
            [c for c in self._contacts if start <= c.start < end]
        )

    def upto(self, horizon: float) -> "ObjectContactStore":
        return ObjectContactStore(
            [c for c in self._contacts if c.start < horizon]
        )

    def shifted(self, offset: float) -> "ObjectContactStore":
        from .model import Contact

        return ObjectContactStore(
            [
                Contact(c.start + offset, c.duration, c.a, c.b)
                for c in self._contacts
            ]
        )

    # -- per-node views -------------------------------------------------------

    def contacts_of(self, node: int) -> List:
        return [c for c in self._contacts if c.involves(node)]

    def neighbour_ids(self, node: int) -> Set[int]:
        return {c.peer_of(node) for c in self.contacts_of(node)}

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        counts: Dict[Tuple[int, int], int] = {}
        for c in self._contacts:
            counts[c.pair] = counts.get(c.pair, 0) + 1
        return counts


class ColumnarContactStore:
    """Struct-of-arrays contact storage, sorted by start time.

    Rows are identified by position; a :class:`Contact` is only built
    when a row is individually addressed.  All four columns may be
    views into a parent store's arrays (time slices are zero-copy).
    """

    __slots__ = ("start", "duration", "a", "b")

    backend = "columnar"

    def __init__(
        self,
        start: np.ndarray,
        duration: np.ndarray,
        a: np.ndarray,
        b: np.ndarray,
    ):
        self.start, self.duration, self.a, self.b = _as_columns(
            start, duration, a, b
        )
        if not (
            len(self.start) == len(self.duration) == len(self.a) == len(self.b)
        ):
            raise ValueError("trace columns must have equal lengths")

    @classmethod
    def from_contacts(cls, contacts: List) -> "ColumnarContactStore":
        """Pack a pre-sorted :class:`Contact` list into columns."""
        n = len(contacts)
        return cls(
            np.fromiter((c.start for c in contacts), np.float64, count=n),
            np.fromiter((c.duration for c in contacts), np.float64, count=n),
            np.fromiter((c.a for c in contacts), np.int64, count=n),
            np.fromiter((c.b for c in contacts), np.int64, count=n),
        )

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.start)

    def _materialise(self, i: int):
        from .model import Contact

        return Contact(
            float(self.start[i]),
            float(self.duration[i]),
            int(self.a[i]),
            int(self.b[i]),
        )

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialise(i) for i in range(*index.indices(len(self)))]
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"contact index {index} out of range")
        return self._materialise(index)

    def __iter__(self) -> Iterator:
        from .model import Contact

        for row in zip(
            self.start.tolist(),
            self.duration.tolist(),
            self.a.tolist(),
            self.b.tolist(),
        ):
            yield Contact(*row)

    # -- bulk views ---------------------------------------------------------

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The (start, duration, a, b) columns themselves (no copy)."""
        return (self.start, self.duration, self.a, self.b)

    def start_times(self) -> List[float]:
        return self.start.tolist()

    def end_time(self) -> float:
        if not len(self.start):
            return 0.0
        return float(np.max(self.start + self.duration))

    def node_ids(self) -> Set[int]:
        if not len(self.a):
            return set()
        return set(np.unique(np.concatenate((self.a, self.b))).tolist())

    # -- transforms -----------------------------------------------------------

    def time_slice(self, start: float, end: float) -> "ColumnarContactStore":
        """Zero-copy view of the contacts *starting* within [start, end)."""
        lo = int(np.searchsorted(self.start, start, side="left"))
        hi = int(np.searchsorted(self.start, end, side="left"))
        return ColumnarContactStore(
            self.start[lo:hi], self.duration[lo:hi], self.a[lo:hi], self.b[lo:hi]
        )

    def upto(self, horizon: float) -> "ColumnarContactStore":
        hi = int(np.searchsorted(self.start, horizon, side="left"))
        return ColumnarContactStore(
            self.start[:hi], self.duration[:hi], self.a[:hi], self.b[:hi]
        )

    def shifted(self, offset: float) -> "ColumnarContactStore":
        return ColumnarContactStore(
            self.start + offset, self.duration, self.a, self.b
        )

    # -- per-node views -------------------------------------------------------

    def contacts_of(self, node: int) -> List:
        mask = (self.a == node) | (self.b == node)
        indices = np.flatnonzero(mask)
        return [self._materialise(int(i)) for i in indices]

    def neighbour_ids(self, node: int) -> Set[int]:
        peers = np.concatenate(
            (self.b[self.a == node], self.a[self.b == node])
        )
        return set(np.unique(peers).tolist())

    def pair_counts(self) -> Dict[Tuple[int, int], int]:
        if not len(self.a):
            return {}
        pairs = np.stack((self.a, self.b), axis=1)
        unique, counts = np.unique(pairs, axis=0, return_counts=True)
        return {
            (int(pa), int(pb)): int(count)
            for (pa, pb), count in zip(unique.tolist(), counts.tolist())
        }


ContactStore = Union[ObjectContactStore, ColumnarContactStore]


def make_contact_store(
    backend: Union[str, None], sorted_contacts: List
) -> ContactStore:
    """Build a store from an already-sorted :class:`Contact` list."""
    if resolve_trace_backend(backend) == "columnar":
        return ColumnarContactStore.from_contacts(sorted_contacts)
    return ObjectContactStore(sorted_contacts)


def store_from_arrays(
    backend: Union[str, None],
    start: Sequence[float],
    duration: Sequence[float],
    a: Sequence[int],
    b: Sequence[int],
    validate: bool = True,
    assume_sorted: bool = False,
) -> ContactStore:
    """Build a store directly from columns, never touching Contact objects
    on the columnar path.

    ``validate`` applies the :meth:`Contact.make` rules vectorised:
    positive durations, distinct endpoints, canonical (min, max) node
    order.  ``assume_sorted`` skips the stable sort by start time.
    """
    start, duration, a, b = _as_columns(start, duration, a, b)
    if not (len(start) == len(duration) == len(a) == len(b)):
        raise ValueError("trace columns must have equal lengths")
    if validate and len(start):
        if not (duration > 0).all():
            bad = float(duration[np.argmin(duration)])
            raise ValueError(f"contact duration must be > 0, got {bad}")
        equal = a == b
        if equal.any():
            node = int(a[np.argmax(equal)])
            raise ValueError(
                f"contact endpoints must differ, got {node} == {node}"
            )
        swap = a > b
        if swap.any():
            a, b = np.where(swap, b, a), np.where(swap, a, b)
    if not assume_sorted and len(start):
        order = np.argsort(start, kind="stable")
        start = start[order]
        duration = duration[order]
        a = a[order]
        b = b[order]
    if resolve_trace_backend(backend) == "columnar":
        return ColumnarContactStore(start, duration, a, b)
    return ObjectContactStore.from_arrays(start, duration, a, b)
