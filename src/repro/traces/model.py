"""Contact-trace data model.

The evaluation substrate of the paper is *trace-driven* simulation: the
network's connectivity is a recorded (or synthesised) sequence of
pairwise Bluetooth contacts.  A :class:`Contact` is an undirected
meeting between two nodes with a start time and a duration; a
:class:`ContactTrace` is a time-sorted sequence of contacts plus the
node population.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Contact", "ContactTrace"]


@dataclass(frozen=True, order=True)
class Contact:
    """One pairwise contact.

    Attributes
    ----------
    start:
        Contact start time in seconds from trace origin.
    duration:
        Contact duration in seconds (> 0); with the effective bandwidth
        this bounds the bytes transferable during the meeting.
    a, b:
        Node identifiers (ints).  Contacts are undirected; the pair is
        stored in canonical (min, max) order by :meth:`make`.
    """

    start: float
    duration: float
    a: int
    b: int

    @staticmethod
    def make(start: float, duration: float, a: int, b: int) -> "Contact":
        """Create a contact with validation and canonical node order."""
        if duration <= 0:
            raise ValueError(f"contact duration must be > 0, got {duration}")
        if a == b:
            raise ValueError(f"contact endpoints must differ, got {a} == {b}")
        if a > b:
            a, b = b, a
        return Contact(float(start), float(duration), a, b)

    @property
    def end(self) -> float:
        """Contact end time."""
        return self.start + self.duration

    @property
    def pair(self) -> Tuple[int, int]:
        """The (min, max) node pair."""
        return (self.a, self.b)

    def involves(self, node: int) -> bool:
        return node == self.a or node == self.b

    def peer_of(self, node: int) -> int:
        """The other endpoint of the contact."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} is not part of this contact")


class ContactTrace:
    """A time-sorted sequence of contacts over a fixed node population.

    Parameters
    ----------
    contacts:
        Any iterable of :class:`Contact`; sorted by start time on
        construction.
    nodes:
        The node population.  Defaults to the union of contact
        endpoints, but can be wider (nodes that never meet anyone still
        exist and count against delivery ratios).
    name:
        Human-readable trace label (shows up in reports).
    """

    def __init__(
        self,
        contacts: Iterable[Contact],
        nodes: Optional[Iterable[int]] = None,
        name: str = "trace",
    ):
        self._contacts: List[Contact] = sorted(contacts, key=lambda c: c.start)
        seen: Set[int] = set()
        for c in self._contacts:
            seen.add(c.a)
            seen.add(c.b)
        if nodes is not None:
            node_set = set(nodes)
            missing = seen - node_set
            if missing:
                raise ValueError(
                    f"contacts reference nodes outside the population: "
                    f"{sorted(missing)[:5]}…"
                )
        else:
            node_set = seen
        self._nodes: Tuple[int, ...] = tuple(sorted(node_set))
        self.name = name

    # -- basic accessors ------------------------------------------------------

    @property
    def contacts(self) -> Sequence[Contact]:
        return self._contacts

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_contacts(self) -> int:
        return len(self._contacts)

    @property
    def start_time(self) -> float:
        """Start of the first contact (0.0 for an empty trace)."""
        return self._contacts[0].start if self._contacts else 0.0

    @property
    def end_time(self) -> float:
        """Latest contact end (0.0 for an empty trace)."""
        return max((c.end for c in self._contacts), default=0.0)

    @property
    def duration(self) -> float:
        """Trace time span in seconds."""
        return self.end_time - self.start_time if self._contacts else 0.0

    @property
    def duration_days(self) -> float:
        return self.duration / 86_400.0

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    # -- transforms -------------------------------------------------------------

    def slice(self, start: float, end: float, name: Optional[str] = None) -> "ContactTrace":
        """The sub-trace of contacts *starting* within [start, end)."""
        if end < start:
            raise ValueError(f"slice end {end} precedes start {start}")
        subset = [c for c in self._contacts if start <= c.start < end]
        return ContactTrace(
            subset, nodes=self._nodes, name=name or f"{self.name}[{start},{end})"
        )

    def first_days(self, days: float, name: Optional[str] = None) -> "ContactTrace":
        """The sub-trace covering the first *days* days."""
        horizon = self.start_time + days * 86_400.0
        return ContactTrace(
            (c for c in self._contacts if c.start < horizon),
            nodes=self._nodes,
            name=name or f"{self.name}[first {days:g}d]",
        )

    def shifted(self, offset: float) -> "ContactTrace":
        """The same trace with all times shifted by *offset*."""
        return ContactTrace(
            (Contact(c.start + offset, c.duration, c.a, c.b) for c in self._contacts),
            nodes=self._nodes,
            name=self.name,
        )

    def normalised(self) -> "ContactTrace":
        """Shift so the first contact starts at t = 0."""
        return self.shifted(-self.start_time)

    # -- per-node views ------------------------------------------------------------

    def contacts_of(self, node: int) -> List[Contact]:
        """All contacts involving *node*, in time order."""
        return [c for c in self._contacts if c.involves(node)]

    def neighbours(self, node: int) -> Set[int]:
        """Distinct peers *node* ever meets."""
        return {c.peer_of(node) for c in self.contacts_of(node)}

    def pair_contact_counts(self) -> Dict[Tuple[int, int], int]:
        """Number of contacts per (min, max) node pair."""
        counts: Dict[Tuple[int, int], int] = {}
        for c in self._contacts:
            counts[c.pair] = counts.get(c.pair, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (
            f"ContactTrace({self.name!r}, nodes={self.num_nodes}, "
            f"contacts={self.num_contacts}, days={self.duration_days:.2f})"
        )
