"""Contact-trace data model.

The evaluation substrate of the paper is *trace-driven* simulation: the
network's connectivity is a recorded (or synthesised) sequence of
pairwise Bluetooth contacts.  A :class:`Contact` is an undirected
meeting between two nodes with a start time and a duration; a
:class:`ContactTrace` is a time-sorted sequence of contacts plus the
node population.

Storage lives behind the backend seam in
:mod:`repro.traces.backends`: the default ``columnar`` backend keeps
the trace as four numpy columns (32 bytes per contact, zero-copy time
slicing) and materialises :class:`Contact` objects lazily; the
``object`` backend keeps the original list-of-dataclasses layout.
Both expose identical behaviour — pick with ``BSUB_TRACE_BACKEND`` or
the ``backend=`` argument.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from .backends import (
    ContactStore,
    make_contact_store,
    store_from_arrays,
)

__all__ = ["Contact", "ContactTrace"]


@dataclass(frozen=True, order=True)
class Contact:
    """One pairwise contact.

    Attributes
    ----------
    start:
        Contact start time in seconds from trace origin.
    duration:
        Contact duration in seconds (> 0); with the effective bandwidth
        this bounds the bytes transferable during the meeting.
    a, b:
        Node identifiers (ints).  Contacts are undirected; the pair is
        stored in canonical (min, max) order by :meth:`make`.
    """

    start: float
    duration: float
    a: int
    b: int

    @staticmethod
    def make(start: float, duration: float, a: int, b: int) -> "Contact":
        """Create a contact with validation and canonical node order."""
        if duration <= 0:
            raise ValueError(f"contact duration must be > 0, got {duration}")
        if a == b:
            raise ValueError(f"contact endpoints must differ, got {a} == {b}")
        if a > b:
            a, b = b, a
        return Contact(float(start), float(duration), a, b)

    @property
    def end(self) -> float:
        """Contact end time."""
        return self.start + self.duration

    @property
    def pair(self) -> Tuple[int, int]:
        """The (min, max) node pair."""
        return (self.a, self.b)

    def involves(self, node: int) -> bool:
        return node == self.a or node == self.b

    def peer_of(self, node: int) -> int:
        """The other endpoint of the contact."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ValueError(f"node {node} is not part of this contact")


class ContactTrace:
    """A time-sorted sequence of contacts over a fixed node population.

    Parameters
    ----------
    contacts:
        Any iterable of :class:`Contact`; sorted by start time on
        construction (stable, so equal-start contacts keep their
        relative order).
    nodes:
        The node population.  Defaults to the union of contact
        endpoints, but can be wider (nodes that never meet anyone still
        exist and count against delivery ratios).
    name:
        Human-readable trace label (shows up in reports).
    backend:
        Trace storage backend, ``"columnar"`` or ``"object"``
        (default: the ``BSUB_TRACE_BACKEND`` environment variable,
        falling back to ``columnar``).
    """

    def __init__(
        self,
        contacts: Iterable[Contact],
        nodes: Optional[Iterable[int]] = None,
        name: str = "trace",
        backend: Optional[str] = None,
    ):
        store = make_contact_store(
            backend, sorted(contacts, key=lambda c: c.start)
        )
        self._init_from_store(store, nodes, name)

    def _init_from_store(
        self,
        store: ContactStore,
        nodes: Optional[Iterable[int]],
        name: str,
        check_nodes: bool = True,
    ) -> None:
        self._store = store
        if nodes is not None:
            node_set = set(nodes)
            if check_nodes:
                missing = store.node_ids() - node_set
                if missing:
                    raise ValueError(
                        f"contacts reference nodes outside the population: "
                        f"{sorted(missing)[:5]}…"
                    )
        else:
            node_set = store.node_ids()
        self._nodes: Tuple[int, ...] = tuple(sorted(node_set))
        self.name = name

    @classmethod
    def from_arrays(
        cls,
        start: Sequence[float],
        duration: Sequence[float],
        a: Sequence[int],
        b: Sequence[int],
        nodes: Optional[Iterable[int]] = None,
        name: str = "trace",
        backend: Optional[str] = None,
        validate: bool = True,
        assume_sorted: bool = False,
    ) -> "ContactTrace":
        """Build a trace straight from columns — the streaming path.

        Loaders and generators hand over four parallel sequences
        (start, duration, a, b) and never build a Python object per
        row.  ``validate`` applies :meth:`Contact.make`'s rules
        vectorised and checks the endpoints against *nodes*; passing
        ``validate=False`` declares the columns trusted by construction
        (the in-tree loaders and the synthetic generator qualify) and
        skips both.  ``assume_sorted`` skips the stable start-time
        sort.
        """
        store = store_from_arrays(
            backend, start, duration, a, b,
            validate=validate, assume_sorted=assume_sorted,
        )
        self = cls.__new__(cls)
        self._init_from_store(store, nodes, name, check_nodes=validate)
        return self

    @classmethod
    def _wrap(
        cls, store: ContactStore, nodes: Tuple[int, ...], name: str
    ) -> "ContactTrace":
        """Internal: adopt a derived store without re-validating."""
        self = cls.__new__(cls)
        self._store = store
        self._nodes = nodes
        self.name = name
        return self

    # -- basic accessors ------------------------------------------------------

    @property
    def backend(self) -> str:
        """The storage backend in use (``"object"`` or ``"columnar"``)."""
        return self._store.backend

    @property
    def contacts(self) -> Sequence[Contact]:
        return self._store

    @property
    def store(self) -> ContactStore:
        """The raw storage backend (columns for bulk consumers)."""
        return self._store

    @property
    def nodes(self) -> Tuple[int, ...]:
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_contacts(self) -> int:
        return len(self._store)

    @property
    def start_time(self) -> float:
        """Start of the first contact (0.0 for an empty trace)."""
        return self._store[0].start if len(self._store) else 0.0

    @property
    def end_time(self) -> float:
        """Latest contact end (0.0 for an empty trace)."""
        return self._store.end_time()

    @property
    def duration(self) -> float:
        """Trace time span in seconds."""
        return self.end_time - self.start_time if len(self._store) else 0.0

    @property
    def duration_days(self) -> float:
        return self.duration / 86_400.0

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._store)

    # -- transforms -------------------------------------------------------------

    def slice(self, start: float, end: float, name: Optional[str] = None) -> "ContactTrace":
        """The sub-trace of contacts *starting* within [start, end)."""
        if end < start:
            raise ValueError(f"slice end {end} precedes start {start}")
        return ContactTrace._wrap(
            self._store.time_slice(start, end),
            self._nodes,
            name or f"{self.name}[{start},{end})",
        )

    def first_days(self, days: float, name: Optional[str] = None) -> "ContactTrace":
        """The sub-trace covering the first *days* days."""
        horizon = self.start_time + days * 86_400.0
        return ContactTrace._wrap(
            self._store.upto(horizon),
            self._nodes,
            name or f"{self.name}[first {days:g}d]",
        )

    def shifted(self, offset: float) -> "ContactTrace":
        """The same trace with all times shifted by *offset*."""
        return ContactTrace._wrap(
            self._store.shifted(offset), self._nodes, self.name
        )

    def normalised(self) -> "ContactTrace":
        """Shift so the first contact starts at t = 0."""
        return self.shifted(-self.start_time)

    # -- per-node views ------------------------------------------------------------

    def contacts_of(self, node: int) -> List[Contact]:
        """All contacts involving *node*, in time order."""
        return self._store.contacts_of(node)

    def neighbours(self, node: int) -> Set[int]:
        """Distinct peers *node* ever meets."""
        return self._store.neighbour_ids(node)

    def pair_contact_counts(self) -> Dict[Tuple[int, int], int]:
        """Number of contacts per (min, max) node pair."""
        return self._store.pair_counts()

    def __repr__(self) -> str:
        return (
            f"ContactTrace({self.name!r}, nodes={self.num_nodes}, "
            f"contacts={self.num_contacts}, days={self.duration_days:.2f})"
        )
