"""Loaders for real contact-trace files.

Users who have registered for CRAWDAD access can run every experiment
on the paper's actual traces.  Two on-disk formats are supported:

* **CSV** — one contact per line, ``node_a,node_b,start,end`` (times in
  seconds; a header line is skipped automatically).  This is the common
  interchange format for the Haggle iMote sightings once flattened.
* **Reality-Mining proximity dumps** — whitespace-separated
  ``node_a node_b start end`` lines, ``#`` comments allowed.

Both produce :class:`~repro.traces.model.ContactTrace` objects that
plug straight into the simulator.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Union

from .model import Contact, ContactTrace

__all__ = ["load_csv_trace", "load_whitespace_trace", "NodeRelabeller"]


class NodeRelabeller:
    """Maps arbitrary node labels onto dense integer ids.

    Trace files label nodes with MAC addresses or arbitrary ids; the
    simulator wants dense ``0..n-1`` ints so per-node state can live in
    lists.
    """

    def __init__(self):
        self._mapping: Dict[str, int] = {}

    def __getitem__(self, label: str) -> int:
        label = label.strip()
        if label not in self._mapping:
            self._mapping[label] = len(self._mapping)
        return self._mapping[label]

    @property
    def mapping(self) -> Dict[str, int]:
        """label -> dense id (insertion order)."""
        return dict(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)


def _build_trace(rows: List[List[str]], name: str) -> ContactTrace:
    relabel = NodeRelabeller()
    contacts = []
    for lineno, row in enumerate(rows, start=1):
        if len(row) != 4:
            raise ValueError(
                f"line {lineno}: expected 4 fields (a, b, start, end), "
                f"got {len(row)}"
            )
        a_label, b_label, start_s, end_s = row
        start, end = float(start_s), float(end_s)
        if end <= start:
            # Zero/negative-length sightings occur in real logs; give
            # them a nominal 1-second duration rather than dropping the
            # meeting entirely.
            end = start + 1.0
        contacts.append(
            Contact.make(start, end - start, relabel[a_label], relabel[b_label])
        )
    return ContactTrace(contacts, name=name)


def load_csv_trace(path: Union[str, Path], name: str = "") -> ContactTrace:
    """Load a ``a,b,start,end`` CSV contact trace.

    A first line whose time fields do not parse as numbers is treated
    as a header and skipped.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        rows = [row for row in csv.reader(fh) if row]
    if rows and len(rows[0]) == 4:
        try:
            float(rows[0][2]), float(rows[0][3])
        except ValueError:
            rows = rows[1:]
    return _build_trace(rows, name or path.stem)


def load_whitespace_trace(path: Union[str, Path], name: str = "") -> ContactTrace:
    """Load a whitespace-separated ``a b start end`` contact trace.

    Lines starting with ``#`` and blank lines are ignored.
    """
    path = Path(path)
    rows: List[List[str]] = []
    with path.open() as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            rows.append(stripped.split())
    return _build_trace(rows, name or path.stem)
