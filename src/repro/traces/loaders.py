"""Streaming loaders for real contact-trace files.

Users who have registered for CRAWDAD access can run every experiment
on the paper's actual traces.  Two on-disk formats are supported:

* **CSV** — one contact per line, ``node_a,node_b,start,end`` (times in
  seconds; a header line is skipped automatically).  This is the common
  interchange format for the Haggle iMote sightings once flattened.
* **Reality-Mining proximity dumps** — whitespace-separated
  ``node_a node_b start end`` lines, ``#`` comments allowed.

Both produce :class:`~repro.traces.model.ContactTrace` objects that
plug straight into the simulator.

The loaders are *streaming*: rows are validated one at a time and
appended to compact ``array.array`` columns, so a million-contact file
costs ~32 bytes of resident memory per contact while loading and never
builds a Python :class:`Contact` per row.  The finished columns are
handed to :meth:`ContactTrace.from_arrays`, which sorts them once and
wraps them in the configured trace backend.
"""

from __future__ import annotations

from array import array
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

import csv

from .model import ContactTrace

__all__ = ["load_csv_trace", "load_whitespace_trace", "NodeRelabeller"]


class NodeRelabeller:
    """Maps arbitrary node labels onto dense integer ids.

    Trace files label nodes with MAC addresses or arbitrary ids; the
    simulator wants dense ``0..n-1`` ints so per-node state can live in
    lists.
    """

    def __init__(self):
        self._mapping: Dict[str, int] = {}

    def __getitem__(self, label: str) -> int:
        label = label.strip()
        if label not in self._mapping:
            self._mapping[label] = len(self._mapping)
        return self._mapping[label]

    @property
    def mapping(self) -> Dict[str, int]:
        """label -> dense id (insertion order)."""
        return dict(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)


def _build_trace(
    rows: Iterable[List[str]],
    name: str,
    backend: Optional[str] = None,
) -> ContactTrace:
    """Stream rows into columnar storage, one validated row at a time."""
    relabel = NodeRelabeller()
    starts = array("d")
    durations = array("d")
    a_ids = array("q")
    b_ids = array("q")
    for lineno, row in enumerate(rows, start=1):
        if len(row) != 4:
            raise ValueError(
                f"line {lineno}: expected 4 fields (a, b, start, end), "
                f"got {len(row)}"
            )
        a_label, b_label, start_s, end_s = row
        start, end = float(start_s), float(end_s)
        if end <= start:
            # Zero/negative-length sightings occur in real logs; give
            # them a nominal 1-second duration rather than dropping the
            # meeting entirely.
            end = start + 1.0
        a, b = relabel[a_label], relabel[b_label]
        if a == b:
            raise ValueError(f"contact endpoints must differ, got {a} == {b}")
        if a > b:
            a, b = b, a
        starts.append(start)
        durations.append(end - start)
        a_ids.append(a)
        b_ids.append(b)
    # Rows already satisfy the Contact.make invariants (positive
    # duration, distinct canonical endpoints), so skip re-validation.
    return ContactTrace.from_arrays(
        starts, durations, a_ids, b_ids, name=name,
        backend=backend, validate=False,
    )


def _csv_rows(path: Path) -> Iterator[List[str]]:
    """Non-blank CSV rows with an optional header row dropped."""
    with path.open(newline="") as fh:
        first = True
        for row in csv.reader(fh):
            if not row:
                continue
            if first:
                first = False
                # A first line whose time fields do not parse as
                # numbers is a header.
                if len(row) == 4:
                    try:
                        float(row[2]), float(row[3])
                    except ValueError:
                        continue
            yield row


def load_csv_trace(
    path: Union[str, Path],
    name: str = "",
    backend: Optional[str] = None,
) -> ContactTrace:
    """Load a ``a,b,start,end`` CSV contact trace (streamed).

    A first line whose time fields do not parse as numbers is treated
    as a header and skipped.
    """
    path = Path(path)
    return _build_trace(_csv_rows(path), name or path.stem, backend)


def _whitespace_rows(path: Path) -> Iterator[List[str]]:
    with path.open() as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield stripped.split()


def load_whitespace_trace(
    path: Union[str, Path],
    name: str = "",
    backend: Optional[str] = None,
) -> ContactTrace:
    """Load a whitespace-separated ``a b start end`` contact trace
    (streamed).

    Lines starting with ``#`` and blank lines are ignored.
    """
    path = Path(path)
    return _build_trace(_whitespace_rows(path), name or path.stem, backend)
