"""Streaming loaders for real contact-trace files.

Users who have registered for CRAWDAD access can run every experiment
on the paper's actual traces.  Two on-disk formats are supported:

* **CSV** — one contact per line, ``node_a,node_b,start,end`` (times in
  seconds; a header line is skipped automatically).  This is the common
  interchange format for the Haggle iMote sightings once flattened.
* **Reality-Mining proximity dumps** — whitespace-separated
  ``node_a node_b start end`` lines, ``#`` comments allowed.

Both produce :class:`~repro.traces.model.ContactTrace` objects that
plug straight into the simulator.

The loaders are *streaming*: rows are validated one at a time and
appended to compact ``array.array`` columns, so a million-contact file
costs ~32 bytes of resident memory per contact while loading and never
builds a Python :class:`Contact` per row.  The finished columns are
handed to :meth:`ContactTrace.from_arrays`, which sorts them once and
wraps them in the configured trace backend.

This module also defines the **trace dataset** on-disk format backing
the out-of-core ``mmap`` backend: a directory holding one ``.npy``
file per column (``start.npy``, ``duration.npy``, ``a.npy``,
``b.npy``) plus a ``meta.json`` with the contact count and node
population.  :class:`ChunkedTraceWriter` streams sorted contact chunks
into such a directory without ever holding the full trace in memory
(the ``.npy`` headers are back-patched with the final row count on
close), :func:`save_trace_dataset` spills an existing trace, and
:func:`open_trace_dataset` maps a dataset back as a
:class:`~repro.traces.model.ContactTrace` in O(1) memory.
"""

from __future__ import annotations

import json
from array import array
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

import csv

import numpy as np

from .backends import (
    TRACE_COLUMN_DTYPES,
    TRACE_COLUMN_NAMES,
    MmapContactStore,
    resolve_trace_backend,
)
from .model import ContactTrace

__all__ = [
    "load_csv_trace",
    "load_whitespace_trace",
    "NodeRelabeller",
    "ChunkedTraceWriter",
    "save_trace_dataset",
    "open_trace_dataset",
    "TRACE_DATASET_META",
]


class NodeRelabeller:
    """Maps arbitrary node labels onto dense integer ids.

    Trace files label nodes with MAC addresses or arbitrary ids; the
    simulator wants dense ``0..n-1`` ints so per-node state can live in
    lists.
    """

    def __init__(self):
        self._mapping: Dict[str, int] = {}

    def __getitem__(self, label: str) -> int:
        label = label.strip()
        if label not in self._mapping:
            self._mapping[label] = len(self._mapping)
        return self._mapping[label]

    @property
    def mapping(self) -> Dict[str, int]:
        """label -> dense id (insertion order)."""
        return dict(self._mapping)

    def __len__(self) -> int:
        return len(self._mapping)


def _build_trace(
    rows: Iterable[List[str]],
    name: str,
    backend: Optional[str] = None,
) -> ContactTrace:
    """Stream rows into columnar storage, one validated row at a time."""
    relabel = NodeRelabeller()
    starts = array("d")
    durations = array("d")
    a_ids = array("q")
    b_ids = array("q")
    for lineno, row in enumerate(rows, start=1):
        if len(row) != 4:
            raise ValueError(
                f"line {lineno}: expected 4 fields (a, b, start, end), "
                f"got {len(row)}"
            )
        a_label, b_label, start_s, end_s = row
        start, end = float(start_s), float(end_s)
        if end <= start:
            # Zero/negative-length sightings occur in real logs; give
            # them a nominal 1-second duration rather than dropping the
            # meeting entirely.
            end = start + 1.0
        a, b = relabel[a_label], relabel[b_label]
        if a == b:
            raise ValueError(f"contact endpoints must differ, got {a} == {b}")
        if a > b:
            a, b = b, a
        starts.append(start)
        durations.append(end - start)
        a_ids.append(a)
        b_ids.append(b)
    # Rows already satisfy the Contact.make invariants (positive
    # duration, distinct canonical endpoints), so skip re-validation.
    return ContactTrace.from_arrays(
        starts, durations, a_ids, b_ids, name=name,
        backend=backend, validate=False,
    )


def _csv_rows(path: Path) -> Iterator[List[str]]:
    """Non-blank CSV rows with an optional header row dropped."""
    with path.open(newline="") as fh:
        first = True
        for row in csv.reader(fh):
            if not row:
                continue
            if first:
                first = False
                # A first line whose time fields do not parse as
                # numbers is a header.
                if len(row) == 4:
                    try:
                        float(row[2]), float(row[3])
                    except ValueError:
                        continue
            yield row


def load_csv_trace(
    path: Union[str, Path],
    name: str = "",
    backend: Optional[str] = None,
) -> ContactTrace:
    """Load a ``a,b,start,end`` CSV contact trace (streamed).

    A first line whose time fields do not parse as numbers is treated
    as a header and skipped.
    """
    path = Path(path)
    return _build_trace(_csv_rows(path), name or path.stem, backend)


def _whitespace_rows(path: Path) -> Iterator[List[str]]:
    with path.open() as fh:
        for line in fh:
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            yield stripped.split()


def load_whitespace_trace(
    path: Union[str, Path],
    name: str = "",
    backend: Optional[str] = None,
) -> ContactTrace:
    """Load a whitespace-separated ``a b start end`` contact trace
    (streamed).

    Lines starting with ``#`` and blank lines are ignored.
    """
    path = Path(path)
    return _build_trace(_whitespace_rows(path), name or path.stem, backend)


# ---------------------------------------------------------------------------
# Trace datasets: the on-disk format behind the mmap backend
# ---------------------------------------------------------------------------

#: Metadata filename inside a trace dataset directory.
TRACE_DATASET_META = "meta.json"

#: Fixed total ``.npy`` header size (magic + length word + padded
#: dict).  Reserving a constant size lets the writer stream data first
#: and back-patch the final row count without moving any bytes; 128 is
#: a multiple of the required 64-byte alignment and leaves ample room
#: for any 64-bit row count.
_NPY_HEADER_SIZE = 128


def _npy_header_bytes(dtype: np.dtype, count: int) -> bytes:
    """A version-1.0 ``.npy`` header padded to ``_NPY_HEADER_SIZE``."""
    header = (
        "{'descr': %r, 'fortran_order': False, 'shape': (%d,), }"
        % (np.lib.format.dtype_to_descr(dtype), count)
    ).encode("latin1")
    magic = np.lib.format.magic(1, 0)
    pad = _NPY_HEADER_SIZE - len(magic) - 2 - len(header) - 1
    if pad < 0:
        raise ValueError(f"npy header overflows {_NPY_HEADER_SIZE} bytes")
    body = header + b" " * pad + b"\n"
    return magic + len(body).to_bytes(2, "little") + body


class ChunkedTraceWriter:
    """Stream time-sorted contact chunks into a trace dataset directory.

    Chunks are appended column-wise straight to the four ``.npy``
    files, so peak memory is one chunk regardless of trace size.  Rows
    must arrive globally sorted by start time (checked); endpoint
    canonicalisation (``a < b``) and positive durations are validated
    per chunk unless ``validate=False`` declares the producer trusted.

    Use as a context manager; the final contact count is back-patched
    into the ``.npy`` headers and ``meta.json`` is written on
    :meth:`close`.  *nodes* fixes the population explicitly (an
    ``int`` means the dense population ``0..nodes-1``); when omitted it
    is derived from the contact endpoints at open time.
    """

    def __init__(
        self,
        path: Union[str, Path],
        nodes: Union[int, Iterable[int], None] = None,
        name: Optional[str] = None,
        validate: bool = True,
    ):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.name = name or self.path.name
        self.validate = validate
        if nodes is None or isinstance(nodes, int):
            self._nodes: Union[int, List[int], None] = nodes
        else:
            self._nodes = sorted(set(nodes))
        self.num_contacts = 0
        self.end_time = 0.0
        self._last_start = -np.inf
        self._files = {
            column: (self.path / f"{column}.npy").open("wb")
            for column in TRACE_COLUMN_NAMES
        }
        for column, fh in self._files.items():
            fh.write(_npy_header_bytes(TRACE_COLUMN_DTYPES[column], 0))
        self._closed = False

    def append(self, start, duration, a, b) -> None:
        """Append one chunk of rows (four parallel 1-D sequences)."""
        if self._closed:
            raise ValueError("writer is closed")
        start = np.ascontiguousarray(start, dtype=np.float64)
        duration = np.ascontiguousarray(duration, dtype=np.float64)
        a = np.ascontiguousarray(a, dtype=np.int64)
        b = np.ascontiguousarray(b, dtype=np.int64)
        if not (len(start) == len(duration) == len(a) == len(b)):
            raise ValueError("trace columns must have equal lengths")
        if not len(start):
            return
        if self.validate:
            if not (duration > 0).all():
                bad = float(duration[np.argmin(duration)])
                raise ValueError(f"contact duration must be > 0, got {bad}")
            if (a == b).any():
                node = int(a[np.argmax(a == b)])
                raise ValueError(
                    f"contact endpoints must differ, got {node} == {node}"
                )
            swap = a > b
            if swap.any():
                a, b = np.where(swap, b, a), np.where(swap, a, b)
        first = float(start[0])
        if first < self._last_start or (
            len(start) > 1 and (np.diff(start) < 0).any()
        ):
            raise ValueError(
                "chunks must be appended in global start-time order"
            )
        for column, data in zip(
            TRACE_COLUMN_NAMES, (start, duration, a, b)
        ):
            self._files[column].write(data.tobytes())
        self.num_contacts += len(start)
        self._last_start = float(start[-1])
        self.end_time = max(self.end_time, float(np.max(start + duration)))

    def close(self) -> None:
        """Back-patch the headers and write ``meta.json``."""
        if self._closed:
            return
        self._closed = True
        for column, fh in self._files.items():
            fh.seek(0)
            fh.write(
                _npy_header_bytes(
                    TRACE_COLUMN_DTYPES[column], self.num_contacts
                )
            )
            fh.close()
        meta = {
            "format": "bsub-trace",
            "version": 1,
            "name": self.name,
            "num_contacts": self.num_contacts,
            "end_time": self.end_time,
        }
        if isinstance(self._nodes, int):
            meta["num_nodes"] = self._nodes
        elif self._nodes is not None:
            meta["nodes"] = self._nodes
        with (self.path / TRACE_DATASET_META).open("w") as fh:
            json.dump(meta, fh)
            fh.write("\n")

    def __enter__(self) -> "ChunkedTraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # leave no half-written dataset behind on error
            self._closed = True
            for fh in self._files.values():
                fh.close()

    def __del__(self):
        if not getattr(self, "_closed", True):
            self.close()


def save_trace_dataset(
    trace: ContactTrace,
    path: Union[str, Path],
    chunk_size: int = 1 << 20,
) -> Path:
    """Spill *trace* to a dataset directory, one chunk at a time."""
    path = Path(path)
    with ChunkedTraceWriter(
        path, nodes=trace.nodes, name=trace.name, validate=False
    ) as writer:
        store = trace.store
        start, duration, a, b = store.columns()
        for lo in range(0, len(store), chunk_size):
            hi = lo + chunk_size
            writer.append(
                start[lo:hi], duration[lo:hi], a[lo:hi], b[lo:hi]
            )
    return path


def _read_dataset_meta(path: Path) -> Dict:
    meta_path = path / TRACE_DATASET_META
    if not meta_path.is_file():
        return {}
    with meta_path.open() as fh:
        meta = json.load(fh)
    if meta.get("format") != "bsub-trace":
        raise ValueError(f"{meta_path}: not a bsub trace dataset")
    return meta


def open_trace_dataset(
    path: Union[str, Path],
    backend: Optional[str] = "mmap",
    name: Optional[str] = None,
    lo: int = 0,
    hi: Optional[int] = None,
) -> ContactTrace:
    """Open a trace dataset directory as a :class:`ContactTrace`.

    With the default ``mmap`` backend this is O(1) in memory and time:
    the columns are memory-mapped, not read.  ``backend="columnar"``
    or ``"object"`` materialises the (sliced) columns in RAM instead.
    ``lo``/``hi`` select a row range — the shard-worker entry point.
    """
    path = Path(path)
    meta = _read_dataset_meta(path)
    store = MmapContactStore.open(path, lo=lo, hi=hi)
    backend = resolve_trace_backend(backend)
    if backend == "columnar":
        store = store.materialised()
    elif backend == "object":
        from .backends import ObjectContactStore

        store = ObjectContactStore.from_arrays(*store.columns())
    if "num_nodes" in meta:
        nodes = tuple(range(int(meta["num_nodes"])))
    elif "nodes" in meta:
        nodes = tuple(int(n) for n in meta["nodes"])
    else:
        nodes = tuple(sorted(store.node_ids()))
    return ContactTrace._wrap(
        store, nodes, name or meta.get("name") or path.name
    )
