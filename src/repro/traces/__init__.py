"""Contact-trace substrate: model, synthetic generation, loaders, stats."""

from .loaders import NodeRelabeller, load_csv_trace, load_whitespace_trace
from .mobility import MobilityConfig, simulate_mobility
from .model import Contact, ContactTrace
from .stats import TraceStats, compute_stats, inter_contact_times
from .synthetic import (
    CAMPUS_PROFILE,
    CONFERENCE_PROFILE,
    FLAT_PROFILE,
    DiurnalProfile,
    SyntheticTraceConfig,
    generate_trace,
    haggle_like,
    mit_reality_like,
)

__all__ = [
    "CAMPUS_PROFILE",
    "CONFERENCE_PROFILE",
    "FLAT_PROFILE",
    "Contact",
    "ContactTrace",
    "DiurnalProfile",
    "NodeRelabeller",
    "SyntheticTraceConfig",
    "TraceStats",
    "compute_stats",
    "generate_trace",
    "haggle_like",
    "inter_contact_times",
    "load_csv_trace",
    "load_whitespace_trace",
    "MobilityConfig",
    "simulate_mobility",
    "mit_reality_like",
]
