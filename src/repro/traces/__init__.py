"""Contact-trace substrate: model, synthetic generation, loaders, stats."""

from .loaders import (
    ChunkedTraceWriter,
    NodeRelabeller,
    load_csv_trace,
    load_whitespace_trace,
    open_trace_dataset,
    save_trace_dataset,
)
from .mobility import MobilityConfig, simulate_mobility
from .model import Contact, ContactTrace
from .stats import TraceStats, compute_stats, inter_contact_times
from .synthetic import (
    CAMPUS_PROFILE,
    CONFERENCE_PROFILE,
    FLAT_PROFILE,
    CityTraceConfig,
    DiurnalProfile,
    SyntheticTraceConfig,
    generate_city_trace,
    generate_trace,
    haggle_like,
    mit_reality_like,
)

__all__ = [
    "CAMPUS_PROFILE",
    "CONFERENCE_PROFILE",
    "FLAT_PROFILE",
    "ChunkedTraceWriter",
    "CityTraceConfig",
    "Contact",
    "ContactTrace",
    "DiurnalProfile",
    "generate_city_trace",
    "NodeRelabeller",
    "open_trace_dataset",
    "save_trace_dataset",
    "SyntheticTraceConfig",
    "TraceStats",
    "compute_stats",
    "generate_trace",
    "haggle_like",
    "inter_contact_times",
    "load_csv_trace",
    "load_whitespace_trace",
    "MobilityConfig",
    "simulate_mobility",
    "mit_reality_like",
]
