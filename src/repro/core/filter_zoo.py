"""The pluggable filter zoo: registry, spec parsing, construction, wire.

One place that knows every relay-filter implementation the reproduction
ships.  Each backend is registered as a :class:`FilterBackendSpec`
keyed by a short name, selectable end-to-end via a *filter spec*
string — ``"name"`` or ``"name:param=value,param=value"`` — accepted by
``--filter`` on the CLI, ``ExperimentSpec.filter_spec``, and
``BsubConfig.filter_spec``:

========== ===========================================================
``dict``    single TCBF on the dict counter store
``array``   single TCBF on the dense array store (the default relay)
``multi``   Sec. VI-C/VI-D optimal multi-TCBF collection; geometry from
            the Eq. 9–10 planner (``mem=``/``keys=`` params) or an
            explicit ``threshold=``/``max=`` override
``retouched`` Retouched TCBF (Donnet et al.): ``clear=3+17+42`` lists
            the bit positions scrubbed after every mutation
``countbf`` countBF-style 2D counting grid (``rows=`` param)
========== ===========================================================

The conformance harness (``tests/core/test_filter_contract.py``)
parametrizes over :func:`registered_backends`, so registering a new
backend here automatically subjects it to the full contract suite, the
registry-driven micro-benchmarks, and the ``BENCH_filters.json``
accuracy/space/speed matrix — adding filter #6 is a one-file diff plus
one registry entry.

The zoo also defines a tagged wire envelope (:func:`encode_filter` /
:func:`decode_filter`) so any registered filter round-trips through
bytes using the Sec. VI-C compact forms underneath.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .allocation import TCBFCollection, plan_allocation
from .countbf import DEFAULT_ROWS, CountBF2D
from .hashing import DEFAULT_SEED, HashFamily
from .retouched import RetouchedTCBF
from .serialization import decode_tcbf, encode_tcbf
from .tcbf import DEFAULT_INITIAL_VALUE, TemporalCountingBloomFilter

__all__ = [
    "FilterBackendSpec",
    "FILTER_BACKENDS",
    "registered_backends",
    "parse_filter_spec",
    "make_relay_filter",
    "load_keys",
    "encode_filter",
    "decode_filter",
]

#: Default Eq. 9–10 planner inputs for ``multi`` when the spec does not
#: override them: the paper's 38-key Twitter universe under a bound
#: that lands on a handful of filters.
DEFAULT_MULTI_KEYS = 38.0
DEFAULT_MULTI_MEM_BYTES = 384.0


@dataclass(frozen=True)
class FilterBackendSpec:
    """One registered relay-filter implementation.

    Attributes
    ----------
    name:
        Registry key (the spec string's leading token).
    summary:
        One-line description for docs and ``--help``.
    params:
        Accepted spec parameters as ``(name, doc)`` pairs.
    factory:
        ``factory(params, **geometry) -> relay filter``; geometry
        kwargs are ``family, num_bits, num_hashes, seed, initial_value,
        decay_factor, time, backend``.
    """

    name: str
    summary: str
    params: Tuple[Tuple[str, str], ...]
    factory: Callable


def _geometry(
    family: Optional[HashFamily],
    num_bits: int,
    num_hashes: int,
    seed: int,
) -> Tuple[HashFamily, int, int, int]:
    """Resolve (family, m, k, seed), letting an explicit family win."""
    if family is not None:
        return family, family.num_bits, family.num_hashes, family.seed
    return HashFamily(num_hashes, num_bits, seed), num_bits, num_hashes, seed


def _int_param(params: Dict[str, str], name: str, default: int) -> int:
    try:
        return int(params.get(name, default))
    except ValueError as exc:
        raise ValueError(
            f"filter spec parameter {name}={params[name]!r} is not an integer"
        ) from exc


def _float_param(params: Dict[str, str], name: str, default: float) -> float:
    try:
        return float(params.get(name, default))
    except ValueError as exc:
        raise ValueError(
            f"filter spec parameter {name}={params[name]!r} is not a number"
        ) from exc


def _make_single(backend_name):
    def factory(
        params, *, family, num_bits, num_hashes, seed,
        initial_value, decay_factor, time, backend,
    ):
        family, _, _, _ = _geometry(family, num_bits, num_hashes, seed)
        return TemporalCountingBloomFilter(
            family=family,
            initial_value=initial_value,
            decay_factor=decay_factor,
            time=time,
            backend=backend_name,
        )

    return factory


def _make_multi(
    params, *, family, num_bits, num_hashes, seed,
    initial_value, decay_factor, time, backend,
):
    family, num_bits, num_hashes, seed = _geometry(
        family, num_bits, num_hashes, seed
    )
    max_filters: Optional[int]
    if "threshold" in params:
        threshold = _float_param(params, "threshold", 0.0)
        max_filters = (
            _int_param(params, "max", 0) if "max" in params else None
        )
    else:
        plan = plan_allocation(
            _float_param(params, "keys", DEFAULT_MULTI_KEYS),
            _float_param(params, "mem", DEFAULT_MULTI_MEM_BYTES),
            num_bits=num_bits,
            num_hashes=num_hashes,
        )
        threshold = plan.fill_ratio_threshold
        max_filters = plan.num_filters
    collection = TCBFCollection(
        fill_ratio_threshold=threshold,
        family=family,
        initial_value=initial_value,
        decay_factor=decay_factor,
        max_filters=max_filters,
        backend=backend,
    )
    collection.advance(time)
    return collection


def _make_retouched(
    params, *, family, num_bits, num_hashes, seed,
    initial_value, decay_factor, time, backend,
):
    family, num_bits, _, _ = _geometry(family, num_bits, num_hashes, seed)
    cleared = ()
    raw = params.get("clear", "")
    if raw:
        try:
            cleared = tuple(int(b) for b in raw.split("+"))
        except ValueError as exc:
            raise ValueError(
                f"retouched clear list {raw!r} must be '+'-separated bit "
                "indices, e.g. clear=3+17+42"
            ) from exc
    return RetouchedTCBF(
        family=family,
        initial_value=initial_value,
        decay_factor=decay_factor,
        time=time,
        backend=backend,
        cleared_bits=cleared,
    )


def _make_countbf(
    params, *, family, num_bits, num_hashes, seed,
    initial_value, decay_factor, time, backend,
):
    _, num_bits, num_hashes, seed = _geometry(family, num_bits, num_hashes, seed)
    return CountBF2D(
        num_bits=num_bits,
        num_hashes=num_hashes,
        rows=_int_param(params, "rows", DEFAULT_ROWS),
        seed=seed,
        initial_value=initial_value,
        decay_factor=decay_factor,
        time=time,
        backend=backend,
    )


#: The registry, in the order backends are benchmarked and tested.
FILTER_BACKENDS: Dict[str, FilterBackendSpec] = {
    spec.name: spec
    for spec in (
        FilterBackendSpec(
            name="dict",
            summary="single TCBF, sparse dict counter store",
            params=(),
            factory=_make_single("dict"),
        ),
        FilterBackendSpec(
            name="array",
            summary="single TCBF, dense array counter store (default)",
            params=(),
            factory=_make_single("array"),
        ),
        FilterBackendSpec(
            name="multi",
            summary="Sec. VI-C/VI-D optimal multi-TCBF collection (Eq. 9-10)",
            params=(
                ("keys", "planner: expected total keys n (default 38)"),
                ("mem", "planner: memory bound M_max in bytes (default 384)"),
                ("threshold", "override: explicit fill-ratio threshold F_t"),
                ("max", "override: max filters h (with threshold=)"),
            ),
            factory=_make_multi,
        ),
        FilterBackendSpec(
            name="retouched",
            summary="Retouched TCBF: permanently cleared bit positions",
            params=(
                ("clear", "'+'-separated bit indices to clear, e.g. 3+17"),
            ),
            factory=_make_retouched,
        ),
        FilterBackendSpec(
            name="countbf",
            summary="countBF-style 2D counting grid (row x column hashes)",
            params=(("rows", f"grid rows (default {DEFAULT_ROWS})"),),
            factory=_make_countbf,
        ),
    )
}


def registered_backends() -> Tuple[str, ...]:
    """The registered filter-backend names, in registry order."""
    return tuple(FILTER_BACKENDS)


def parse_filter_spec(spec: str) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:k=v,k=v"`` into (name, params), validating both.

    Raises
    ------
    ValueError
        For an unknown backend name, a malformed parameter token, or a
        parameter the backend does not accept.
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"filter spec must be a non-empty string, got {spec!r}")
    name, _, rest = spec.partition(":")
    name = name.strip()
    if name not in FILTER_BACKENDS:
        raise ValueError(
            f"unknown filter backend {name!r}; registered backends: "
            f"{', '.join(FILTER_BACKENDS)}"
        )
    params: Dict[str, str] = {}
    if rest.strip():
        for token in rest.split(","):
            key, sep, value = token.partition("=")
            key, value = key.strip(), value.strip()
            if not sep or not key or not value:
                raise ValueError(
                    f"malformed filter spec parameter {token!r}; expected "
                    "name=value"
                )
            params[key] = value
    allowed = {p for p, _ in FILTER_BACKENDS[name].params}
    unknown = sorted(set(params) - allowed)
    if unknown:
        raise ValueError(
            f"filter backend {name!r} does not accept parameter(s) "
            f"{', '.join(unknown)}"
            + (f"; accepted: {', '.join(sorted(allowed))}" if allowed else "")
        )
    return name, params


def make_relay_filter(
    spec: str,
    *,
    family: Optional[HashFamily] = None,
    num_bits: int = 256,
    num_hashes: int = 4,
    seed: int = DEFAULT_SEED,
    initial_value: float = DEFAULT_INITIAL_VALUE,
    decay_factor: float = 0.0,
    time: float = 0.0,
    backend: Optional[str] = None,
):
    """Construct the relay filter a spec string describes.

    When *family* is given it wins over ``num_bits``/``num_hashes``/
    ``seed`` so every node in a network builds merge-compatible filters
    from the shared family; countBF derives its salted row/column
    families from the same geometry.
    """
    name, params = parse_filter_spec(spec)
    return FILTER_BACKENDS[name].factory(
        params,
        family=family,
        num_bits=num_bits,
        num_hashes=num_hashes,
        seed=seed,
        initial_value=initial_value,
        decay_factor=decay_factor,
        time=time,
        backend=backend,
    )


def load_keys(relay, keys) -> None:
    """Announce *keys* into any zoo relay, whatever its type.

    Prefers the duck-typed ``announce`` hook (countBF, exact relay),
    then a collection's dedup-aware ``insert_all``, then the TCBF
    ``with_keys`` merge (which works even on merged filters).
    """
    keys = list(keys)
    if not keys:
        return
    announce = getattr(relay, "announce", None)
    if announce is not None:
        announce(keys)
        return
    insert_all = getattr(relay, "insert_all", None)
    if insert_all is not None:
        insert_all(keys)
        return
    relay.with_keys(keys)


# -- tagged wire envelope ---------------------------------------------------

_ZOO_TCBF = 0x10        # one Sec. VI-C TCBF frame
_ZOO_COLLECTION = 0x11  # threshold + max + N length-prefixed TCBF frames
_ZOO_RETOUCHED = 0x12   # cleared-bit list + one TCBF frame
_ZOO_COUNTBF = 0x13     # grid geometry + quantised set cells

_COLLECTION_HEADER = struct.Struct("<fHH")  # threshold, max (0 = None), count
_RETOUCHED_HEADER = struct.Struct("<H")     # number of cleared bits
_COUNTBF_HEADER = struct.Struct("<HHfH")    # rows, cols, scale, set cells
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


def encode_filter(filt) -> bytes:
    """Encode any registered relay filter as one tagged frame."""
    if isinstance(filt, RetouchedTCBF):
        cleared = sorted(filt.cleared_bits)
        body = _RETOUCHED_HEADER.pack(len(cleared))
        body += b"".join(_U16.pack(b) for b in cleared)
        return bytes([_ZOO_RETOUCHED]) + body + encode_tcbf(filt, counters="full")
    if isinstance(filt, TemporalCountingBloomFilter):
        return bytes([_ZOO_TCBF]) + encode_tcbf(filt, counters="full")
    if isinstance(filt, TCBFCollection):
        frames = [encode_tcbf(f, counters="full") for f in filt.filters]
        body = _COLLECTION_HEADER.pack(
            filt.fill_ratio_threshold, filt.max_filters or 0, len(frames)
        )
        for frame in frames:
            body += _U32.pack(len(frame)) + frame
        return bytes([_ZOO_COLLECTION]) + body
    if isinstance(filt, CountBF2D):
        items = filt.items()
        peak = max((v for _, v in items), default=filt.initial_value)
        scale = max(peak, filt.initial_value, 1e-9) / 255.0
        body = _COUNTBF_HEADER.pack(filt.rows, filt.cols, scale, len(items))
        for cell, value in items:
            body += _U16.pack(cell)
            body += bytes([max(1, min(255, round(value / scale)))])
        return bytes([_ZOO_COUNTBF]) + body
    raise TypeError(
        f"cannot encode unregistered filter type {type(filt).__name__}"
    )


def decode_filter(
    data: bytes,
    *,
    family: Optional[HashFamily] = None,
    num_bits: int = 256,
    num_hashes: int = 4,
    seed: int = DEFAULT_SEED,
    initial_value: float = DEFAULT_INITIAL_VALUE,
    decay_factor: float = 0.0,
    time: float = 0.0,
    backend: Optional[str] = None,
):
    """Decode :func:`encode_filter` output back into a live filter.

    Decoded filters are merge/query operands (the TCBF-based ones are
    marked *merged*, per Sec. IV-A).  Raises ``ValueError`` on any
    malformed input.
    """
    if not data:
        raise ValueError("empty filter frame")
    family, num_bits, num_hashes, seed = _geometry(
        family, num_bits, num_hashes, seed
    )
    tag, body = data[0], data[1:]
    if tag == _ZOO_TCBF:
        return decode_tcbf(
            body, family, initial_value, decay_factor, time, backend
        )
    if tag == _ZOO_RETOUCHED:
        return _decode_retouched(
            body, family, initial_value, decay_factor, time, backend
        )
    if tag == _ZOO_COLLECTION:
        return _decode_collection(
            body, family, initial_value, decay_factor, time, backend
        )
    if tag == _ZOO_COUNTBF:
        return _decode_countbf(
            body, num_hashes, seed, initial_value, decay_factor, time, backend
        )
    raise ValueError(f"unknown filter zoo wire tag {tag:#x}")


def _decode_retouched(
    body, family, initial_value, decay_factor, time, backend
):
    if len(body) < _RETOUCHED_HEADER.size:
        raise ValueError("truncated retouched frame: missing cleared count")
    (count,) = _RETOUCHED_HEADER.unpack_from(body)
    offset = _RETOUCHED_HEADER.size
    needed = offset + count * _U16.size
    if len(body) < needed:
        raise ValueError(
            f"truncated retouched frame: {count} cleared bits need "
            f"{needed} bytes, got {len(body)}"
        )
    cleared = [
        _U16.unpack_from(body, offset + i * _U16.size)[0] for i in range(count)
    ]
    inner = decode_tcbf(
        body[needed:], family, initial_value, decay_factor, time, backend
    )
    filt = RetouchedTCBF(
        family=family,
        initial_value=initial_value,
        decay_factor=decay_factor,
        time=time,
        backend=backend,
        cleared_bits=cleared,
    )
    filt._store = inner._store
    filt._merged = True
    filt._scrub()
    return filt


def _decode_collection(
    body, family, initial_value, decay_factor, time, backend
):
    if len(body) < _COLLECTION_HEADER.size:
        raise ValueError("truncated collection frame: missing header")
    threshold, max_raw, count = _COLLECTION_HEADER.unpack_from(body)
    offset = _COLLECTION_HEADER.size
    filters = []
    for _ in range(count):
        if len(body) < offset + _U32.size:
            raise ValueError("truncated collection frame: missing frame length")
        (length,) = _U32.unpack_from(body, offset)
        offset += _U32.size
        if len(body) < offset + length:
            raise ValueError(
                f"truncated collection frame: constituent needs {length} "
                f"bytes, got {len(body) - offset}"
            )
        filters.append(
            decode_tcbf(
                body[offset : offset + length],
                family,
                initial_value,
                decay_factor,
                time,
                backend,
            )
        )
        offset += length
    if offset != len(body):
        raise ValueError(
            f"collection frame has {len(body) - offset} trailing bytes"
        )
    collection = TCBFCollection(
        fill_ratio_threshold=threshold,
        family=family,
        initial_value=initial_value,
        decay_factor=decay_factor,
        max_filters=max_raw or None,
        backend=backend,
    )
    collection.advance(time)
    if filters:
        collection._filters = filters
    return collection


def _decode_countbf(
    body, num_hashes, seed, initial_value, decay_factor, time, backend
):
    if len(body) < _COUNTBF_HEADER.size:
        raise ValueError("truncated countBF frame: missing header")
    rows, cols, scale, count = _COUNTBF_HEADER.unpack_from(body)
    if not scale > 0.0:
        raise ValueError(f"countBF counter scale must be positive, got {scale}")
    offset = _COUNTBF_HEADER.size
    needed = offset + count * (_U16.size + 1)
    if len(body) != needed:
        raise ValueError(
            f"malformed countBF frame: {count} cells need exactly "
            f"{needed} bytes, got {len(body)}"
        )
    filt = CountBF2D(
        num_bits=rows * cols,
        num_hashes=num_hashes,
        rows=rows,
        seed=seed,
        initial_value=initial_value,
        decay_factor=decay_factor,
        time=time,
        backend=backend,
    )
    if filt.cols != cols:
        raise ValueError(
            f"inconsistent countBF geometry on the wire: {rows}x{cols}"
        )
    store = filt._store
    num_cells = filt.num_cells
    for i in range(count):
        cell = _U16.unpack_from(body, offset + i * (_U16.size + 1))[0]
        if cell >= num_cells:
            raise ValueError(
                f"countBF cell {cell} out of range for {rows}x{cols} grid"
            )
        raw = body[offset + i * (_U16.size + 1) + _U16.size]
        store.set(cell, raw * scale)
    filt.version += 1
    return filt
