"""Dynamic TCBF allocation for optimal FPR (paper Sec. VI-D).

When a single TCBF fills up its false-positive rate explodes, so B-SUB
can spread interests over a *collection* of filters: a new TCBF is
allocated whenever the fill ratio of the current one exceeds a
threshold ``F_t``.  Sec. VI-D derives the optimal number of filters
``h`` under a memory bound ``M_max`` (Eq. 9–10): the joint FPR is
monotone decreasing in ``h`` while the memory is monotone increasing,
so the optimum is the *largest* ``h`` whose memory fits — found by
binary search.  The fill-ratio threshold is then the Eq. 3 fill ratio
at ``n / h`` keys per filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from . import analysis
from .backends import resolve_backend
from .hashing import DEFAULT_SEED, HashFamily
from .tcbf import DEFAULT_INITIAL_VALUE, TemporalCountingBloomFilter

__all__ = [
    "AllocationPlan",
    "plan_allocation",
    "plan_allocation_brute",
    "TCBFCollection",
]


@dataclass(frozen=True)
class AllocationPlan:
    """The outcome of the Eq. 9–10 optimisation.

    Attributes
    ----------
    num_filters:
        Optimal ``h``.
    fill_ratio_threshold:
        ``F_t`` — allocate a new filter once the current filter's FR
        exceeds this.
    keys_per_filter:
        Expected keys per filter at the optimum (``n / h``).
    joint_fpr:
        Eq. 7 joint FPR at the optimum.
    memory_bytes:
        Eq. 8 memory at the optimum (must be < the bound).
    """

    num_filters: int
    fill_ratio_threshold: float
    keys_per_filter: float
    joint_fpr: float
    memory_bytes: float


def plan_allocation(
    total_keys: float,
    memory_bound_bytes: float,
    num_bits: int = 256,
    num_hashes: int = 4,
    max_filters: int = 4096,
) -> AllocationPlan:
    """Solve Eq. 10: the largest ``h`` whose Eq. 8 memory fits the bound.

    Raises
    ------
    ValueError
        If even a single filter exceeds *memory_bound_bytes* — the
        constraint set of Eq. 9 is empty and no allocation exists.
    """
    if total_keys <= 0:
        raise ValueError(f"total_keys must be positive, got {total_keys}")
    if memory_bound_bytes <= 0:
        raise ValueError(
            f"memory_bound_bytes must be positive, got {memory_bound_bytes}"
        )

    def memory(h: int) -> float:
        return analysis.multi_filter_memory_bytes(
            h, total_keys, num_bits, num_hashes
        )

    if memory(1) >= memory_bound_bytes:
        raise ValueError(
            "memory bound too small: a single filter already needs "
            f"{memory(1):.1f} bytes >= {memory_bound_bytes} bytes"
        )

    # Memory is monotone increasing in h (each extra filter adds
    # fixed-cost set bits faster than the per-filter key count shrinks
    # them), so binary-search the largest feasible h.
    lo, hi = 1, max_filters
    if memory(hi) < memory_bound_bytes:
        best = hi
    else:
        best = 1
        while lo <= hi:
            mid = (lo + hi) // 2
            if memory(mid) < memory_bound_bytes:
                best = mid
                lo = mid + 1
            else:
                hi = mid - 1

    keys_per_filter = total_keys / best
    return AllocationPlan(
        num_filters=best,
        fill_ratio_threshold=analysis.fill_ratio(
            keys_per_filter, num_bits, num_hashes
        ),
        keys_per_filter=keys_per_filter,
        joint_fpr=analysis.joint_false_positive_rate(
            [keys_per_filter] * best, num_bits, num_hashes
        ),
        memory_bytes=memory(best),
    )


def plan_allocation_brute(
    total_keys: float,
    memory_bound_bytes: float,
    num_bits: int = 256,
    num_hashes: int = 4,
    max_filters: int = 4096,
) -> AllocationPlan:
    """Solve Eq. 9 by exhaustive enumeration (validation oracle).

    Evaluates the Eq. 7 joint FPR at *every* feasible ``h`` in
    ``[1, max_filters]`` and picks the minimum (ties broken by lower
    memory, then smaller ``h``).  This is the brute-force ground truth
    the binary-search shortcut of :func:`plan_allocation` is checked
    against in the property-test suite — the two must agree because the
    joint FPR is monotone decreasing in ``h`` on the feasible set.

    Raises
    ------
    ValueError
        If no ``h`` fits *memory_bound_bytes* (same condition as
        :func:`plan_allocation`).
    """
    if total_keys <= 0:
        raise ValueError(f"total_keys must be positive, got {total_keys}")
    if memory_bound_bytes <= 0:
        raise ValueError(
            f"memory_bound_bytes must be positive, got {memory_bound_bytes}"
        )

    def memory(h: int) -> float:
        return analysis.multi_filter_memory_bytes(
            h, total_keys, num_bits, num_hashes
        )

    def joint_fpr(h: int) -> float:
        return analysis.joint_false_positive_rate(
            [total_keys / h] * h, num_bits, num_hashes
        )

    feasible = [
        h for h in range(1, max_filters + 1) if memory(h) < memory_bound_bytes
    ]
    if not feasible:
        raise ValueError(
            "memory bound too small: a single filter already needs "
            f"{memory(1):.1f} bytes >= {memory_bound_bytes} bytes"
        )
    best = min(feasible, key=lambda h: (joint_fpr(h), memory(h), h))
    keys_per_filter = total_keys / best
    return AllocationPlan(
        num_filters=best,
        fill_ratio_threshold=analysis.fill_ratio(
            keys_per_filter, num_bits, num_hashes
        ),
        keys_per_filter=keys_per_filter,
        joint_fpr=joint_fpr(best),
        memory_bytes=memory(best),
    )


class TCBFCollection:
    """A dynamically grown set of TCBFs sharing one hash family.

    Implements the Sec. VI-D strategy: keys are inserted into the most
    recent filter until its fill ratio exceeds ``fill_ratio_threshold``,
    at which point a fresh filter is allocated.  Queries consult every
    filter (hence the Eq. 7 joint FPR).
    """

    def __init__(
        self,
        fill_ratio_threshold: float,
        num_bits: int = 256,
        num_hashes: int = 4,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        initial_value: float = DEFAULT_INITIAL_VALUE,
        decay_factor: float = 0.0,
        max_filters: Optional[int] = None,
        backend: Optional[str] = None,
    ):
        if not 0.0 < fill_ratio_threshold <= 1.0:
            raise ValueError(
                "fill_ratio_threshold must be in (0, 1], got "
                f"{fill_ratio_threshold}"
            )
        if max_filters is not None and max_filters < 1:
            raise ValueError(f"max_filters must be >= 1, got {max_filters}")
        self.family = family if family is not None else HashFamily(
            num_hashes, num_bits, seed
        )
        self.fill_ratio_threshold = fill_ratio_threshold
        self.initial_value = initial_value
        self.decay_factor = decay_factor
        self.max_filters = max_filters
        self.backend = resolve_backend(backend)
        self._filters: List[TemporalCountingBloomFilter] = [self._fresh(0.0)]

    @classmethod
    def from_plan(
        cls,
        plan: AllocationPlan,
        num_bits: int = 256,
        num_hashes: int = 4,
        **kwargs,
    ) -> "TCBFCollection":
        """Build a collection enforcing a :func:`plan_allocation` result."""
        return cls(
            fill_ratio_threshold=plan.fill_ratio_threshold,
            num_bits=num_bits,
            num_hashes=num_hashes,
            max_filters=plan.num_filters,
            **kwargs,
        )

    def _fresh(self, time: float) -> TemporalCountingBloomFilter:
        return TemporalCountingBloomFilter(
            family=self.family,
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            time=time,
            backend=self.backend,
        )

    @property
    def filters(self) -> List[TemporalCountingBloomFilter]:
        """The live filters, oldest first (do not mutate)."""
        return list(self._filters)

    @property
    def num_filters(self) -> int:
        return len(self._filters)

    def insert(self, key: str) -> None:
        """Insert *key* into the current filter, allocating if it is full.

        If the key is already present in *any* filter this is a no-op —
        spreading duplicates across filters would inflate the joint FPR
        for no benefit.
        """
        if self.query(key):
            return
        current = self._filters[-1]
        if current.fill_ratio() > self.fill_ratio_threshold:
            if self.max_filters is None or len(self._filters) < self.max_filters:
                current = self._fresh(current.time)
                self._filters.append(current)
        current.insert(key)

    def insert_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.insert(key)

    # -- merge interface (lets a collection stand in for a relay filter) ----

    @property
    def time(self) -> float:
        """The collection's clock (all filters advance together)."""
        return self._filters[-1].time

    def a_merge(self, other) -> None:
        """A-merge an announcement into the current filter.

        Implements the Sec. VI-D growth rule for the merge path: when
        the current filter's fill ratio exceeds the threshold, a fresh
        filter is allocated and receives the announcement instead.
        Accepts another collection too (each constituent is merged in
        turn).
        """
        if isinstance(other, TCBFCollection):
            for filt in other.filters:
                if not filt.is_empty():
                    self.a_merge(filt)
            return
        current = self._filters[-1]
        if current.fill_ratio() > self.fill_ratio_threshold and (
            self.max_filters is None or len(self._filters) < self.max_filters
        ):
            current = self._fresh(current.time)
            self._filters.append(current)
        current.a_merge(other)

    def m_merge(self, other) -> None:
        """M-merge a peer's relay state (single filter or collection).

        Each incoming filter is M-merged into the local filter sharing
        the most set bits with it (ties favour the newest), so related
        interest sets stay co-located; if every local filter is over
        the threshold and capacity remains, a fresh filter takes it.
        """
        incoming = (
            other.filters
            if isinstance(other, TCBFCollection)
            else [other]
        )
        for filt in incoming:
            if filt.is_empty():
                continue
            self._m_merge_one(filt)

    def _m_merge_one(self, incoming: TemporalCountingBloomFilter) -> None:
        incoming_bits = set(incoming)
        best, best_overlap = None, -1
        for candidate in self._filters:
            overlap = len(incoming_bits & set(candidate))
            if overlap >= best_overlap:
                best, best_overlap = candidate, overlap
        if (
            best_overlap == 0
            and best.fill_ratio() > self.fill_ratio_threshold
            and (self.max_filters is None or len(self._filters) < self.max_filters)
        ):
            best = self._fresh(self._filters[-1].time)
            self._filters.append(best)
        best.m_merge(incoming)

    def preference(self, key: str, other) -> float:
        """Preferential query of the collection against *other*.

        Uses the collection-wide minimum counters (the best evidence
        either side holds for the key), matching the single-filter
        semantics of Sec. IV-A.
        """
        a = self.min_counter(key)
        b = other.min_counter(key)
        return a if b == 0.0 else a - b

    def is_empty(self) -> bool:
        return all(f.is_empty() for f in self._filters)

    def copy(self) -> "TCBFCollection":
        clone = TCBFCollection(
            fill_ratio_threshold=self.fill_ratio_threshold,
            family=self.family,
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            max_filters=self.max_filters,
            backend=self.backend,
        )
        clone._filters = [f.copy() for f in self._filters]
        return clone

    def query(self, key: str) -> bool:
        """Existential query across all filters (joint FPR per Eq. 7)."""
        return any(f.query(key) for f in self._filters)

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Existential queries for many keys across all filters."""
        keys = list(keys)
        hits = self._filters[0].query_batch(keys)
        for filt in self._filters[1:]:
            hits = hits | filt.query_batch(keys)
        return hits

    def min_counter(self, key: str) -> float:
        """Largest per-filter minimum counter for *key* (0 if absent)."""
        return max(f.min_counter(key) for f in self._filters)

    def min_counter_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Collection-wide minimum counters for many keys (see
        :meth:`min_counter`) as one float vector."""
        keys = list(keys)
        minima = self._filters[0].min_counter_batch(keys)
        for filt in self._filters[1:]:
            minima = np.maximum(minima, filt.min_counter_batch(keys))
        return minima

    def preference_batch(self, keys: Sequence[str], other) -> np.ndarray:
        """Batched preferential query of the collection against *other*."""
        keys = list(keys)
        a = self.min_counter_batch(keys)
        b = np.asarray(other.min_counter_batch(keys), dtype=np.float64)
        return np.where(b == 0.0, a, a - b)

    def advance(self, now: float) -> None:
        """Advance every filter's clock, dropping emptied extras."""
        for f in self._filters:
            f.advance(now)
        live = [f for f in self._filters if not f.is_empty()]
        # Always keep at least the newest filter as the insert target.
        self._filters = live if live else [self._fresh(now)]

    def fill_ratios(self) -> List[float]:
        return [f.fill_ratio() for f in self._filters]

    def memory_bytes(self) -> float:
        """Sec. VI-C compact size of the whole collection."""
        return sum(
            analysis.filter_memory_bytes(len(f), f.num_bits, counters="full")
            for f in self._filters
        )

    def __len__(self) -> int:
        """Total set bits across filters."""
        return sum(len(f) for f in self._filters)

    def __repr__(self) -> str:
        return (
            f"TCBFCollection(filters={len(self._filters)}, "
            f"threshold={self.fill_ratio_threshold:.3f}, "
            f"set_bits={len(self)})"
        )
