"""Compact wire encoding for BF/TCBF exchange (paper Sec. VI-C).

Because the fill ratio is usually low, a filter is cheaper to transmit
as a list of set-bit *locations* (⌈log2 m⌉ bits each; exactly one byte
for the paper's m = 256) than as the raw m-bit vector.  Counters are
1 byte each and can be elided in two ways the paper calls out:

* all counters identical (a freshly inserted genuine filter) — send one
  shared counter value;
* counters not needed by the receiver (a broker requesting messages
  from a producer) — strip them entirely, leaving a plain BF.

The encoder picks the compact form unless the raw bit-vector is
smaller, mirroring the ``S·⌈log2 m⌉ < m`` condition.

Counters are floats internally (lazy decay) but 1 byte on the wire: the
encoder scales them by ``counter_scale`` — with the paper's 24-hour
maximum delay and C = 50 this gives the "5.6-minute granularity" noted
in Sec. VI-C.  Quantisation only affects transmitted copies; local
filters keep full precision.
"""

from __future__ import annotations

import math
import struct
from typing import Optional, Tuple

from .bloom import BloomFilter
from .hashing import HashFamily
from .tcbf import TemporalCountingBloomFilter

__all__ = [
    "encode_bloom",
    "decode_bloom",
    "encode_tcbf",
    "decode_tcbf",
    "encoded_bloom_size",
    "encoded_tcbf_size",
]

# Wire format tags.
_TAG_LOCATIONS = 0x01         # set-bit locations, no counters
_TAG_RAW_BITS = 0x02          # raw bit-vector
_TAG_FULL_COUNTERS = 0x03     # locations + per-bit quantised counter
_TAG_SHARED_COUNTER = 0x04    # locations + one shared quantised counter
_TAG_RAW_FULL_COUNTERS = 0x05  # raw bit-vector + counters in position order

_HEADER = struct.Struct("<BHH")  # tag, num_bits, num_set_bits
_SCALE = struct.Struct("<f")


def _location_bytes(num_bits: int) -> int:
    """Whole bytes used per location on the wire (ceil of ⌈log2 m⌉/8)."""
    return max(1, math.ceil(math.ceil(math.log2(num_bits)) / 8))


def _pack_locations(positions, width: int) -> bytes:
    return b"".join(p.to_bytes(width, "little") for p in sorted(positions))


def _unpack_locations(data: bytes, count: int, width: int) -> Tuple[int, ...]:
    return tuple(
        int.from_bytes(data[i * width : (i + 1) * width], "little")
        for i in range(count)
    )


def _pack_raw_bits(positions, num_bits: int) -> bytes:
    vector = bytearray((num_bits + 7) // 8)
    for p in positions:
        vector[p // 8] |= 1 << (p % 8)
    return bytes(vector)


def _unpack_raw_bits(data: bytes, num_bits: int) -> Tuple[int, ...]:
    return tuple(
        p for p in range(num_bits) if data[p // 8] & (1 << (p % 8))
    )


def encode_bloom(bf: BloomFilter) -> bytes:
    """Encode a plain BF: locations if compact, raw bits otherwise."""
    width = _location_bytes(bf.num_bits)
    positions = bf.set_bits
    compact_size = len(positions) * width
    raw_size = (bf.num_bits + 7) // 8
    if compact_size <= raw_size:
        header = _HEADER.pack(_TAG_LOCATIONS, bf.num_bits, len(positions))
        return header + _pack_locations(positions, width)
    header = _HEADER.pack(_TAG_RAW_BITS, bf.num_bits, len(positions))
    return header + _pack_raw_bits(positions, bf.num_bits)


def _checked_header(data: bytes, family: HashFamily) -> Tuple[int, int, int]:
    """Parse and sanity-check the common filter header.

    Raises ``ValueError`` (never struct/index errors) on short input,
    geometry mismatch, or a set-bit count exceeding the filter size —
    the defences a receiver of corrupted bytes needs before trusting
    any length derived from the header.
    """
    if len(data) < _HEADER.size:
        raise ValueError(
            f"filter header needs {_HEADER.size} bytes, got {len(data)}"
        )
    tag, num_bits, count = _HEADER.unpack_from(data)
    if num_bits != family.num_bits:
        raise ValueError(
            f"encoded filter has m={num_bits}, family expects {family.num_bits}"
        )
    if count > num_bits:
        raise ValueError(f"claims {count} set bits in an m={num_bits} filter")
    return tag, num_bits, count


def _require(body: bytes, needed: int, what: str) -> None:
    if len(body) < needed:
        raise ValueError(f"truncated filter body: {what} needs {needed} bytes, "
                         f"got {len(body)}")


def _checked_locations(
    body: bytes, count: int, width: int, num_bits: int
) -> Tuple[int, ...]:
    positions = _unpack_locations(body, count, width)
    for position in positions:
        if position >= num_bits:
            raise ValueError(
                f"bit location {position} out of range for m={num_bits}"
            )
    return positions


def decode_bloom(
    data: bytes, family: HashFamily, backend: Optional[str] = None
) -> BloomFilter:
    """Decode :func:`encode_bloom` output against a known hash family.

    Raises ``ValueError`` on any malformed input — short buffers,
    geometry mismatches, impossible counts, out-of-range locations —
    and never reads past the supplied bytes.
    """
    tag, num_bits, count = _checked_header(data, family)
    body = data[_HEADER.size :]
    if tag == _TAG_LOCATIONS:
        width = _location_bytes(num_bits)
        _require(body, count * width, f"{count} locations")
        positions = _checked_locations(body, count, width, num_bits)
    elif tag == _TAG_RAW_BITS:
        _require(body, (num_bits + 7) // 8, "the raw bit-vector")
        positions = _unpack_raw_bits(body, num_bits)
    else:
        raise ValueError(f"unexpected wire tag {tag:#x} for a plain BF")
    return BloomFilter.from_bits(positions, family, backend=backend)


def _quantise(value: float, scale: float) -> int:
    """Map a positive counter onto 1..255 (0 is reserved for 'unset')."""
    return max(1, min(255, round(value / scale)))


def encode_tcbf(
    tcbf: TemporalCountingBloomFilter,
    counters: str = "full",
    counter_scale: Optional[float] = None,
) -> bytes:
    """Encode a TCBF for transmission.

    Parameters
    ----------
    counters:
        ``"full"`` (per-bit counters), ``"identical"`` (one shared
        value — valid only when all counters are equal, e.g. a freshly
        inserted genuine filter), or ``"none"`` (strip counters; the
        receiver gets a plain BF).
    counter_scale:
        Counter units per quantisation step.  Defaults to
        ``max(largest counter, C) / 255`` so the full byte range covers
        the filter — A-merge reinforcement pushes counters well above
        the initial value, and clipping them would erase exactly the
        relationship the preferential query compares.  The scale is
        carried in the frame, so receivers adapt automatically.
    """
    items = tcbf.items()
    if counter_scale is not None:
        scale = counter_scale
    else:
        peak = max((v for _, v in items), default=tcbf.initial_value)
        scale = max(peak, tcbf.initial_value, 1e-9) / 255.0
    width = _location_bytes(tcbf.num_bits)

    if counters == "none":
        return encode_bloom(tcbf.to_bloom())

    if counters == "identical":
        values = {q for _, v in items for q in (_quantise(v, scale),)}
        if len(values) > 1:
            raise ValueError(
                "counters='identical' requires all counters equal "
                f"(after quantisation); found {len(values)} distinct values"
            )
        shared = values.pop() if values else _quantise(tcbf.initial_value, scale)
        header = _HEADER.pack(_TAG_SHARED_COUNTER, tcbf.num_bits, len(items))
        body = _pack_locations((p for p, _ in items), width)
        return header + _SCALE.pack(scale) + bytes([shared]) + body

    if counters != "full":
        raise ValueError(
            f"counters must be 'full', 'identical' or 'none', got {counters!r}"
        )
    values = bytes(_quantise(v, scale) for _, v in items)
    # The Sec. VI-C fallback: once the filter is dense enough that the
    # location list outgrows the raw m-bit vector, send the vector and
    # the counters in ascending-position order.
    if len(items) * width > (tcbf.num_bits + 7) // 8:
        header = _HEADER.pack(_TAG_RAW_FULL_COUNTERS, tcbf.num_bits, len(items))
        bits = _pack_raw_bits((p for p, _ in items), tcbf.num_bits)
        return header + _SCALE.pack(scale) + bits + values
    header = _HEADER.pack(_TAG_FULL_COUNTERS, tcbf.num_bits, len(items))
    locations = _pack_locations((p for p, _ in items), width)
    return header + _SCALE.pack(scale) + locations + values


def decode_tcbf(
    data: bytes,
    family: HashFamily,
    initial_value: float,
    decay_factor: float = 0.0,
    time: float = 0.0,
    backend: Optional[str] = None,
) -> TemporalCountingBloomFilter:
    """Decode :func:`encode_tcbf` output (``full`` or ``identical`` forms).

    The resulting filter is marked *merged* — a received filter is never
    an insertion target (Sec. IV-A), only a merge operand.

    Raises ``ValueError`` on any malformed input — short buffers,
    impossible counts, out-of-range locations, or a non-finite /
    non-positive counter scale — and never reads past the supplied
    bytes.
    """
    tag, num_bits, count = _checked_header(data, family)
    width = _location_bytes(num_bits)
    body = data[_HEADER.size :]
    tcbf = TemporalCountingBloomFilter(
        family=family,
        initial_value=initial_value,
        decay_factor=decay_factor,
        time=time,
        backend=backend,
    )
    if tag not in (_TAG_FULL_COUNTERS, _TAG_RAW_FULL_COUNTERS, _TAG_SHARED_COUNTER):
        raise ValueError(
            f"unexpected wire tag {tag:#x} for a TCBF (use decode_bloom "
            "for counter-stripped filters)"
        )
    _require(body, _SCALE.size, "the counter scale")
    (scale,) = _SCALE.unpack_from(body)
    if not math.isfinite(scale) or scale <= 0.0:
        raise ValueError(f"counter scale must be finite and positive, got {scale}")
    body = body[_SCALE.size :]
    if tag == _TAG_FULL_COUNTERS:
        expected = count * width + count
        _require(body, expected, f"{count} locations + counters")
        positions = _checked_locations(body, count, width, num_bits)
        values = body[count * width : count * width + count]
        for position, raw in zip(positions, values):
            tcbf._set_counter(position, raw * scale)
    elif tag == _TAG_RAW_FULL_COUNTERS:
        vector_len = (num_bits + 7) // 8
        expected = vector_len + count
        _require(body, expected, "the bit-vector + counters")
        positions = _unpack_raw_bits(body[:vector_len], num_bits)
        if len(positions) != count:
            raise ValueError(
                f"bit-vector has {len(positions)} set bits but header "
                f"claims {count}"
            )
        values = body[vector_len : vector_len + count]
        for position, raw in zip(positions, values):  # ascending order
            tcbf._set_counter(position, raw * scale)
    else:  # _TAG_SHARED_COUNTER
        expected = 1 + count * width
        _require(body, expected, "the shared counter + locations")
        shared = body[0]
        positions = _checked_locations(body[1:], count, width, num_bits)
        for position in positions:
            tcbf._set_counter(position, shared * scale)
    if len(body) != expected:
        raise ValueError(
            f"TCBF frame has {len(body) - expected} trailing bytes"
        )
    tcbf._merged = True
    return tcbf


def encoded_bloom_size(bf: BloomFilter) -> int:
    """Wire size of :func:`encode_bloom` output, in bytes."""
    return len(encode_bloom(bf))


def encoded_tcbf_size(
    tcbf: TemporalCountingBloomFilter, counters: str = "full"
) -> int:
    """Wire size of :func:`encode_tcbf` output, in bytes."""
    return len(encode_tcbf(tcbf, counters=counters))
