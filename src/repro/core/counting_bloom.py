"""Counting Bloom filter (paper Sec. III, after [22] Fan et al.).

The CBF associates a counter with each bit so that keys can be deleted:
insertion increments the counters at the key's hashed positions,
deletion decrements them, and a bit counts as *set* while its counter is
positive.  The paper presents the CBF only as background for the TCBF —
the TCBF reuses the counter layout but gives the counters an entirely
different meaning (remaining lifetime rather than reference count).

Repeated hash positions for one key are counted once per insertion, so
insert/delete of the same key always round-trips even when ``k`` probes
collide.

Counters live behind the :mod:`repro.core.backends` seam; the ``array``
backend packs them into an integer numpy vector with vectorized batch
queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .backends import make_counter_store, resolve_backend
from .bloom import BloomFilter
from .hashing import DEFAULT_SEED, HashFamily
from .params import resolve_param

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """A counting Bloom filter supporting insert, delete, and query.

    ``m`` / ``k`` are keyword-only paper-notation aliases for
    ``num_bits`` / ``num_hashes``.
    """

    __slots__ = ("family", "backend", "_store")

    def __init__(
        self,
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        backend: Optional[str] = None,
        *,
        m: Optional[int] = None,
        k: Optional[int] = None,
    ):
        num_bits = resolve_param("num_bits", num_bits, "m", m, 256)
        num_hashes = resolve_param("num_hashes", num_hashes, "k", k, 4)
        self.family = family if family is not None else HashFamily(
            num_hashes, num_bits, seed
        )
        self.backend = resolve_backend(backend)
        # Sparse map / integer vector of position -> count.
        self._store = make_counter_store(
            self.backend, self.family.num_bits, integer=True
        )

    @property
    def num_bits(self) -> int:
        return self.family.num_bits

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    def counter(self, position: int) -> int:
        """The counter value at *position* (0 if never set)."""
        if not 0 <= position < self.num_bits:
            raise IndexError(f"bit position {position} out of range")
        return int(self._store.get(position))

    def bit(self, position: int) -> bool:
        """Whether the bit at *position* is set (counter > 0)."""
        return self.counter(position) > 0

    def fill_ratio(self) -> float:
        """Fraction of bits with positive counters."""
        return self._store.count() / self.num_bits

    def __len__(self) -> int:
        """Number of set bits."""
        return self._store.count()

    def is_empty(self) -> bool:
        return self._store.is_empty()

    # -- mutation ------------------------------------------------------------

    def insert(self, key: str) -> None:
        """Insert *key*: increment the counter of each distinct hashed bit."""
        self._store.add_at(self.family.distinct_positions(key), 1)

    def insert_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.insert(key)

    def delete(self, key: str) -> None:
        """Delete one insertion of *key*.

        Raises
        ------
        KeyError
            If any of the key's bits already has a zero counter, i.e. the
            key is definitely not present.  (Deleting a key that was
            never inserted but happens to be a false positive silently
            corrupts a CBF; callers should query first — the classic CBF
            caveat.)
        """
        positions = self.family.distinct_positions(key)
        if not self._store.query(positions):
            raise KeyError(f"key {key!r} is not present in the filter")
        self._store.add_at(positions, -1)

    def clear(self) -> None:
        self._store.clear()

    # -- queries ---------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query(self, key: str) -> bool:
        """Membership query (same FPR as the classic BF)."""
        return self._store.query(self.family.positions(key))

    def query_all(self, keys: Iterable[str]) -> List[str]:
        keys = list(keys)
        hits = self.query_batch(keys)
        return [key for key, hit in zip(keys, hits) if hit]

    def query_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Membership queries for many keys as one boolean vector."""
        return self._store.query_rows(self.family.positions_batch(list(keys)))

    def min_counter(self, key: str) -> int:
        """Minimum counter among *key*'s hashed bits.

        An upper bound on how many times *key* was inserted.
        """
        return int(self._store.min(self.family.positions(key)))

    def min_counter_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Minimum counters for many keys as one vector."""
        return self._store.min_rows(self.family.positions_batch(list(keys)))

    # -- conversion ---------------------------------------------------------------

    def to_bloom(self) -> BloomFilter:
        """The plain Bloom filter with the same set bits."""
        return BloomFilter.from_bits(
            self._store.positions(), self.family, backend=self.backend
        )

    @classmethod
    def of(
        cls,
        keys: Iterable[str],
        num_bits: int = 256,
        num_hashes: int = 4,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        backend: Optional[str] = None,
    ) -> "CountingBloomFilter":
        cbf = cls(num_bits, num_hashes, seed, family=family, backend=backend)
        cbf.insert_all(keys)
        return cbf

    def copy(self) -> "CountingBloomFilter":
        clone = CountingBloomFilter(family=self.family, backend=self.backend)
        clone._store = self._store.copy()
        return clone

    def counters(self) -> Dict[int, int]:
        """A snapshot {position: count} of the set bits."""
        return {p: int(v) for p, v in self._store.as_dict().items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountingBloomFilter):
            return NotImplemented
        return self.family == other.family and self.counters() == other.counters()

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(m={self.num_bits}, k={self.num_hashes}, "
            f"set_bits={len(self)})"
        )
