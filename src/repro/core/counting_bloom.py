"""Counting Bloom filter (paper Sec. III, after [22] Fan et al.).

The CBF associates a counter with each bit so that keys can be deleted:
insertion increments the counters at the key's hashed positions,
deletion decrements them, and a bit counts as *set* while its counter is
positive.  The paper presents the CBF only as background for the TCBF —
the TCBF reuses the counter layout but gives the counters an entirely
different meaning (remaining lifetime rather than reference count).

Repeated hash positions for one key are counted once per insertion, so
insert/delete of the same key always round-trips even when ``k`` probes
collide.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .bloom import BloomFilter
from .hashing import DEFAULT_SEED, HashFamily

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """A counting Bloom filter supporting insert, delete, and query."""

    __slots__ = ("family", "_counters")

    def __init__(
        self,
        num_bits: int = 256,
        num_hashes: int = 4,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
    ):
        self.family = family if family is not None else HashFamily(
            num_hashes, num_bits, seed
        )
        # Sparse map position -> count; absent means zero.
        self._counters: Dict[int, int] = {}

    @property
    def num_bits(self) -> int:
        return self.family.num_bits

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    def counter(self, position: int) -> int:
        """The counter value at *position* (0 if never set)."""
        if not 0 <= position < self.num_bits:
            raise IndexError(f"bit position {position} out of range")
        return self._counters.get(position, 0)

    def bit(self, position: int) -> bool:
        """Whether the bit at *position* is set (counter > 0)."""
        return self.counter(position) > 0

    def fill_ratio(self) -> float:
        """Fraction of bits with positive counters."""
        return len(self._counters) / self.num_bits

    def __len__(self) -> int:
        """Number of set bits."""
        return len(self._counters)

    def is_empty(self) -> bool:
        return not self._counters

    # -- mutation ------------------------------------------------------------

    def insert(self, key: str) -> None:
        """Insert *key*: increment the counter of each distinct hashed bit."""
        for position in self.family.distinct_positions(key):
            self._counters[position] = self._counters.get(position, 0) + 1

    def insert_all(self, keys: Iterable[str]) -> None:
        for key in keys:
            self.insert(key)

    def delete(self, key: str) -> None:
        """Delete one insertion of *key*.

        Raises
        ------
        KeyError
            If any of the key's bits already has a zero counter, i.e. the
            key is definitely not present.  (Deleting a key that was
            never inserted but happens to be a false positive silently
            corrupts a CBF; callers should query first — the classic CBF
            caveat.)
        """
        positions = self.family.distinct_positions(key)
        if any(self._counters.get(p, 0) <= 0 for p in positions):
            raise KeyError(f"key {key!r} is not present in the filter")
        for position in positions:
            remaining = self._counters[position] - 1
            if remaining:
                self._counters[position] = remaining
            else:
                del self._counters[position]

    def clear(self) -> None:
        self._counters.clear()

    # -- queries ---------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query(self, key: str) -> bool:
        """Membership query (same FPR as the classic BF)."""
        return all(
            self._counters.get(p, 0) > 0 for p in self.family.positions(key)
        )

    def query_all(self, keys: Iterable[str]) -> List[str]:
        return [key for key in keys if self.query(key)]

    def min_counter(self, key: str) -> int:
        """Minimum counter among *key*'s hashed bits.

        An upper bound on how many times *key* was inserted.
        """
        return min(self._counters.get(p, 0) for p in self.family.positions(key))

    # -- conversion ---------------------------------------------------------------

    def to_bloom(self) -> BloomFilter:
        """The plain Bloom filter with the same set bits."""
        return BloomFilter.from_bits(self._counters.keys(), self.family)

    @classmethod
    def of(
        cls,
        keys: Iterable[str],
        num_bits: int = 256,
        num_hashes: int = 4,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
    ) -> "CountingBloomFilter":
        cbf = cls(num_bits, num_hashes, seed, family=family)
        cbf.insert_all(keys)
        return cbf

    def copy(self) -> "CountingBloomFilter":
        clone = CountingBloomFilter(family=self.family)
        clone._counters = dict(self._counters)
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CountingBloomFilter):
            return NotImplemented
        return self.family == other.family and self._counters == other._counters

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(m={self.num_bits}, k={self.num_hashes}, "
            f"set_bits={len(self._counters)})"
        )
