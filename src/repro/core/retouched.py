"""Retouched Bloom Filters over the TCBF (PAPERS.md: Donnet et al.,
"Retouched Bloom Filters: Allowing Networked Applications to Trade Off
Selected False Positives Against False Negatives").

A retouched filter deliberately *clears* a few chosen bit positions so
that specific troublesome false positives can never match again, at the
price of possibly losing the keys that legitimately used those bits.
In B-SUB terms: a relay filter false positive (``relay_filter_fp`` in
the PR-5 attribution taxonomy) happens exactly when an unwanted key's
bits are all covered by the union of announced-interest bits — so a
useful retouch must sacrifice *shared* bits, and the planner below
tracks precisely which interests it sacrifices.

Two pieces:

* :class:`RetouchedTCBF` — a drop-in
  :class:`~repro.core.tcbf.TemporalCountingBloomFilter` whose cleared
  positions are scrubbed back to zero after every mutation, so all
  query/merge/decay/serialisation paths behave as if those bits did not
  exist.
* :func:`plan_retouch` — the lineage-driven planner: given the keys
  that caused false injections and the keys the network actually wants,
  pick for each FP key the cheapest single bit to clear (the one shared
  with the fewest interests), subject to a sacrifice budget.

The end-to-end workflow (profile -> ``bsub analyze`` -> plan -> rerun
with ``--filter retouched:clear=...``) is documented in
``docs/filters.md`` and driven by :mod:`repro.obs.feedback`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from .hashing import HashFamily
from .tcbf import TemporalCountingBloomFilter

__all__ = ["RetouchedTCBF", "RetouchPlan", "plan_retouch"]


class RetouchedTCBF(TemporalCountingBloomFilter):
    """A TCBF with a fixed set of permanently-cleared bit positions.

    Behaves exactly like its parent except that the counters at
    ``cleared_bits`` are forced back to zero after every mutating
    operation (insert, refresh, merge, wire decode).  Decay and queries
    need no special handling: a scrubbed bit is simply an unset bit.

    Keys whose positions include a cleared bit can never produce an
    existential match — that removes the targeted false positives, and
    turns any *sacrificed* interest into a deliberate false negative on
    the relay path (direct consumer delivery is unaffected; consumers
    match on their own interest filters, not the relay).
    """

    __slots__ = ("cleared_bits",)

    def __init__(self, *args, cleared_bits: Iterable[int] = (), **kwargs):
        super().__init__(*args, **kwargs)
        cleared = frozenset(int(b) for b in cleared_bits)
        bad = [b for b in cleared if not 0 <= b < self.family.num_bits]
        if bad:
            raise ValueError(
                f"cleared bits out of range [0, {self.family.num_bits}): "
                f"{sorted(bad)}"
            )
        self.cleared_bits = cleared

    def _scrub(self) -> None:
        """Force every cleared position back to zero."""
        if not self.cleared_bits:
            return
        store = self._store
        for position in self.cleared_bits:
            store.set(position, 0.0)

    # Every mutator funnels through the parent then scrubs, so all
    # query paths (scalar, batch, preference, serialization) inherit
    # retouched semantics without reimplementation.

    def insert(self, key: str) -> None:
        """Insert *key*, then scrub the cleared positions."""
        super().insert(key)
        self._scrub()

    def insert_batch(self, keys) -> None:
        """Insert many keys, then scrub the cleared positions."""
        super().insert_batch(keys)
        self._scrub()

    def refresh(self, key: str) -> None:
        """Refresh *key*'s counters, then scrub the cleared positions."""
        super().refresh(key)
        self._scrub()

    def _combine(self, other, additive: bool) -> None:
        super()._combine(other, additive)
        self._scrub()

    def _set_counter(self, position: int, value: float) -> None:
        super()._set_counter(position, value)
        if position in self.cleared_bits:
            self._store.set(position, 0.0)

    def copy(self) -> "RetouchedTCBF":
        """An independent deep copy preserving the cleared set."""
        clone = RetouchedTCBF(
            family=self.family,
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            time=self._time,
            backend=self.backend,
            cleared_bits=self.cleared_bits,
        )
        clone._store = self._store.copy()
        clone._merged = self._merged
        clone.version = self.version
        return clone

    def __repr__(self) -> str:
        base = super().__repr__()
        return f"{base[:-1]}, cleared={sorted(self.cleared_bits)})"


@dataclass(frozen=True)
class RetouchPlan:
    """The outcome of a lineage-driven retouching pass.

    Attributes
    ----------
    cleared_bits:
        Bit positions to clear (feed to ``RetouchedTCBF(cleared_bits=...)``
        or a ``retouched:clear=...`` filter spec).
    sacrificed_keys:
        Wanted keys that share a cleared bit — these become deliberate
        relay-path false negatives.
    neutralised_keys:
        FP keys that can no longer match once the bits are cleared.
    """

    cleared_bits: FrozenSet[int]
    sacrificed_keys: FrozenSet[str]
    neutralised_keys: FrozenSet[str]

    def spec_params(self) -> str:
        """The ``clear=...`` parameter string for a filter spec.

        Empty for an empty plan (check :meth:`is_empty` before building
        a ``retouched:...`` spec from it).
        """
        if not self.cleared_bits:
            return ""
        return "clear=" + "+".join(str(b) for b in sorted(self.cleared_bits))

    def is_empty(self) -> bool:
        """True when the plan clears nothing."""
        return not self.cleared_bits


def plan_retouch(
    fp_keys: Iterable[str],
    protected_keys: Iterable[str],
    family: HashFamily,
    max_sacrifice: int = 0,
    max_cleared: Optional[int] = None,
) -> RetouchPlan:
    """Choose bits to clear so *fp_keys* stop matching, greedily.

    For each FP key (processed in sorted order for determinism) the
    planner picks the key's bit shared with the *fewest* not-yet
    -sacrificed protected keys — ties broken by bit index — and clears
    it if doing so keeps the total number of sacrificed protected keys
    within ``max_sacrifice``.  FP keys already covered by an earlier
    cleared bit cost nothing.

    Note that an FP key which actually caused a relay false injection
    has *all* its bits covered by protected-key bits (that is why it
    matched), so with ``max_sacrifice=0`` such keys are skipped — a
    useful retouch for live FPs always trades away some interests.

    Parameters
    ----------
    fp_keys:
        Keys attributed as relay-filter false positives (or candidates).
    protected_keys:
        Keys the network wants delivered (announced interests).
    family:
        The relay filters' hash family (positions must match).
    max_sacrifice:
        Maximum number of protected keys the plan may sacrifice.
    max_cleared:
        Optional cap on how many bits may be cleared.
    """
    if max_sacrifice < 0:
        raise ValueError(f"max_sacrifice must be >= 0, got {max_sacrifice}")
    protected = sorted(set(protected_keys))
    targets = sorted(set(fp_keys) - set(protected))

    bit_users: dict = {}
    for key in protected:
        for bit in family.distinct_positions(key):
            bit_users.setdefault(bit, set()).add(key)

    cleared: set = set()
    sacrificed: set = set()
    neutralised: set = set()
    for key in targets:
        bits = family.distinct_positions(key)
        if any(b in cleared for b in bits):
            neutralised.add(key)
            continue
        if max_cleared is not None and len(cleared) >= max_cleared:
            break
        best_bit = min(
            bits,
            key=lambda b: (len(bit_users.get(b, set()) - sacrificed), b),
        )
        cost_keys = bit_users.get(best_bit, set()) - sacrificed
        if cost_keys and len(sacrificed) + len(cost_keys) > max_sacrifice:
            continue
        cleared.add(best_bit)
        sacrificed |= cost_keys
        neutralised.add(key)
    return RetouchPlan(
        cleared_bits=frozenset(cleared),
        sacrificed_keys=frozenset(sacrificed),
        neutralised_keys=frozenset(neutralised),
    )
