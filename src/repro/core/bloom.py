"""Classic Bloom filter (paper Sec. III).

A Bloom filter for a set of keys is an ``m``-bit vector; inserting a key
sets the ``k`` bits chosen by the hash family, and a membership query
checks that all ``k`` bits are set.  Queries for inserted keys always
return ``True``; queries for other keys return ``True`` with the
false-positive rate of Eq. 1.

In B-SUB the plain Bloom filter is the *wire format* for interest
exchange in producer/consumer meetings (Sec. V-D): the counters of a
TCBF are "ripped off" before transmission, leaving exactly this
structure.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Set

from .hashing import DEFAULT_SEED, HashFamily

__all__ = ["BloomFilter"]


class BloomFilter:
    """A classic ``m``-bit Bloom filter with ``k`` hash functions.

    Parameters
    ----------
    num_bits:
        Length ``m`` of the bit-vector (paper default: 256).
    num_hashes:
        Number of hash functions ``k`` (paper default: 4).
    seed:
        Hash seed; all filters that interoperate must share it.
    family:
        Optionally pass an existing :class:`HashFamily` instead of
        ``num_bits``/``num_hashes``/``seed``.
    """

    __slots__ = ("family", "_bits")

    def __init__(
        self,
        num_bits: int = 256,
        num_hashes: int = 4,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
    ):
        self.family = family if family is not None else HashFamily(
            num_hashes, num_bits, seed
        )
        self._bits: Set[int] = set()

    # -- basic properties -------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Length ``m`` of the bit-vector."""
        return self.family.num_bits

    @property
    def num_hashes(self) -> int:
        """Number of hash functions ``k``."""
        return self.family.num_hashes

    @property
    def set_bits(self) -> frozenset:
        """Positions of the currently set bits."""
        return frozenset(self._bits)

    def bit(self, position: int) -> bool:
        """Whether the bit at *position* is set."""
        if not 0 <= position < self.num_bits:
            raise IndexError(f"bit position {position} out of range")
        return position in self._bits

    def fill_ratio(self) -> float:
        """Fill ratio FR = (# set bits) / m (paper Eq. 3's measured form)."""
        return len(self._bits) / self.num_bits

    def is_empty(self) -> bool:
        """True if no bit is set."""
        return not self._bits

    def __len__(self) -> int:
        """Number of set bits."""
        return len(self._bits)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._bits))

    # -- mutation ----------------------------------------------------------

    def insert(self, key: str) -> None:
        """Insert *key*, setting its ``k`` hashed bits."""
        self._bits.update(self.family.positions(key))

    def insert_all(self, keys: Iterable[str]) -> None:
        """Insert every key in *keys*."""
        for key in keys:
            self.insert(key)

    def merge(self, other: "BloomFilter") -> None:
        """Bit-wise OR *other* into this filter (paper Sec. III)."""
        self._check_compatible(other)
        self._bits.update(other._bits)

    def clear(self) -> None:
        """Reset to the empty filter."""
        self._bits.clear()

    # -- queries -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query(self, key: str) -> bool:
        """Membership query: True iff all of *key*'s bits are set.

        Subject to false positives (Eq. 1); never false negatives.
        """
        return all(p in self._bits for p in self.family.positions(key))

    def query_all(self, keys: Iterable[str]) -> List[str]:
        """The subset of *keys* for which :meth:`query` returns True."""
        return [key for key in keys if self.query(key)]

    # -- construction helpers ----------------------------------------------

    @classmethod
    def of(
        cls,
        keys: Iterable[str],
        num_bits: int = 256,
        num_hashes: int = 4,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
    ) -> "BloomFilter":
        """Build a filter containing every key in *keys*."""
        bf = cls(num_bits, num_hashes, seed, family=family)
        bf.insert_all(keys)
        return bf

    def copy(self) -> "BloomFilter":
        """An independent copy sharing the hash family."""
        clone = BloomFilter(family=self.family)
        clone._bits = set(self._bits)
        return clone

    @classmethod
    def from_bits(cls, bits: Iterable[int], family: HashFamily) -> "BloomFilter":
        """Rebuild a filter from explicit set-bit positions.

        Used when decoding the compact wire format (Sec. VI-C).
        """
        bf = cls(family=family)
        for position in bits:
            if not 0 <= position < family.num_bits:
                raise ValueError(f"bit position {position} out of range")
            bf._bits.add(position)
        return bf

    # -- misc ----------------------------------------------------------------

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """A new filter equal to the merge of the two operands."""
        result = self.copy()
        result.merge(other)
        return result

    def _check_compatible(self, other: "BloomFilter") -> None:
        if not self.family.compatible_with(other.family):
            raise ValueError(
                "cannot combine filters with different hash families: "
                f"{self.family!r} vs {other.family!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return self.family == other.family and self._bits == other._bits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self.num_bits}, k={self.num_hashes}, "
            f"set_bits={len(self._bits)})"
        )
