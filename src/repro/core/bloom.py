"""Classic Bloom filter (paper Sec. III).

A Bloom filter for a set of keys is an ``m``-bit vector; inserting a key
sets the ``k`` bits chosen by the hash family, and a membership query
checks that all ``k`` bits are set.  Queries for inserted keys always
return ``True``; queries for other keys return ``True`` with the
false-positive rate of Eq. 1.

In B-SUB the plain Bloom filter is the *wire format* for interest
exchange in producer/consumer meetings (Sec. V-D): the counters of a
TCBF are "ripped off" before transmission, leaving exactly this
structure.

Bits live behind the :mod:`repro.core.backends` seam (``dict`` = the
original set of positions, ``array`` = a dense boolean vector), and the
batch APIs (:meth:`BloomFilter.insert_batch`,
:meth:`BloomFilter.query_batch`) answer many keys per call — the hot
path for broker message matching.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from .backends import make_bit_store, resolve_backend
from .hashing import DEFAULT_SEED, HashFamily
from .params import resolve_param

__all__ = ["BloomFilter"]


class BloomFilter:
    """A classic ``m``-bit Bloom filter with ``k`` hash functions.

    Parameters
    ----------
    num_bits:
        Length ``m`` of the bit-vector (paper default: 256).
    num_hashes:
        Number of hash functions ``k`` (paper default: 4).
    seed:
        Hash seed; all filters that interoperate must share it.
    family:
        Optionally pass an existing :class:`HashFamily` instead of
        ``num_bits``/``num_hashes``/``seed``.
    backend:
        ``"dict"`` or ``"array"`` bit storage (``None`` -> the process
        default, see :mod:`repro.core.backends`).
    m, k:
        Keyword-only paper-notation aliases for ``num_bits`` /
        ``num_hashes``; passing both spellings is a ``TypeError``.
    """

    __slots__ = ("family", "backend", "_store")

    def __init__(
        self,
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        backend: Optional[str] = None,
        *,
        m: Optional[int] = None,
        k: Optional[int] = None,
    ):
        num_bits = resolve_param("num_bits", num_bits, "m", m, 256)
        num_hashes = resolve_param("num_hashes", num_hashes, "k", k, 4)
        self.family = family if family is not None else HashFamily(
            num_hashes, num_bits, seed
        )
        self.backend = resolve_backend(backend)
        self._store = make_bit_store(self.backend, self.family.num_bits)

    # -- basic properties -------------------------------------------------

    @property
    def num_bits(self) -> int:
        """Length ``m`` of the bit-vector."""
        return self.family.num_bits

    @property
    def num_hashes(self) -> int:
        """Number of hash functions ``k``."""
        return self.family.num_hashes

    @property
    def set_bits(self) -> frozenset:
        """Positions of the currently set bits."""
        return frozenset(self._store.positions())

    def bit(self, position: int) -> bool:
        """Whether the bit at *position* is set."""
        if not 0 <= position < self.num_bits:
            raise IndexError(f"bit position {position} out of range")
        return self._store.contains(position)

    def fill_ratio(self) -> float:
        """Fill ratio FR = (# set bits) / m (paper Eq. 3's measured form)."""
        return self._store.count() / self.num_bits

    def is_empty(self) -> bool:
        """True if no bit is set."""
        return self._store.is_empty()

    def __len__(self) -> int:
        """Number of set bits."""
        return self._store.count()

    def __iter__(self) -> Iterator[int]:
        return iter(self._store.positions())

    # -- mutation ----------------------------------------------------------

    def insert(self, key: str) -> None:
        """Insert *key*, setting its ``k`` hashed bits."""
        self._store.add(self.family.positions(key))

    def insert_all(self, keys: Iterable[str]) -> None:
        """Insert every key in *keys*."""
        for key in keys:
            self.insert(key)

    def insert_batch(self, keys: Sequence[str]) -> None:
        """Insert many keys with one batched hash + bit-set pass."""
        keys = list(keys)
        if not keys:
            return
        self._store.add_rows(self.family.positions_batch(keys))

    def merge(self, other: "BloomFilter") -> None:
        """Bit-wise OR *other* into this filter (paper Sec. III)."""
        self._check_compatible(other)
        self._store.update_from(other._store)

    def clear(self) -> None:
        """Reset to the empty filter."""
        self._store.clear()

    # -- queries -----------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query(self, key: str) -> bool:
        """Membership query: True iff all of *key*'s bits are set.

        Subject to false positives (Eq. 1); never false negatives.
        """
        return self._store.test_all(self.family.positions(key))

    def query_all(self, keys: Iterable[str]) -> List[str]:
        """The subset of *keys* for which :meth:`query` returns True."""
        keys = list(keys)
        hits = self.query_batch(keys)
        return [key for key, hit in zip(keys, hits) if hit]

    def query_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Membership queries for many keys as one boolean vector."""
        return self._store.test_rows(self.family.positions_batch(list(keys)))

    # -- construction helpers ----------------------------------------------

    @classmethod
    def of(
        cls,
        keys: Iterable[str],
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        backend: Optional[str] = None,
        *,
        m: Optional[int] = None,
        k: Optional[int] = None,
    ) -> "BloomFilter":
        """Build a filter containing every key in *keys*."""
        bf = cls(num_bits, num_hashes, seed, family=family, backend=backend,
                 m=m, k=k)
        bf.insert_batch(list(keys))
        return bf

    def copy(self) -> "BloomFilter":
        """An independent copy sharing the hash family."""
        clone = BloomFilter(family=self.family, backend=self.backend)
        clone._store = self._store.copy()
        return clone

    @classmethod
    def from_bits(
        cls,
        bits: Iterable[int],
        family: HashFamily,
        backend: Optional[str] = None,
    ) -> "BloomFilter":
        """Rebuild a filter from explicit set-bit positions.

        Used when decoding the compact wire format (Sec. VI-C).
        """
        bf = cls(family=family, backend=backend)
        positions = list(bits)
        for position in positions:
            if not 0 <= position < family.num_bits:
                raise ValueError(f"bit position {position} out of range")
        if positions:
            bf._store.add(positions)
        return bf

    # -- misc ----------------------------------------------------------------

    def union(self, other: "BloomFilter") -> "BloomFilter":
        """A new filter equal to the merge of the two operands."""
        result = self.copy()
        result.merge(other)
        return result

    def _check_compatible(self, other: "BloomFilter") -> None:
        if not self.family.compatible_with(other.family):
            raise ValueError(
                "cannot combine filters with different hash families: "
                f"{self.family!r} vs {other.family!r}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return self.family == other.family and self.set_bits == other.set_bits

    def __repr__(self) -> str:
        return (
            f"BloomFilter(m={self.num_bits}, k={self.num_hashes}, "
            f"set_bits={len(self)})"
        )
