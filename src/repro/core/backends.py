"""Storage backends for the filter implementations.

The filter classes (:class:`~repro.core.bloom.BloomFilter`,
:class:`~repro.core.counting_bloom.CountingBloomFilter`,
:class:`~repro.core.tcbf.TemporalCountingBloomFilter`) describe the
paper's *semantics*; this module provides the *storage* behind them
through a common seam:

* ``dict`` — the original sparse mapping ``position -> counter``
  (or a ``set`` of positions for the plain BF).  Cheap for single-key
  operations on mostly-empty filters; every bulk operation is a Python
  loop.
* ``array`` — a dense :mod:`numpy` vector of length ``m``.  Decay is a
  single subtract-and-clip, merges are elementwise add/max, and the
  batch APIs answer many keys with one fancy-indexing pass over an
  ``(n_keys, k)`` position matrix.

Both backends are **observationally identical**: they perform the same
IEEE-754 arithmetic in the same per-position order, so existential and
preferential queries, counters, and serialised forms agree bit for bit
(a property-based test pins this down).  Select the default backend
process-wide with the ``BSUB_FILTER_BACKEND`` environment variable or
per filter with the ``backend=`` constructor argument.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "BACKENDS",
    "default_backend",
    "resolve_backend",
    "make_counter_store",
    "make_bit_store",
    "DictCounterStore",
    "ArrayCounterStore",
    "SetBitStore",
    "ArrayBitStore",
]

#: Environment variable overriding the process-wide default backend.
BACKEND_ENV_VAR = "BSUB_FILTER_BACKEND"

#: The recognised backend names.
BACKENDS = ("dict", "array")


def default_backend() -> str:
    """The process-wide default backend (``array`` unless overridden)."""
    backend = os.environ.get(BACKEND_ENV_VAR, "array")
    if backend not in BACKENDS:
        raise ValueError(
            f"{BACKEND_ENV_VAR}={backend!r} is not a valid backend; "
            f"expected one of {BACKENDS}"
        )
    return backend


def resolve_backend(backend: Union[str, None]) -> str:
    """Normalise a ``backend=`` argument (``None`` -> the default)."""
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


# ---------------------------------------------------------------------------
# Counter stores (CBF integer counts, TCBF float lifetimes)
# ---------------------------------------------------------------------------


class DictCounterStore:
    """Sparse ``position -> value`` counters; absent means zero.

    Invariant: only strictly positive values are stored, exactly as the
    original filter implementations kept their dicts.
    """

    __slots__ = ("num_bits", "_map")

    backend = "dict"

    def __init__(self, num_bits: int, integer: bool = False):
        self.num_bits = num_bits
        self._map: Dict[int, float] = {}

    # -- single-position access -------------------------------------------

    def get(self, position: int) -> float:
        return self._map.get(position, 0.0)

    def set(self, position: int, value: float) -> None:
        if value > 0.0:
            self._map[position] = value
        else:
            self._map.pop(position, None)

    # -- bulk mutation ------------------------------------------------------

    def arm(self, positions: Iterable[int], value: float) -> None:
        """Set *value* at every position whose counter is not positive."""
        counters = self._map
        for position in positions:
            if counters.get(position, 0.0) <= 0.0:
                counters[position] = value

    def arm_rows(self, rows: np.ndarray, value: float) -> None:
        counters = self._map
        for row in rows.tolist():
            for position in row:
                if counters.get(position, 0.0) <= 0.0:
                    counters[position] = value

    def assign(self, positions: Iterable[int], value: float) -> None:
        """Unconditionally set *value* at every position (refresh)."""
        for position in positions:
            self._map[position] = value

    def add_at(self, positions: Iterable[int], delta: float) -> None:
        """Add *delta* at every position, dropping entries at zero (CBF)."""
        counters = self._map
        for position in positions:
            updated = counters.get(position, 0) + delta
            if updated:
                counters[position] = updated
            else:
                counters.pop(position, None)

    def decay(self, amount: float) -> None:
        self._map = {
            position: value - amount
            for position, value in self._map.items()
            if value > amount
        }

    def combine(self, other: "CounterStore", lag: float, additive: bool) -> None:
        """Fold *other*'s counters (each reduced by *lag*) into self."""
        mine = self._map
        for position, value in other.nonzero_items():
            decayed = value - lag
            if decayed <= 0.0:
                continue
            if additive:
                mine[position] = mine.get(position, 0.0) + decayed
            else:
                mine[position] = max(mine.get(position, 0.0), decayed)

    def clear(self) -> None:
        self._map.clear()

    # -- queries ------------------------------------------------------------

    def query(self, positions: Sequence[int]) -> bool:
        counters = self._map
        return all(counters.get(p, 0.0) > 0.0 for p in positions)

    def min(self, positions: Sequence[int]) -> float:
        counters = self._map
        return min(counters.get(p, 0.0) for p in positions)

    def query_rows(self, rows: np.ndarray) -> np.ndarray:
        counters = self._map
        return np.fromiter(
            (
                all(counters.get(p, 0.0) > 0.0 for p in row)
                for row in rows.tolist()
            ),
            dtype=bool,
            count=len(rows),
        )

    def min_rows(self, rows: np.ndarray) -> np.ndarray:
        counters = self._map
        return np.fromiter(
            (min(counters.get(p, 0.0) for p in row) for row in rows.tolist()),
            dtype=np.float64,
            count=len(rows),
        )

    # -- introspection -----------------------------------------------------

    def nonzero_items(self) -> Iterable[Tuple[int, float]]:
        return self._map.items()

    def items(self) -> List[Tuple[int, float]]:
        return sorted(self._map.items())

    def as_dict(self) -> Dict[int, float]:
        return dict(self._map)

    def positions(self) -> List[int]:
        return sorted(self._map)

    def count(self) -> int:
        return len(self._map)

    def is_empty(self) -> bool:
        return not self._map

    def copy(self) -> "DictCounterStore":
        clone = DictCounterStore(self.num_bits)
        clone._map = dict(self._map)
        return clone


class ArrayCounterStore:
    """Dense numpy counters; a bit is set while its counter is positive.

    The counter vector never holds negative values, mirroring the dict
    store's only-positive-entries invariant at the arithmetic level.
    """

    __slots__ = ("num_bits", "_integer", "_array")

    backend = "array"

    def __init__(self, num_bits: int, integer: bool = False):
        self.num_bits = num_bits
        self._integer = integer
        self._array = np.zeros(
            num_bits, dtype=np.int64 if integer else np.float64
        )

    def _scalar(self, value) -> float:
        return int(value) if self._integer else float(value)

    # -- single-position access -------------------------------------------

    def get(self, position: int) -> float:
        return self._scalar(self._array[position])

    def set(self, position: int, value: float) -> None:
        self._array[position] = value if value > 0.0 else 0.0

    # -- bulk mutation ------------------------------------------------------

    def arm(self, positions: Sequence[int], value: float) -> None:
        array = self._array
        index = np.asarray(positions, dtype=np.int64)
        unset = array[index] <= 0.0
        if unset.any():
            array[index[unset]] = value

    def arm_rows(self, rows: np.ndarray, value: float) -> None:
        array = self._array
        index = rows.reshape(-1)
        unset = array[index] <= 0.0
        if unset.any():
            array[index[unset]] = value

    def assign(self, positions: Sequence[int], value: float) -> None:
        self._array[np.asarray(positions, dtype=np.int64)] = value

    def add_at(self, positions: Sequence[int], delta: float) -> None:
        np.add.at(self._array, np.asarray(positions, dtype=np.int64), delta)

    def decay(self, amount: float) -> None:
        array = self._array
        surviving = array > amount
        np.subtract(array, amount, out=array, where=surviving)
        array[~surviving] = 0.0

    def combine(self, other: "CounterStore", lag: float, additive: bool) -> None:
        array = self._array
        if isinstance(other, ArrayCounterStore):
            theirs = other._array
            contribution = theirs - lag
            alive = (theirs > 0.0) & (contribution > 0.0)
            if additive:
                array[alive] += contribution[alive]
            else:
                array[alive] = np.maximum(array[alive], contribution[alive])
            return
        for position, value in other.nonzero_items():
            decayed = value - lag
            if decayed <= 0.0:
                continue
            if additive:
                array[position] += decayed
            else:
                array[position] = max(self._scalar(array[position]), decayed)

    def clear(self) -> None:
        self._array[:] = 0

    # -- queries ------------------------------------------------------------

    def query(self, positions: Sequence[int]) -> bool:
        return bool((self._array[positions] > 0.0).all())

    def min(self, positions: Sequence[int]) -> float:
        return self._scalar(self._array[positions].min())

    def query_rows(self, rows: np.ndarray) -> np.ndarray:
        return (self._array[rows] > 0.0).all(axis=1)

    def min_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._array[rows].min(axis=1)

    # -- introspection -----------------------------------------------------

    def nonzero_items(self) -> Iterable[Tuple[int, float]]:
        positions = np.flatnonzero(self._array > 0.0)
        values = self._array[positions]
        return [
            (int(p), self._scalar(v)) for p, v in zip(positions, values)
        ]

    def items(self) -> List[Tuple[int, float]]:
        return list(self.nonzero_items())  # flatnonzero is already sorted

    def as_dict(self) -> Dict[int, float]:
        return dict(self.nonzero_items())

    def positions(self) -> List[int]:
        return [int(p) for p in np.flatnonzero(self._array > 0.0)]

    def count(self) -> int:
        return int(np.count_nonzero(self._array > 0.0))

    def is_empty(self) -> bool:
        return not (self._array > 0.0).any()

    def copy(self) -> "ArrayCounterStore":
        clone = ArrayCounterStore(self.num_bits, integer=self._integer)
        clone._array = self._array.copy()
        return clone


CounterStore = Union[DictCounterStore, ArrayCounterStore]


def make_counter_store(
    backend: Union[str, None], num_bits: int, integer: bool = False
) -> CounterStore:
    """Build a counter store for *backend* (``None`` -> default)."""
    if resolve_backend(backend) == "array":
        return ArrayCounterStore(num_bits, integer=integer)
    return DictCounterStore(num_bits, integer=integer)


# ---------------------------------------------------------------------------
# Bit stores (plain Bloom filter)
# ---------------------------------------------------------------------------


class SetBitStore:
    """The original ``set``-of-positions bit-vector."""

    __slots__ = ("num_bits", "_bits")

    backend = "dict"

    def __init__(self, num_bits: int):
        self.num_bits = num_bits
        self._bits: set = set()

    def add(self, positions: Iterable[int]) -> None:
        self._bits.update(positions)

    def add_rows(self, rows: np.ndarray) -> None:
        self._bits.update(rows.reshape(-1).tolist())

    def contains(self, position: int) -> bool:
        return position in self._bits

    def test_all(self, positions: Sequence[int]) -> bool:
        bits = self._bits
        return all(p in bits for p in positions)

    def test_rows(self, rows: np.ndarray) -> np.ndarray:
        bits = self._bits
        return np.fromiter(
            (all(p in bits for p in row) for row in rows.tolist()),
            dtype=bool,
            count=len(rows),
        )

    def update_from(self, other: "BitStore") -> None:
        self._bits.update(other.positions())

    def positions(self) -> List[int]:
        return sorted(self._bits)

    def count(self) -> int:
        return len(self._bits)

    def is_empty(self) -> bool:
        return not self._bits

    def clear(self) -> None:
        self._bits.clear()

    def copy(self) -> "SetBitStore":
        clone = SetBitStore(self.num_bits)
        clone._bits = set(self._bits)
        return clone


class ArrayBitStore:
    """Dense boolean bit-vector with vectorized membership tests."""

    __slots__ = ("num_bits", "_mask")

    backend = "array"

    def __init__(self, num_bits: int):
        self.num_bits = num_bits
        self._mask = np.zeros(num_bits, dtype=bool)

    def add(self, positions: Sequence[int]) -> None:
        self._mask[np.asarray(positions, dtype=np.int64)] = True

    def add_rows(self, rows: np.ndarray) -> None:
        self._mask[rows.reshape(-1)] = True

    def contains(self, position: int) -> bool:
        return bool(self._mask[position])

    def test_all(self, positions: Sequence[int]) -> bool:
        return bool(self._mask[positions].all())

    def test_rows(self, rows: np.ndarray) -> np.ndarray:
        return self._mask[rows].all(axis=1)

    def update_from(self, other: "BitStore") -> None:
        if isinstance(other, ArrayBitStore):
            self._mask |= other._mask
        else:
            positions = other.positions()
            if positions:
                self._mask[np.asarray(positions, dtype=np.int64)] = True

    def positions(self) -> List[int]:
        return [int(p) for p in np.flatnonzero(self._mask)]

    def count(self) -> int:
        return int(np.count_nonzero(self._mask))

    def is_empty(self) -> bool:
        return not self._mask.any()

    def clear(self) -> None:
        self._mask[:] = False

    def copy(self) -> "ArrayBitStore":
        clone = ArrayBitStore(self.num_bits)
        clone._mask = self._mask.copy()
        return clone


BitStore = Union[SetBitStore, ArrayBitStore]


def make_bit_store(backend: Union[str, None], num_bits: int) -> BitStore:
    """Build a bit store for *backend* (``None`` -> default)."""
    if resolve_backend(backend) == "array":
        return ArrayBitStore(num_bits)
    return SetBitStore(num_bits)
