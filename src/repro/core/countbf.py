"""countBF-style two-dimensional counting filter (PAPERS.md: Nayak &
Patgiri, "countBF: A General-purpose High Accuracy and Space Efficient
Counting Bloom Filter").

Where the paper's TCBF hashes every key into one flat ``m``-bit vector,
countBF arranges the counters as a 2D grid and derives each cell from a
*pair* of independent hashes — one over the rows, one over the columns.
The resulting collision structure differs from the flat layout (two
keys collide in a cell only when both their row and column draws agree),
which is the accuracy-per-bit argument of the countBF paper.

:class:`CountBF2D` adapts that layout to B-SUB's relay-filter contract:

* **temporal semantics** — cells decay at the configured DF exactly like
  TCBF counters (lazy decay via :meth:`advance`);
* **counting semantics** — :meth:`insert` *adds* ``C`` to each cell and
  :meth:`delete` subtracts it (floored at zero, so counters can never
  underflow — a property test pins this), unlike the TCBF's arm-to-``C``
  insertion;
* **merge semantics** — :meth:`a_merge` sums cells, :meth:`m_merge`
  takes the maximum, with the same clock alignment and lag compensation
  as the TCBF;
* **announcements** — :meth:`announce` reinforces a consumer's keys
  additively, mirroring :class:`~repro.pubsub.exact.ExactInterestRelay`.

Cells live behind the same :mod:`repro.core.backends` storage seam as
every other filter, so the ``dict`` and ``array`` stores stay
bit-identical here too.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .analysis import filter_memory_bytes
from .backends import make_counter_store, resolve_backend
from .hashing import DEFAULT_SEED, HashFamily
from .tcbf import DEFAULT_INITIAL_VALUE

__all__ = ["CountBF2D", "DEFAULT_ROWS"]

#: Default row count: a 16x16 grid matches the paper's m = 256 budget.
DEFAULT_ROWS = 16

# Seed salts keeping the row/column hash draws independent of each
# other and of the network's flat-filter family.
_ROW_SALT = 0x2D11
_COL_SALT = 0x7A2F


class CountBF2D:
    """A temporal counting filter over a ``rows x cols`` cell grid.

    Parameters
    ----------
    num_bits:
        Total cell budget; the grid is ``rows x ceil(num_bits / rows)``
        cells (slightly more than *num_bits* when it does not divide
        evenly).
    num_hashes:
        Independent (row, column) draws per key.
    rows:
        Grid height (>= 2).
    seed:
        Base seed; the row and column hash families are salted variants
        so two nodes sharing a seed agree on every cell.
    initial_value, decay_factor, time, backend:
        As for :class:`~repro.core.tcbf.TemporalCountingBloomFilter`.
    """

    __slots__ = (
        "rows",
        "cols",
        "num_hashes",
        "seed",
        "initial_value",
        "decay_factor",
        "backend",
        "version",
        "_row_family",
        "_col_family",
        "_store",
        "_time",
    )

    def __init__(
        self,
        num_bits: int = 256,
        num_hashes: int = 4,
        rows: int = DEFAULT_ROWS,
        seed: int = DEFAULT_SEED,
        initial_value: float = DEFAULT_INITIAL_VALUE,
        decay_factor: float = 0.0,
        time: float = 0.0,
        backend: Optional[str] = None,
    ):
        if rows < 2:
            raise ValueError(f"rows must be >= 2, got {rows}")
        if num_bits < 2 * rows:
            raise ValueError(
                f"num_bits={num_bits} leaves fewer than 2 columns for "
                f"rows={rows}"
            )
        if initial_value <= 0:
            raise ValueError(f"initial_value must be positive, got {initial_value}")
        if decay_factor < 0:
            raise ValueError(f"decay_factor must be >= 0, got {decay_factor}")
        self.rows = int(rows)
        self.cols = int(math.ceil(num_bits / rows))
        self.num_hashes = int(num_hashes)
        self.seed = int(seed)
        self.initial_value = float(initial_value)
        self.decay_factor = float(decay_factor)
        self.backend = resolve_backend(backend)
        self._row_family = HashFamily(num_hashes, self.rows, seed ^ _ROW_SALT)
        self._col_family = HashFamily(num_hashes, self.cols, seed ^ _COL_SALT)
        self._store = make_counter_store(self.backend, self.num_cells)
        self._time = float(time)
        #: Mutation counter (wire-size memoisation, as on the TCBF).
        self.version = 0

    # -- geometry ----------------------------------------------------------

    @property
    def num_cells(self) -> int:
        """Total cells in the grid (``rows * cols``)."""
        return self.rows * self.cols

    @property
    def num_bits(self) -> int:
        """Alias for :attr:`num_cells` (uniform with the flat filters)."""
        return self.num_cells

    @property
    def time(self) -> float:
        """The filter's current synchronisation time."""
        return self._time

    def _cells(self, key: str) -> List[int]:
        """The distinct flat cell indices of *key*, sorted.

        Returned as a list: the array counter store indexes numpy with
        the sequence directly, and a tuple would be read as a
        multi-dimensional index.
        """
        rows = self._row_family.positions(key)
        cols = self._col_family.positions(key)
        return sorted({r * self.cols + c for r, c in zip(rows, cols)})

    def _cell_rows(self, keys: Sequence[str]) -> np.ndarray:
        """(n, k) flat cell matrix for many keys (duplicates possible)."""
        keys = list(keys)
        rows = self._row_family.positions_batch(keys)
        cols = self._col_family.positions_batch(keys)
        return rows * self.cols + cols

    # -- decay / clock -----------------------------------------------------

    def decay(self, amount: float) -> None:
        """Subtract *amount* from every set cell, clearing cells at 0."""
        if amount < 0:
            raise ValueError(f"decay amount must be >= 0, got {amount}")
        if amount == 0 or self._store.is_empty():
            return
        self.version += 1
        self._store.decay(amount)

    def advance(self, now: float) -> None:
        """Advance the clock to *now*, applying lazy decay."""
        if now < self._time:
            raise ValueError(
                f"cannot advance backwards: filter at t={self._time}, got {now}"
            )
        elapsed = now - self._time
        self._time = now
        if self.decay_factor > 0 and elapsed > 0:
            self.decay(self.decay_factor * elapsed)

    # -- mutation ----------------------------------------------------------

    def insert(self, key: str) -> None:
        """Add ``C`` to each of *key*'s cells (counting-filter insert)."""
        self.version += 1
        self._store.add_at(self._cells(key), self.initial_value)

    def insert_batch(self, keys: Sequence[str]) -> None:
        """Insert many keys (same additive semantics as :meth:`insert`)."""
        for key in keys:
            self.insert(key)

    def delete(self, key: str) -> None:
        """Subtract ``C`` from each of *key*'s cells, floored at zero.

        Raises
        ------
        KeyError
            If *key* is not (apparently) present — deleting an absent
            key is the classic counting-filter misuse and is refused
            rather than silently corrupting shared cells.
        """
        cells = self._cells(key)
        if self._store.min(cells) <= 0.0:
            raise KeyError(f"cannot delete absent key {key!r}")
        self.version += 1
        store = self._store
        for cell in cells:
            store.set(cell, max(0.0, store.get(cell) - self.initial_value))

    def announce(self, keys) -> None:
        """A-merge a consumer's interest announcement (cells += ``C``).

        The duck-typed announcement hook the protocol prefers over
        building a TCBF operand (countBF cells are not TCBF bits, so a
        cross-representation merge would be meaningless).
        """
        self.version += 1
        store = self._store
        for key in keys:
            store.add_at(self._cells(key), self.initial_value)

    # -- merging -----------------------------------------------------------

    def a_merge(self, other: "CountBF2D") -> None:
        """Additive merge: sum cells (consumer -> broker path)."""
        self._combine(other, additive=True)

    def m_merge(self, other: "CountBF2D") -> None:
        """Maximum merge: max cells (broker <-> broker path)."""
        self._combine(other, additive=False)

    def _combine(self, other: "CountBF2D", additive: bool) -> None:
        self._check_compatible(other)
        if other._time > self._time:
            self.advance(other._time)
        lag = other.decay_factor * (self._time - other._time)
        self.version += 1
        self._store.combine(other._store, lag, additive)

    def _check_compatible(self, other: "CountBF2D") -> None:
        if not isinstance(other, CountBF2D):
            raise TypeError(
                f"can only merge another CountBF2D, got {type(other).__name__}"
            )
        if (
            self.rows != other.rows
            or self.cols != other.cols
            or self.seed != other.seed
            or self.num_hashes != other.num_hashes
        ):
            raise ValueError(
                "cannot combine countBF grids with different geometry: "
                f"{self.rows}x{self.cols}/k={self.num_hashes} vs "
                f"{other.rows}x{other.cols}/k={other.num_hashes}"
            )

    # -- queries -----------------------------------------------------------

    def query(self, key: str) -> bool:
        """Existential query: every cell of *key* is positive."""
        return self._store.query(self._cells(key))

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Existential queries for many keys as one boolean vector."""
        return self._store.query_rows(self._cell_rows(keys))

    def min_counter(self, key: str) -> float:
        """Minimum cell value among *key*'s cells (0 if absent)."""
        return self._store.min(self._cells(key))

    def min_counter_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Minimum cell values for many keys as one float vector."""
        return self._store.min_rows(self._cell_rows(keys))

    def preference(self, key: str, other) -> float:
        """Preferential query with the Sec. IV-A zero-case rule."""
        a = self.min_counter(key)
        b = other.min_counter(key)
        return a if b == 0.0 else a - b

    def preference_batch(self, keys: Sequence[str], other) -> np.ndarray:
        """Batched preferential query against *other*."""
        keys = list(keys)
        a = self.min_counter_batch(keys)
        b = np.asarray(other.min_counter_batch(keys), dtype=np.float64)
        return np.where(b == 0.0, a, a - b)

    # -- introspection -----------------------------------------------------

    def fill_ratio(self) -> float:
        """Set cells / total cells (the Eq. 3 observable for the grid)."""
        return self._store.count() / self.num_cells

    def is_empty(self) -> bool:
        """True when no cell is positive."""
        return self._store.is_empty()

    def __len__(self) -> int:
        """Number of set (positive) cells."""
        return self._store.count()

    def items(self) -> List[Tuple[int, float]]:
        """(flat cell, value) pairs sorted by cell index."""
        return self._store.items()

    def counters(self) -> Dict[int, float]:
        """Snapshot {flat cell: value} of the set cells."""
        return self._store.as_dict()

    def positions(self) -> List[int]:
        """Sorted flat indices of the set cells."""
        return self._store.positions()

    def wire_bytes(self, with_counters: bool = True) -> float:
        """Sec. VI-C-style compact transmission size of the grid."""
        return filter_memory_bytes(
            self._store.count(),
            self.num_cells,
            counters="full" if with_counters else "none",
        )

    def copy(self) -> "CountBF2D":
        """An independent deep copy (same grid, cells, clock)."""
        clone = CountBF2D(
            num_bits=self.num_cells,
            num_hashes=self.num_hashes,
            rows=self.rows,
            seed=self.seed,
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            time=self._time,
            backend=self.backend,
        )
        clone._store = self._store.copy()
        clone.version = self.version
        return clone

    def __repr__(self) -> str:
        return (
            f"CountBF2D({self.rows}x{self.cols}, k={self.num_hashes}, "
            f"C={self.initial_value}, DF={self.decay_factor}, "
            f"set_cells={len(self)}, t={self._time})"
        )
