"""Core data structures: Bloom filter family and the TCBF.

This package implements the paper's primary contribution — the Temporal
Counting Bloom Filter (Sec. IV) — together with its classic BF/CBF
background (Sec. III), the closed-form analysis (Sec. III, VI), the
optimal multi-filter allocation (Sec. VI-D), and the compact wire
encoding (Sec. VI-C).
"""

from .analysis import (
    expected_min_collisions,
    expected_set_bits,
    expected_unique_keys,
    false_positive_rate,
    fill_ratio,
    filter_memory_bytes,
    joint_false_positive_rate,
    keys_from_fill_ratio,
    multi_filter_memory_bytes,
    raw_string_memory_bytes,
    recommended_decay_factor,
)
from .allocation import (
    AllocationPlan,
    TCBFCollection,
    plan_allocation,
    plan_allocation_brute,
)
from .backends import BACKENDS, default_backend, resolve_backend
from .bloom import BloomFilter
from .counting_bloom import CountingBloomFilter
from .countbf import CountBF2D
from .filter_zoo import (
    FILTER_BACKENDS,
    FilterBackendSpec,
    decode_filter,
    encode_filter,
    load_keys,
    make_relay_filter,
    parse_filter_spec,
    registered_backends,
)
from .hashing import DEFAULT_SEED, HashFamily
from .retouched import RetouchedTCBF, RetouchPlan, plan_retouch
from .serialization import (
    decode_bloom,
    decode_tcbf,
    encode_bloom,
    encode_tcbf,
    encoded_bloom_size,
    encoded_tcbf_size,
)
from .tcbf import DEFAULT_INITIAL_VALUE, TemporalCountingBloomFilter

__all__ = [
    "AllocationPlan",
    "BACKENDS",
    "BloomFilter",
    "CountBF2D",
    "CountingBloomFilter",
    "DEFAULT_INITIAL_VALUE",
    "DEFAULT_SEED",
    "FILTER_BACKENDS",
    "FilterBackendSpec",
    "HashFamily",
    "RetouchPlan",
    "RetouchedTCBF",
    "TCBFCollection",
    "TemporalCountingBloomFilter",
    "decode_bloom",
    "decode_filter",
    "decode_tcbf",
    "default_backend",
    "encode_bloom",
    "encode_filter",
    "encode_tcbf",
    "encoded_bloom_size",
    "encoded_tcbf_size",
    "expected_min_collisions",
    "expected_set_bits",
    "expected_unique_keys",
    "false_positive_rate",
    "fill_ratio",
    "filter_memory_bytes",
    "joint_false_positive_rate",
    "keys_from_fill_ratio",
    "load_keys",
    "make_relay_filter",
    "multi_filter_memory_bytes",
    "parse_filter_spec",
    "plan_allocation",
    "plan_allocation_brute",
    "plan_retouch",
    "raw_string_memory_bytes",
    "recommended_decay_factor",
    "registered_backends",
    "resolve_backend",
]
