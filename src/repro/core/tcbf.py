"""Temporal Counting Bloom Filter (TCBF) — the paper's primary contribution.

The TCBF (Sec. IV) extends the counting Bloom filter with *temporal*
semantics:

* **Insertion** sets the counters of the key's hashed bits to a fixed
  initial value ``C``; counters that are already set are left unchanged
  ("the results of insertions are always a TCBF with identical counters
  of a value of C").
* **Decaying** constantly decrements every set counter at the *decaying
  factor* (DF); a bit whose counter reaches 0 is reset, so a key that is
  not re-inserted frequently enough is eventually removed.  This is the
  only deletion mechanism — the TCBF "only supports temporal deletion".
* **A-merge** (additive merge) ORs the bit-vectors and *sums* counters;
  used when a consumer reinforces its interests on a broker, so counter
  magnitude encodes contact frequency.
* **M-merge** (maximum merge) ORs the bit-vectors and takes the counter
  *maximum*; used between brokers to prevent the bogus-counter feedback
  loop of Fig. 6.
* **Existential query** — classic BF membership, same FPR as Eq. 1.
* **Preferential query** — for a key ``x`` and filters ``A``, ``B``,
  with ``a = min`` counter of ``x``'s bits in ``A`` and ``b`` likewise in
  ``B``, the preference of ``A`` over ``B`` for ``x`` is ``a - b`` when
  ``b != 0`` and ``a`` when ``b == 0``.  Brokers rank messages for
  forwarding by this value.

The paper's rule "we can only insert a key into a filter that has never
been merged before" is enforced: inserting into a merged filter raises,
and the documented workaround (insert into a fresh TCBF, then merge) is
provided by :meth:`TemporalCountingBloomFilter.with_keys`.

Decay is implemented *lazily*: the filter records the time of its last
synchronisation and applies ``DF × Δt`` on :meth:`advance`.  This is
observationally identical to the paper's continuous decrementing (the
equivalence is covered by tests and an ablation benchmark) but costs
O(set bits) per touch instead of O(set bits) per tick.

Counters live behind the :mod:`repro.core.backends` seam: the ``dict``
backend keeps the original sparse mapping, the ``array`` backend packs
them into a numpy vector so decay, merges, and the batch APIs
(:meth:`insert_batch`, :meth:`query_batch`, :meth:`min_counter_batch`,
:meth:`preference_batch`) run vectorized.  Both backends produce
bit-identical results.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .backends import make_counter_store, resolve_backend
from .bloom import BloomFilter
from .hashing import DEFAULT_SEED, HashFamily
from .params import resolve_param

__all__ = ["TemporalCountingBloomFilter", "DEFAULT_INITIAL_VALUE"]

DEFAULT_INITIAL_VALUE = 50.0  # the paper's C (Sec. VII-A: "C is set to 50")


class TemporalCountingBloomFilter:
    """A TCBF over an ``m``-bit vector with ``k`` hash functions.

    Parameters
    ----------
    num_bits, num_hashes, seed, family:
        Bit-vector geometry and hash family, as for
        :class:`~repro.core.bloom.BloomFilter`.
    initial_value:
        Counter value ``C`` assigned on insertion (paper: 50).
    decay_factor:
        DF — counter units removed per unit of time.  ``0`` disables
        decay (the Fig. 9 "DF = 0" configuration).
    time:
        The filter's notion of "now" at creation; :meth:`advance` moves
        it forward.
    backend:
        ``"dict"`` or ``"array"`` counter storage (``None`` -> the
        process default, see :mod:`repro.core.backends`).
    m, k, df:
        Keyword-only paper-notation aliases for ``num_bits`` /
        ``num_hashes`` / ``decay_factor``; passing both spellings of a
        parameter is a ``TypeError``.
    """

    __slots__ = (
        "family",
        "initial_value",
        "decay_factor",
        "backend",
        "_store",
        "_time",
        "_merged",
        "version",
    )

    def __init__(
        self,
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        initial_value: float = DEFAULT_INITIAL_VALUE,
        decay_factor: Optional[float] = None,
        time: float = 0.0,
        backend: Optional[str] = None,
        *,
        m: Optional[int] = None,
        k: Optional[int] = None,
        df: Optional[float] = None,
    ):
        num_bits = resolve_param("num_bits", num_bits, "m", m, 256)
        num_hashes = resolve_param("num_hashes", num_hashes, "k", k, 4)
        decay_factor = resolve_param("decay_factor", decay_factor, "df", df, 0.0)
        if initial_value <= 0:
            raise ValueError(f"initial_value must be positive, got {initial_value}")
        if decay_factor < 0:
            raise ValueError(f"decay_factor must be >= 0, got {decay_factor}")
        self.family = family if family is not None else HashFamily(
            num_hashes, num_bits, seed
        )
        self.initial_value = float(initial_value)
        self.decay_factor = float(decay_factor)
        self.backend = resolve_backend(backend)
        self._store = make_counter_store(self.backend, self.family.num_bits)
        self._time = float(time)
        self._merged = False
        #: Mutation counter: bumped by every operation that may change
        #: the set bits or counters.  Lets derived quantities (e.g.
        #: encoded wire sizes) be memoised and invalidated cheaply.
        self.version = 0

    # -- basic properties --------------------------------------------------

    @property
    def num_bits(self) -> int:
        return self.family.num_bits

    @property
    def num_hashes(self) -> int:
        return self.family.num_hashes

    @property
    def time(self) -> float:
        """The filter's current synchronisation time."""
        return self._time

    @property
    def merged(self) -> bool:
        """True once the filter has been the target of a merge."""
        return self._merged

    def counter(self, position: int) -> float:
        """Counter value at *position* (0.0 if the bit is unset)."""
        if not 0 <= position < self.num_bits:
            raise IndexError(f"bit position {position} out of range")
        return self._store.get(position)

    def counters(self) -> Dict[int, float]:
        """A snapshot {position: counter} of the set bits."""
        return self._store.as_dict()

    def bit(self, position: int) -> bool:
        """Whether the bit at *position* is set (counter > 0)."""
        return self.counter(position) > 0.0

    def fill_ratio(self) -> float:
        """FR = (# set bits) / m."""
        return self._store.count() / self.num_bits

    def __len__(self) -> int:
        return self._store.count()

    def __iter__(self) -> Iterator[int]:
        return iter(self._store.positions())

    def is_empty(self) -> bool:
        """True when no bit is set."""
        return self._store.is_empty()

    # -- decay ----------------------------------------------------------------

    def decay(self, amount: float) -> None:
        """Subtract *amount* from every set counter, resetting bits at 0.

        This is the paper's decaying primitive expressed as a single
        batched decrement.
        """
        if amount < 0:
            raise ValueError(f"decay amount must be >= 0, got {amount}")
        if amount == 0 or self._store.is_empty():
            return
        self.version += 1
        self._store.decay(amount)

    def advance(self, now: float) -> None:
        """Advance the filter's clock to *now*, applying lazy decay.

        Raises
        ------
        ValueError
            If *now* precedes the filter's current time (time cannot
            run backwards in the trace-driven simulation).
        """
        if now < self._time:
            raise ValueError(
                f"cannot advance backwards: filter at t={self._time}, got {now}"
            )
        elapsed = now - self._time
        self._time = now
        if self.decay_factor > 0 and elapsed > 0:
            self.decay(self.decay_factor * elapsed)

    # -- insertion ----------------------------------------------------------------

    def insert(self, key: str) -> None:
        """Insert *key*: set unset counters to ``C``; leave set ones alone.

        Raises
        ------
        RuntimeError
            If this filter has been merged — per Sec. IV-A, keys may
            only be inserted into a never-merged filter.  Insert into a
            fresh TCBF and merge instead (:meth:`with_keys`).
        """
        if self._merged:
            raise RuntimeError(
                "cannot insert into a merged TCBF; insert into a fresh "
                "filter and A-/M-merge it (paper Sec. IV-A)"
            )
        self.version += 1
        self._store.arm(self.family.distinct_positions(key), self.initial_value)

    def insert_all(self, keys: Iterable[str]) -> None:
        """Insert every key in *keys* (same rules as :meth:`insert`)."""
        for key in keys:
            self.insert(key)

    def insert_batch(self, keys: Sequence[str]) -> None:
        """Insert many keys with one batched hash + arm pass.

        Equivalent to :meth:`insert_all` (insertion is order-independent:
        every newly set counter gets the same ``C``), but hashes the
        keys as a batch and touches the counter storage once.
        """
        if self._merged:
            raise RuntimeError(
                "cannot insert into a merged TCBF; insert into a fresh "
                "filter and A-/M-merge it (paper Sec. IV-A)"
            )
        keys = list(keys)
        if not keys:
            return
        rows = self.family.positions_batch(keys)
        self.version += 1
        self._store.arm_rows(rows, self.initial_value)

    def refresh(self, key: str) -> None:
        """Re-arm *key*'s counters to ``C`` even if already set.

        The paper's consumers re-insert their interests on every broker
        contact; for the *genuine* filter (never merged) a plain insert
        would be a no-op on already-set bits, so refreshing models the
        periodic re-insertion that keeps interests alive under decay.
        """
        if self._merged:
            raise RuntimeError("cannot refresh a merged TCBF")
        self.version += 1
        self._store.assign(self.family.distinct_positions(key), self.initial_value)

    # -- merging ----------------------------------------------------------------

    def a_merge(self, other: "TemporalCountingBloomFilter") -> None:
        """Additive merge: OR bits, *sum* counters (consumer → broker)."""
        self._combine(other, additive=True)

    def m_merge(self, other: "TemporalCountingBloomFilter") -> None:
        """Maximum merge: OR bits, *max* counters (broker ↔ broker)."""
        self._combine(other, additive=False)

    def _combine(self, other: "TemporalCountingBloomFilter", additive: bool) -> None:
        self._check_compatible(other)
        # Bring both operands to a common "now" before combining so that
        # counters are on the same decay timeline.
        if other._time > self._time:
            self.advance(other._time)
        lag = other.decay_factor * (self._time - other._time)
        self.version += 1
        self._store.combine(other._store, lag, additive)
        self._merged = True

    def a_merged(
        self, other: "TemporalCountingBloomFilter"
    ) -> "TemporalCountingBloomFilter":
        """A new filter equal to ``self`` A-merged with *other*."""
        result = self.copy()
        result.a_merge(other)
        return result

    def m_merged(
        self, other: "TemporalCountingBloomFilter"
    ) -> "TemporalCountingBloomFilter":
        """A new filter equal to ``self`` M-merged with *other*."""
        result = self.copy()
        result.m_merge(other)
        return result

    # -- queries ----------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        return self.query(key)

    def query(self, key: str) -> bool:
        """Existential query: all of *key*'s bits set (FPR as Eq. 1)."""
        return self._store.query(self.family.positions(key))

    def query_all(self, keys: Iterable[str]) -> List[str]:
        """The subset of *keys* whose existential query returns True."""
        keys = list(keys)
        hits = self.query_batch(keys)
        return [key for key, hit in zip(keys, hits) if hit]

    def query_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Existential queries for many keys as one boolean vector."""
        return self._store.query_rows(self.family.positions_batch(list(keys)))

    def min_counter(self, key: str) -> float:
        """Minimum counter among *key*'s hashed bits.

        Zero if any bit is unset — i.e. the key is (definitely) absent.
        This is the quantity the preferential query compares.
        """
        return self._store.min(self.family.positions(key))

    def min_counter_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Minimum counters for many keys as one float vector."""
        return self._store.min_rows(self.family.positions_batch(list(keys)))

    def preference(
        self, key: str, other: "TemporalCountingBloomFilter"
    ) -> float:
        """Preferential query P_{self,other}(key) (Sec. IV-A).

        ``a - b`` where ``a``/``b`` are the minimum counters of *key* in
        ``self``/*other*; when ``b == 0`` the preference is ``a`` (the
        other filter knows nothing about the key, so self's evidence
        stands alone).  Positive values mean *self* is the better
        forwarder for the key.
        """
        self._check_compatible(other)
        a = self.min_counter(key)
        b = other.min_counter(key)
        return a if b == 0.0 else a - b

    def preference_batch(self, keys: Sequence[str], other) -> np.ndarray:
        """Preferential queries for many keys as one float vector.

        *other* may be any object exposing ``min_counter_batch`` (a
        TCBF, a :class:`~repro.core.allocation.TCBFCollection`, …).
        """
        if isinstance(other, TemporalCountingBloomFilter):
            self._check_compatible(other)
        keys = list(keys)
        a = self.min_counter_batch(keys)
        b = np.asarray(other.min_counter_batch(keys), dtype=np.float64)
        return np.where(b == 0.0, a, a - b)

    # -- conversion / construction ------------------------------------------------

    def to_bloom(self) -> BloomFilter:
        """Strip the counters, leaving the plain BF wire format (Sec. VI-C)."""
        return BloomFilter.from_bits(
            self._store.positions(), self.family, backend=self.backend
        )

    @classmethod
    def of(
        cls,
        keys: Iterable[str],
        num_bits: Optional[int] = None,
        num_hashes: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        family: Optional[HashFamily] = None,
        initial_value: float = DEFAULT_INITIAL_VALUE,
        decay_factor: Optional[float] = None,
        time: float = 0.0,
        backend: Optional[str] = None,
        *,
        m: Optional[int] = None,
        k: Optional[int] = None,
        df: Optional[float] = None,
    ) -> "TemporalCountingBloomFilter":
        """A fresh TCBF containing every key in *keys*."""
        tcbf = cls(
            num_bits,
            num_hashes,
            seed,
            family=family,
            initial_value=initial_value,
            decay_factor=decay_factor,
            time=time,
            backend=backend,
            m=m,
            k=k,
            df=df,
        )
        tcbf.insert_batch(list(keys))
        return tcbf

    def with_keys(self, keys: Iterable[str], additive: bool = True) -> None:
        """Insert *keys* into this (possibly merged) filter.

        Implements the paper's documented workaround: the keys go into a
        fresh empty TCBF which is then A-merged (default) or M-merged in.
        """
        fresh = TemporalCountingBloomFilter(
            family=self.family,
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            time=self._time,
            backend=self.backend,
        )
        fresh.insert_batch(list(keys))
        if additive:
            self.a_merge(fresh)
        else:
            self.m_merge(fresh)

    def copy(self) -> "TemporalCountingBloomFilter":
        """An independent deep copy (same family, counters, clock)."""
        clone = TemporalCountingBloomFilter(
            family=self.family,
            initial_value=self.initial_value,
            decay_factor=self.decay_factor,
            time=self._time,
            backend=self.backend,
        )
        clone._store = self._store.copy()
        clone._merged = self._merged
        clone.version = self.version
        return clone

    # -- internals ----------------------------------------------------------------

    def _set_counter(self, position: int, value: float) -> None:
        """Directly set one counter (wire decoding only — not a public op)."""
        self.version += 1
        self._store.set(position, value)

    def _check_compatible(self, other: "TemporalCountingBloomFilter") -> None:
        if not self.family.compatible_with(other.family):
            raise ValueError(
                "cannot combine TCBFs with different hash families: "
                f"{self.family!r} vs {other.family!r}"
            )

    def items(self) -> List[Tuple[int, float]]:
        """(position, counter) pairs sorted by position."""
        return self._store.items()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TemporalCountingBloomFilter):
            return NotImplemented
        return (
            self.family == other.family
            and self._store.as_dict() == other._store.as_dict()
        )

    def __repr__(self) -> str:
        return (
            f"TemporalCountingBloomFilter(m={self.num_bits}, "
            f"k={self.num_hashes}, C={self.initial_value}, "
            f"DF={self.decay_factor}, set_bits={len(self)}, "
            f"t={self._time})"
        )
