"""Closed-form analysis of BF/TCBF behaviour (paper Sec. III and VI).

Implements every numbered equation in the paper:

* Eq. 1 — false-positive rate of a BF with ``m`` bits, ``k`` hashes and
  ``n`` stored keys.
* Eq. 2 — expected number of set bits.
* Eq. 3 — fill ratio and its inversion (keys from an observed FR).
* Eq. 4 — expected minimum, over a key's ``k`` counters, of the number
  of *other* keys accidentally hashing onto the same bit (a min of
  ``k`` binomial variables).
* Eq. 5 — the decaying-factor rule DF(τ) derived from Eq. 4.
* Eq. 6 — expected number of *unique* keys among ``ℕ`` collected
  interests (collisions between nodes sharing interests).
* Eq. 7 — joint FPR of a collection of ``h`` filters.
* Eq. 8 — total memory of ``h`` TCBFs under the compact encoding of
  Sec. VI-C.

Each function offers the paper's exponential approximation by default
and the exact ``(1 - 1/m)^{kn}`` form via ``exact=True``; the two agree
to within O(1/m), which the tests verify.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = [
    "false_positive_rate",
    "expected_set_bits",
    "fill_ratio",
    "keys_from_fill_ratio",
    "expected_min_collisions",
    "recommended_decay_factor",
    "expected_unique_keys",
    "joint_false_positive_rate",
    "filter_memory_bytes",
    "multi_filter_memory_bytes",
    "raw_string_memory_bytes",
]


def _validate_geometry(num_bits: int, num_hashes: int) -> None:
    if num_bits < 2:
        raise ValueError(f"num_bits must be >= 2, got {num_bits}")
    if num_hashes < 1:
        raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")


def false_positive_rate(
    num_keys: float, num_bits: int, num_hashes: int, exact: bool = False
) -> float:
    """Eq. 1: FPR = (1 - (1 - 1/m)^{kn})^k ≈ (1 - e^{-kn/m})^k."""
    _validate_geometry(num_bits, num_hashes)
    if num_keys < 0:
        raise ValueError(f"num_keys must be >= 0, got {num_keys}")
    if num_keys == 0:
        return 0.0
    if exact:
        p_unset = (1.0 - 1.0 / num_bits) ** (num_hashes * num_keys)
    else:
        p_unset = math.exp(-num_hashes * num_keys / num_bits)
    return (1.0 - p_unset) ** num_hashes


def expected_set_bits(
    num_keys: float, num_bits: int, num_hashes: int, exact: bool = False
) -> float:
    """Eq. 2: S = m(1 - (1 - 1/m)^{kn}) ≈ m(1 - e^{-kn/m})."""
    return num_bits * fill_ratio(num_keys, num_bits, num_hashes, exact=exact)


def fill_ratio(
    num_keys: float, num_bits: int, num_hashes: int, exact: bool = False
) -> float:
    """Eq. 3: FR = 1 - (1 - 1/m)^{kn} ≈ 1 - e^{-kn/m}."""
    _validate_geometry(num_bits, num_hashes)
    if num_keys < 0:
        raise ValueError(f"num_keys must be >= 0, got {num_keys}")
    if exact:
        return 1.0 - (1.0 - 1.0 / num_bits) ** (num_hashes * num_keys)
    return 1.0 - math.exp(-num_hashes * num_keys / num_bits)


def keys_from_fill_ratio(
    observed_fill_ratio: float, num_bits: int, num_hashes: int
) -> float:
    """Invert Eq. 3: estimate ``n`` from an observed fill ratio.

    The paper uses this (Sec. VI-B) to estimate how many interests a
    broker has collected — ``ℕ = -m/k · ln(1 - FR)``.
    """
    _validate_geometry(num_bits, num_hashes)
    if not 0.0 <= observed_fill_ratio < 1.0:
        raise ValueError(
            f"fill ratio must be in [0, 1), got {observed_fill_ratio}"
        )
    return -num_bits / num_hashes * math.log(1.0 - observed_fill_ratio)


def _binomial_cdf(x: int, n: int, p: float) -> float:
    """P(X <= x) for X ~ Binomial(n, p), computed iteratively.

    Exact summation in float; for the parameter sizes B-SUB meets
    (n up to a few thousand) this is both fast and accurate, and avoids
    a scipy dependency in the core package.
    """
    if x < 0:
        return 0.0
    if x >= n:
        return 1.0
    q = 1.0 - p
    # term for j = 0
    term = q ** n
    total = term
    for j in range(1, x + 1):
        term *= (n - j + 1) / j * (p / q)
        total += term
    return min(total, 1.0)


def expected_min_collisions(
    num_keys: int, num_bits: int, num_hashes: int
) -> float:
    """Eq. 4: E[min(X_0, …, X_{k-1})] with X_i ~ Binomial(ℕ, k/m).

    ``X_i`` counts the other keys that accidentally hash onto the same
    bit as the *i*-th bit of a given key (the paper approximates each
    key as having ``k`` chances to land on a fixed location).  Because a
    key survives only while *all* of its counters are positive, its
    effective lifetime is governed by the minimum.  Using
    E[min] = Σ_{c≥1} P(min ≥ c) = Σ_{c≥1} (1 - F(c-1))^k.
    """
    _validate_geometry(num_bits, num_hashes)
    if num_keys < 0:
        raise ValueError(f"num_keys must be >= 0, got {num_keys}")
    if num_keys == 0:
        return 0.0
    p = min(1.0, num_hashes / num_bits)
    expectation = 0.0
    for c in range(1, num_keys + 1):
        survival = 1.0 - _binomial_cdf(c - 1, num_keys, p)
        if survival <= 0.0:
            break
        expectation += survival ** num_hashes
    return expectation


def recommended_decay_factor(
    delay_limit: float,
    initial_value: float,
    num_keys: int,
    num_bits: int,
    num_hashes: int,
    delta: float = 0.0,
) -> float:
    """Eq. 5: DF = C·(1 + E[min collisions]) / τ + Δ.

    Sets the decay rate so that an interest inserted once is removed
    after the message delay limit ``τ`` even when its counters were
    accidentally topped up by other keys' insertions (A-merges from
    producers; the broker-merge case is folded into the small constant
    ``Δ``, as in the paper).

    Parameters
    ----------
    delay_limit:
        τ — the maximum tolerable message delay, in the same time unit
        the decay factor is expressed per.
    initial_value:
        C — the TCBF counter initial value.
    num_keys:
        ℕ — keys a broker collects within τ (measurable online by
        counting met nodes).
    delta:
        The paper's small additive correction Δ.
    """
    if delay_limit <= 0:
        raise ValueError(f"delay_limit must be positive, got {delay_limit}")
    if initial_value <= 0:
        raise ValueError(f"initial_value must be positive, got {initial_value}")
    if delta < 0:
        raise ValueError(f"delta must be >= 0, got {delta}")
    e_min = expected_min_collisions(num_keys, num_bits, num_hashes)
    return initial_value * (1.0 + e_min) / delay_limit + delta


def expected_unique_keys(
    num_collected: float,
    total_keys: Optional[int] = None,
    weights: Optional[Sequence[float]] = None,
) -> float:
    """Eq. 6: expected number of *unique* keys among ℕ collected interests.

    Different nodes share interests, so the ``ℕ`` interests a broker
    collects within τ contain duplicates.  For interests drawn
    independently from a distribution over ``K`` keys, the expected
    distinct count is ``Σ_i (1 - (1 - w_i)^ℕ)``, which for the uniform
    case reduces to ``K(1 - (1 - 1/K)^ℕ)``.

    Pass either ``total_keys`` (uniform weights, the paper's closed
    form) or explicit ``weights`` (e.g. the Table II Twitter-trend
    distribution).
    """
    if num_collected < 0:
        raise ValueError(f"num_collected must be >= 0, got {num_collected}")
    if (total_keys is None) == (weights is None):
        raise ValueError("pass exactly one of total_keys or weights")
    if weights is not None:
        total = math.fsum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return math.fsum(
            1.0 - (1.0 - w / total) ** num_collected for w in weights
        )
    if total_keys < 1:
        raise ValueError(f"total_keys must be >= 1, got {total_keys}")
    return total_keys * (1.0 - (1.0 - 1.0 / total_keys) ** num_collected)


def joint_false_positive_rate(
    key_counts: Sequence[float],
    num_bits: int,
    num_hashes: int,
    exact: bool = False,
) -> float:
    """Eq. 7: FPR of querying a key against ``h`` filters jointly.

    A query against the collection reports a (possibly false) hit if
    *any* filter does, so the joint FPR is the complement of all ``h``
    filters answering correctly:
    ``1 - Π_i (1 - (1 - e^{-k n_i / m})^k)``.
    """
    joint_correct = 1.0
    for n_i in key_counts:
        joint_correct *= 1.0 - false_positive_rate(
            n_i, num_bits, num_hashes, exact=exact
        )
    return 1.0 - joint_correct


def _location_bits(num_bits: int) -> int:
    """Bits needed to encode one set-bit location: ⌈log2 m⌉."""
    return max(1, math.ceil(math.log2(num_bits)))


def filter_memory_bytes(
    num_set_bits: float,
    num_bits: int,
    counters: str = "full",
) -> float:
    """Sec. VI-C: wire/storage size of one filter, in bytes.

    The compact encoding records each set bit as a ⌈log2 m⌉-bit
    location (for m = 256 exactly one byte) plus, depending on
    *counters*:

    * ``"full"`` — a 1-byte counter per set bit (relay filters):
      ``S × (1 + ⌈log2 m⌉/8)`` bytes.
    * ``"identical"`` — all counters equal, one shared byte (a freshly
      inserted genuine filter): ``S × ⌈log2 m⌉/8 + 1`` bytes.
    * ``"none"`` — counters stripped (broker requesting messages from a
      producer): ``S × ⌈log2 m⌉/8`` bytes.

    Falls back to the raw ``m/8``-byte bit-vector when the compact form
    would be larger (the paper's condition ``S × ⌈log2 m⌉ < m``).
    """
    if num_set_bits < 0:
        raise ValueError(f"num_set_bits must be >= 0, got {num_set_bits}")
    loc_bytes = _location_bits(num_bits) / 8.0
    raw_bytes = num_bits / 8.0
    if counters == "full":
        compact = num_set_bits * (1.0 + loc_bytes)
        fallback = raw_bytes + num_set_bits  # raw vector + counters
    elif counters == "identical":
        compact = num_set_bits * loc_bytes + 1.0
        fallback = raw_bytes + 1.0
    elif counters == "none":
        compact = num_set_bits * loc_bytes
        fallback = raw_bytes
    else:
        raise ValueError(
            f"counters must be 'full', 'identical' or 'none', got {counters!r}"
        )
    return min(compact, fallback)


def multi_filter_memory_bytes(
    num_filters: int,
    total_keys: float,
    num_bits: int,
    num_hashes: int,
    per_filter_overhead_bytes: float = 9.0,
) -> float:
    """Eq. 8: total memory of ``h`` TCBFs splitting ``n`` keys evenly.

    ``M = Σ_i m(1 - e^{-k n_i / m}) × (1 + ⌈log2 m⌉/8)`` bytes, with
    ``n_i = n / h`` (the even split maximises per-filter headroom and is
    the configuration Eq. 9's optimum uses).

    Deviation from the paper: we add the fixed per-filter wire header
    (*per_filter_overhead_bytes*, 9 bytes in our encoding).  Without it
    Eq. 8 *saturates* as h grows — splitting n keys ever finer keeps
    total set bits constant at ≈ kn — so "the largest feasible h" would
    be unbounded once the bound exceeds ≈ 2kn bytes, and the Eq. 10
    optimisation degenerates.  The real header restores the strict
    monotonicity the paper's binary search assumes.
    """
    if num_filters < 1:
        raise ValueError(f"num_filters must be >= 1, got {num_filters}")
    if per_filter_overhead_bytes < 0:
        raise ValueError("per_filter_overhead_bytes must be >= 0")
    per_filter_keys = total_keys / num_filters
    set_bits = expected_set_bits(per_filter_keys, num_bits, num_hashes)
    return num_filters * (
        per_filter_overhead_bytes
        + filter_memory_bytes(set_bits, num_bits, counters="full")
    )


def raw_string_memory_bytes(
    key_lengths: Sequence[int], per_key_overhead: int = 2
) -> float:
    """Memory for the raw-string interest representation (Sec. VI-C).

    Summing the byte length of every interest string plus the
    per-entry control information (length prefix / separator —
    2 bytes by default).  Compared against the TCBF encoding in the
    memory benchmark; the paper reports the TCBF uses about half the
    space.
    """
    if per_key_overhead < 0:
        raise ValueError("per_key_overhead must be >= 0")
    return float(sum(key_lengths) + per_key_overhead * len(key_lengths))
