"""Keyword-alias resolution for filter parameters.

The paper writes filter geometry as ``m`` (bits) and ``k`` (hash
functions) and the decay factor as ``DF``; the library spells them
``num_bits``, ``num_hashes``, and ``decay_factor``.  Constructors
accept both: the canonical name and a keyword-only paper-style alias
(``m`` / ``k`` / ``df``).  Passing both spellings explicitly is a
``TypeError`` — silently preferring one would hide a caller bug.
"""

from __future__ import annotations

from typing import Optional, TypeVar

__all__ = ["resolve_param"]

T = TypeVar("T")


def resolve_param(
    name: str,
    value: Optional[T],
    alias: str,
    alias_value: Optional[T],
    default: T,
) -> T:
    """Pick between a canonical parameter and its alias.

    Both are ``None``-sentinel keywords; whichever was given wins, the
    *default* applies when neither was, and giving both raises.
    """
    if alias_value is None:
        return default if value is None else value
    if value is not None:
        raise TypeError(
            f"got values for both {name!r} and its alias {alias!r}; pass one"
        )
    return alias_value
