"""Keyword-alias resolution for filter parameters + deprecation ledger.

The paper writes filter geometry as ``m`` (bits) and ``k`` (hash
functions) and the decay factor as ``DF``; the library spells them
``num_bits``, ``num_hashes``, and ``decay_factor``.  Constructors
accept both: the canonical name and a keyword-only paper-style alias
(``m`` / ``k`` / ``df``).  Passing both spellings explicitly is a
``TypeError`` — silently preferring one would hide a caller bug.

Spec ``parse()`` grammars (``ExperimentSpec``, ``ServeSpec``,
``LoadSpec``) share the same aliasing through :data:`SPEC_KEY_ALIASES`
/ :func:`canonical_spec_key`, so ``m=1024`` and ``num_bits=1024`` mean
the same thing in every ``key=value`` string the CLI accepts.

This module is also the single home of the legacy-API removal
schedule: every ``DeprecationWarning`` shim left by the PR-3 facade
redesign (``run_experiment`` / ``ttl_sweep`` / ``df_sweep`` /
``run_replicated``) registers here with the release it disappears in,
and warns through :func:`warn_deprecated` so the message format — and
the ``"is deprecated; use repro.api"`` substring that pyproject's
filterwarnings and the test suite both match on — stays identical
across all of them.
"""

from __future__ import annotations

import warnings
from typing import Dict, Optional, TypeVar

__all__ = [
    "resolve_param",
    "SPEC_KEY_ALIASES",
    "canonical_spec_key",
    "DEPRECATION_SCHEDULE",
    "warn_deprecated",
]

T = TypeVar("T")

#: Paper-style spelling -> canonical spec-key name, shared by every
#: spec ``parse()`` grammar.  ``df`` maps to the full ``df_per_min``
#: (the per-minute decay factor every spec field uses), matching the
#: keyword aliases the filter constructors already accept.
SPEC_KEY_ALIASES: Dict[str, str] = {
    "m": "num_bits",
    "k": "num_hashes",
    "df": "df_per_min",
}


def canonical_spec_key(key: str) -> str:
    """Map a paper-style spec key (``m``/``k``/``df``) to its canonical name.

    Unknown keys pass through unchanged — each spec's ``parse()`` does
    its own membership check afterwards, so its error message names the
    key the caller actually typed.
    """
    return SPEC_KEY_ALIASES.get(key, key)


#: Legacy entry point -> (replacement call, version deprecated since,
#: version scheduled for removal).  One table so the removal release is
#: decided — and documented — in exactly one place.
DEPRECATION_SCHEDULE: Dict[str, tuple] = {
    "run_experiment": ("repro.api.run(trace, ExperimentSpec(...))", "1.1.0", "2.0.0"),
    "ttl_sweep": ("repro.api.sweep(trace, spec, ttl_min=[...])", "1.1.0", "2.0.0"),
    "df_sweep": ("repro.api.sweep(trace, spec, df_per_min=[...])", "1.1.0", "2.0.0"),
    "run_replicated": (
        "repro.api.replicate(trace_factory, spec, seeds=...)", "1.1.0", "2.0.0",
    ),
}


def warn_deprecated(name: str, *, stacklevel: int = 3) -> None:
    """Emit the scheduled :class:`DeprecationWarning` for *name*.

    The message keeps the load-bearing ``"is deprecated; use
    repro.api"`` substring (pyproject's filterwarnings and
    ``tests/test_api.py`` both match on it) and appends the removal
    schedule from :data:`DEPRECATION_SCHEDULE`.
    """
    replacement, since, removal = DEPRECATION_SCHEDULE[name]
    warnings.warn(
        f"{name}() is deprecated; use {replacement} instead "
        f"(deprecated since {since}, removal scheduled for {removal})",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def resolve_param(
    name: str,
    value: Optional[T],
    alias: str,
    alias_value: Optional[T],
    default: T,
) -> T:
    """Pick between a canonical parameter and its alias.

    Both are ``None``-sentinel keywords; whichever was given wins, the
    *default* applies when neither was, and giving both raises.
    """
    if alias_value is None:
        return default if value is None else value
    if value is not None:
        raise TypeError(
            f"got values for both {name!r} and its alias {alias!r}; pass one"
        )
    return alias_value
