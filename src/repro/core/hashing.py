"""Hash-function families for Bloom filters.

The paper (Sec. III) assumes ``k`` independent hash functions, each
mapping a key uniformly into ``[0, m - 1]``.  We implement the standard
Kirsch--Mitzenmacher double-hashing construction: two base hashes
``h1, h2`` derived from a single keyed blake2b digest, combined as
``h1 + i * h2 (mod m)`` for the *i*-th function.  This preserves the
asymptotic false-positive behaviour of ``k`` independent functions while
hashing each key only once, which matters because B-SUB hashes keys on
every contact event.

All functions are deterministic for a given ``seed`` so that two nodes
in a simulated network (or two devices in a deployment) agree on bit
locations without any coordination beyond the shared seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Tuple

__all__ = ["HashFamily", "DEFAULT_SEED"]

DEFAULT_SEED = 0x5B5B  # arbitrary but fixed: "B-SUB" nodes must agree on it


class HashFamily:
    """A family of ``k`` hash functions onto ``[0, num_bits - 1]``.

    Parameters
    ----------
    num_hashes:
        Number of hash functions ``k`` (the paper uses 4).
    num_bits:
        Size of the target bit-vector ``m`` (the paper uses 256).
    seed:
        Integer seed shared by all parties; different seeds give
        independent families.
    """

    __slots__ = ("num_hashes", "num_bits", "seed", "_salt", "_cache")

    #: Upper bound on the per-family memoisation cache.  Pub-sub
    #: workloads reuse a small universe of keys on every contact event,
    #: so caching turns the dominant hashing cost into a dict lookup.
    _CACHE_LIMIT = 65_536

    def __init__(self, num_hashes: int, num_bits: int, seed: int = DEFAULT_SEED):
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {num_bits}")
        self.num_hashes = num_hashes
        self.num_bits = num_bits
        self.seed = seed
        self._salt = seed.to_bytes(8, "little", signed=False)
        self._cache: dict = {}

    def _base_hashes(self, key: str) -> Tuple[int, int]:
        """Return the two 64-bit base hashes for *key*."""
        digest = hashlib.blake2b(
            key.encode("utf-8"), digest_size=16, salt=self._salt
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little")
        # h2 must be odd so that, for power-of-two m, the probe sequence
        # cycles through distinct offsets.
        return h1, h2 | 1

    def positions(self, key: str) -> List[int]:
        """Bit positions that *key* hashes to (length ``num_hashes``).

        Positions may repeat for small ``m`` — exactly as with truly
        independent functions; the paper explicitly "omit[s] the
        probability that multiple hash functions return the same
        location" in its analysis, and the filter implementations
        handle repeats correctly regardless.
        """
        cached = self._cache.get(key)
        if cached is not None:
            return list(cached)
        h1, h2 = self._base_hashes(key)
        m = self.num_bits
        result = [(h1 + i * h2) % m for i in range(self.num_hashes)]
        if len(self._cache) < self._CACHE_LIMIT:
            self._cache[key] = tuple(result)
        return result

    def distinct_positions(self, key: str) -> List[int]:
        """Sorted, de-duplicated bit positions for *key*."""
        return sorted(set(self.positions(key)))

    def positions_for(self, keys: Iterable[str]) -> List[List[int]]:
        """Positions for each key in *keys*, in order."""
        return [self.positions(key) for key in keys]

    def compatible_with(self, other: "HashFamily") -> bool:
        """True if two families produce identical positions for any key."""
        return (
            self.num_hashes == other.num_hashes
            and self.num_bits == other.num_bits
            and self.seed == other.seed
        )

    def spawn(self, num_bits: int) -> "HashFamily":
        """A family with the same ``k`` and seed but a different ``m``.

        Used by the dynamic TCBF allocation (Sec. VI-D) when re-sizing
        filters.
        """
        return HashFamily(self.num_hashes, num_bits, self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.compatible_with(other)

    def __hash__(self) -> int:
        return hash((self.num_hashes, self.num_bits, self.seed))

    def __repr__(self) -> str:
        return (
            f"HashFamily(num_hashes={self.num_hashes}, "
            f"num_bits={self.num_bits}, seed={self.seed:#x})"
        )


def positions_cover(positions: Sequence[int], bit_getter) -> bool:
    """True if every position in *positions* satisfies *bit_getter*.

    Helper shared by the filter implementations: ``bit_getter`` is a
    callable ``int -> bool`` reporting whether a bit is set.
    """
    return all(bit_getter(p) for p in positions)
