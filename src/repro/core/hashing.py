"""Hash-function families for Bloom filters.

The paper (Sec. III) assumes ``k`` independent hash functions, each
mapping a key uniformly into ``[0, m - 1]``.  We implement the standard
Kirsch--Mitzenmacher double-hashing construction: two base hashes
``h1, h2`` derived from a single keyed blake2b digest, combined as
``h1 + i * h2 (mod m)`` for the *i*-th function.  This preserves the
asymptotic false-positive behaviour of ``k`` independent functions while
hashing each key only once, which matters because B-SUB hashes keys on
every contact event.

All functions are deterministic for a given ``seed`` so that two nodes
in a simulated network (or two devices in a deployment) agree on bit
locations without any coordination beyond the shared seed.

Batched hashing (:meth:`HashFamily.positions_batch`) maps many keys at
once into a single ``(n_keys, k)`` position matrix: the per-key blake2b
digests are unavoidable, but the double-hashing combination is one
vectorized broadcast, and the matrix feeds the filters' batch query and
merge paths directly.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["HashFamily", "DEFAULT_SEED"]

DEFAULT_SEED = 0x5B5B  # arbitrary but fixed: "B-SUB" nodes must agree on it


class HashFamily:
    """A family of ``k`` hash functions onto ``[0, num_bits - 1]``.

    Parameters
    ----------
    num_hashes:
        Number of hash functions ``k`` (the paper uses 4).
    num_bits:
        Size of the target bit-vector ``m`` (the paper uses 256).
    seed:
        Integer seed shared by all parties; different seeds give
        independent families.
    """

    __slots__ = ("num_hashes", "num_bits", "seed", "_salt", "_cache", "_rows")

    #: Upper bound on the per-family memoisation cache.  Pub-sub
    #: workloads reuse a small universe of keys on every contact event,
    #: so caching turns the dominant hashing cost into a dict lookup.
    #: The cache is LRU: once full, the least-recently-used key is
    #: evicted so long-running workloads with churning key universes
    #: keep their hit rate instead of silently freezing the cache.
    _CACHE_LIMIT = 65_536

    #: Initial row capacity of the position matrix (doubles on demand).
    _INITIAL_ROWS = 256

    def __init__(self, num_hashes: int, num_bits: int, seed: int = DEFAULT_SEED):
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if num_bits < 2:
            raise ValueError(f"num_bits must be >= 2, got {num_bits}")
        self.num_hashes = num_hashes
        self.num_bits = num_bits
        self.seed = seed
        self._salt = seed.to_bytes(8, "little", signed=False)
        # Cached positions live as rows of one shared int64 matrix;
        # ``_cache`` maps key -> row index, and its insertion order
        # doubles as recency order (hits re-append).  Rows are
        # allocated densely, so an evicted key's row is handed
        # straight to its replacement.
        self._cache: dict = {}
        self._rows = np.empty((self._INITIAL_ROWS, num_hashes), dtype=np.int64)

    def _base_hashes(self, key: str) -> Tuple[int, int]:
        """Return the two 64-bit base hashes for *key*."""
        digest = hashlib.blake2b(
            key.encode("utf-8"), digest_size=16, salt=self._salt
        ).digest()
        h1 = int.from_bytes(digest[:8], "little")
        h2 = int.from_bytes(digest[8:], "little")
        # h2 must be odd so that, for power-of-two m, the probe sequence
        # cycles through distinct offsets.
        return h1, h2 | 1

    def _cache_get(self, key: str):
        """Row index for *key*, refreshing its recency; None on a miss."""
        cache = self._cache
        row = cache.pop(key, None)
        if row is not None:
            cache[key] = row
        return row

    def _cache_put(self, key: str, positions) -> int:
        """Store *positions* for *key*, evicting the LRU entry if full."""
        cache = self._cache
        row = cache.get(key)
        if row is None:
            if len(cache) >= self._CACHE_LIMIT:
                # Evict the least recently used key and take its row.
                row = cache.pop(next(iter(cache)))
            else:
                row = len(cache)
                if row >= len(self._rows):
                    grown = np.empty(
                        (2 * len(self._rows), self.num_hashes), dtype=np.int64
                    )
                    grown[: len(self._rows)] = self._rows
                    self._rows = grown
        self._rows[row] = positions
        cache[key] = row
        return row

    def positions(self, key: str) -> List[int]:
        """Bit positions that *key* hashes to (length ``num_hashes``).

        Positions may repeat for small ``m`` — exactly as with truly
        independent functions; the paper explicitly "omit[s] the
        probability that multiple hash functions return the same
        location" in its analysis, and the filter implementations
        handle repeats correctly regardless.
        """
        row = self._cache_get(key)
        if row is not None:
            return self._rows[row].tolist()
        h1, h2 = self._base_hashes(key)
        m = self.num_bits
        result = [(h1 + i * h2) % m for i in range(self.num_hashes)]
        self._cache_put(key, result)
        return result

    def positions_batch(self, keys: Sequence[str]) -> np.ndarray:
        """Positions for many keys as one ``(len(keys), k)`` int64 matrix.

        Row *i* equals ``positions(keys[i])`` exactly: cached keys are
        gathered from the memoisation matrix in one fancy-indexing
        pass (without refreshing their LRU recency — a deliberate
        trade so the hot all-cached path stays a single vectorized
        read), and uncached keys are hashed once each, then combined
        in a single vectorized double-hashing broadcast.  All keys end
        up cached.
        """
        k = self.num_hashes
        n = len(keys)
        cache_get = self._cache.get
        index = np.fromiter(
            (cache_get(key, -1) for key in keys), dtype=np.int64, count=n
        )
        miss_mask = index < 0
        if not miss_mask.any():
            return self._rows[index]
        out = np.empty((n, k), dtype=np.int64)
        hit_mask = ~miss_mask
        out[hit_mask] = self._rows[index[hit_mask]]
        misses = np.nonzero(miss_mask)[0]
        m = self.num_bits
        r1 = np.empty(len(misses), dtype=np.int64)
        r2 = np.empty(len(misses), dtype=np.int64)
        for j, i in enumerate(misses):
            h1, h2 = self._base_hashes(keys[i])
            # Reduce mod m while still in arbitrary-precision ints:
            # (h1 + i*h2) % m == ((h1 % m) + i*(h2 % m)) % m, and the
            # reduced form cannot overflow int64 for any real m.
            r1[j] = h1 % m
            r2[j] = h2 % m
        probes = (
            r1[:, None] + np.arange(k, dtype=np.int64)[None, :] * r2[:, None]
        ) % m
        out[misses] = probes
        for j, i in enumerate(misses):
            self._cache_put(keys[i], probes[j])
        return out

    def distinct_positions(self, key: str) -> List[int]:
        """Sorted, de-duplicated bit positions for *key*."""
        return sorted(set(self.positions(key)))

    def positions_for(self, keys: Iterable[str]) -> List[List[int]]:
        """Positions for each key in *keys*, in order."""
        return [self.positions(key) for key in keys]

    def compatible_with(self, other: "HashFamily") -> bool:
        """True if two families produce identical positions for any key."""
        return (
            self.num_hashes == other.num_hashes
            and self.num_bits == other.num_bits
            and self.seed == other.seed
        )

    def spawn(self, num_bits: int) -> "HashFamily":
        """A family with the same ``k`` and seed but a different ``m``.

        Used by the dynamic TCBF allocation (Sec. VI-D) when re-sizing
        filters.
        """
        return HashFamily(self.num_hashes, num_bits, self.seed)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.compatible_with(other)

    def __hash__(self) -> int:
        return hash((self.num_hashes, self.num_bits, self.seed))

    def __repr__(self) -> str:
        return (
            f"HashFamily(num_hashes={self.num_hashes}, "
            f"num_bits={self.num_bits}, seed={self.seed:#x})"
        )


def positions_cover(positions: Sequence[int], bit_getter) -> bool:
    """True if every position in *positions* satisfies *bit_getter*.

    Helper shared by the filter implementations: ``bit_getter`` is a
    callable ``int -> bool`` reporting whether a bit is set.
    """
    return all(bit_getter(p) for p in positions)
