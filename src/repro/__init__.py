"""B-SUB: a Bloom-filter-based publish-subscribe system for human networks.

A complete reproduction of Zhao & Wu, "B-SUB: A Practical
Bloom-Filter-Based Publish-Subscribe System for Human Networks"
(ICDCS 2010), as a reusable Python library:

* :mod:`repro.core` — the Temporal Counting Bloom Filter (the paper's
  primary contribution), the classic BF/CBF, closed-form analysis, the
  optimal multi-filter allocation, and a compact wire encoding.
* :mod:`repro.pubsub` — the B-SUB protocol (broker election, interest
  propagation, preferential forwarding) and the PUSH/PULL baselines.
* :mod:`repro.dtn` — a trace-driven discrete-event DTN simulator with
  per-contact bandwidth budgeting.
* :mod:`repro.traces` — the contact-trace model, synthetic Haggle/MIT
  analogues, and real-trace loaders.
* :mod:`repro.social` — contact graph, centrality, community detection.
* :mod:`repro.workload` — the Table II Twitter-trend key set, interest
  assignment, centrality-scaled message generation.
* :mod:`repro.experiments` — the harness that regenerates every table
  and figure of the paper's evaluation.

Quickstart::

    from repro import TemporalCountingBloomFilter

    interests = TemporalCountingBloomFilter(decay_factor=0.1)
    interests.insert("NewMoon")
    assert "NewMoon" in interests
    interests.advance(now=600.0)          # decays the counters
    assert "NewMoon" not in interests     # temporal deletion

or run a full pub-sub simulation::

    from repro.traces import haggle_like
    from repro.experiments import ExperimentConfig, run_experiment

    result = run_experiment(haggle_like(scale=0.1), "B-SUB",
                            ExperimentConfig(ttl_min=600))
    print(result.summary.delivery_ratio)
"""

from .core import (
    BloomFilter,
    CountingBloomFilter,
    HashFamily,
    TCBFCollection,
    TemporalCountingBloomFilter,
)
from .pubsub import (
    BsubConfig,
    BsubProtocol,
    Message,
    MetricsCollector,
    PullProtocol,
    PushProtocol,
)

__version__ = "1.0.0"

__all__ = [
    "BloomFilter",
    "BsubConfig",
    "BsubProtocol",
    "CountingBloomFilter",
    "HashFamily",
    "Message",
    "MetricsCollector",
    "PullProtocol",
    "PushProtocol",
    "TCBFCollection",
    "TemporalCountingBloomFilter",
    "__version__",
]
