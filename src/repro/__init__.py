"""B-SUB: a Bloom-filter-based publish-subscribe system for human networks.

A complete reproduction of Zhao & Wu, "B-SUB: A Practical
Bloom-Filter-Based Publish-Subscribe System for Human Networks"
(ICDCS 2010), as a reusable Python library:

* :mod:`repro.core` — the Temporal Counting Bloom Filter (the paper's
  primary contribution), the classic BF/CBF, closed-form analysis, the
  optimal multi-filter allocation, and a compact wire encoding.
* :mod:`repro.pubsub` — the B-SUB protocol (broker election, interest
  propagation, preferential forwarding) and the PUSH/PULL baselines.
* :mod:`repro.dtn` — a trace-driven discrete-event DTN simulator with
  per-contact bandwidth budgeting.
* :mod:`repro.traces` — the contact-trace model, synthetic Haggle/MIT
  analogues, and real-trace loaders.
* :mod:`repro.social` — contact graph, centrality, community detection.
* :mod:`repro.workload` — the Table II Twitter-trend key set, interest
  assignment, centrality-scaled message generation.
* :mod:`repro.experiments` — the harness that regenerates every table
  and figure of the paper's evaluation.
* :mod:`repro.faults` — deterministic fault injection (frame loss,
  truncation, corruption, node churn) for resilience studies.
* :mod:`repro.serve` — a live asyncio TCP broker daemon speaking the
  binary wire format, plus the matching load driver.
* :mod:`repro.api` — the typed public entry points re-exported here.

Quickstart::

    from repro import TemporalCountingBloomFilter

    interests = TemporalCountingBloomFilter(decay_factor=0.1)
    interests.insert("NewMoon")
    assert "NewMoon" in interests
    interests.advance(now=600.0)          # decays the counters
    assert "NewMoon" not in interests     # temporal deletion

or run a full pub-sub simulation through the typed API::

    from repro import ExperimentSpec, run
    from repro.traces import haggle_like

    result = run(haggle_like(scale=0.1),
                 ExperimentSpec(protocol="B-SUB", ttl_min=600))
    print(result.summary.delivery_ratio)
"""

from .core import (
    BloomFilter,
    CountingBloomFilter,
    HashFamily,
    TCBFCollection,
    TemporalCountingBloomFilter,
)
from .pubsub import (
    BsubConfig,
    BsubProtocol,
    Message,
    MetricsCollector,
    PullProtocol,
    PushProtocol,
)

__version__ = "1.1.0"

__all__ = [
    "BloomFilter",
    "BsubConfig",
    "BsubProtocol",
    "CountingBloomFilter",
    "ExperimentSpec",
    "FaultSpec",
    "HashFamily",
    "LoadSpec",
    "Message",
    "MetricsCollector",
    "PullProtocol",
    "PushProtocol",
    "ServeSpec",
    "TCBFCollection",
    "TemporalCountingBloomFilter",
    "__version__",
    "load",
    "replicate",
    "resilience",
    "run",
    "serve",
    "sweep",
]

# The api/faults layers pull in the experiment harness (numpy-heavy);
# resolve them lazily so `import repro` stays cheap for filter-only use.
_LAZY_API = (
    "ExperimentSpec",
    "LoadSpec",
    "ServeSpec",
    "load",
    "replicate",
    "resilience",
    "run",
    "serve",
    "sweep",
)


def __getattr__(name: str):
    if name in _LAZY_API:
        from . import api

        return getattr(api, name)
    if name == "FaultSpec":
        from .faults.spec import FaultSpec

        return FaultSpec
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
