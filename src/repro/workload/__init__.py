"""Workload substrate: content keys, interest assignment, message generation."""

from .generator import (
    MIN_RATE_PER_SECOND,
    WorkloadConfig,
    generate_message_events,
    message_rates,
)
from .interests import assign_interests, consumers_of
from .keys import TABLE_II_TOP4, KeyDistribution, twitter_trends_2009

__all__ = [
    "KeyDistribution",
    "MIN_RATE_PER_SECOND",
    "TABLE_II_TOP4",
    "WorkloadConfig",
    "assign_interests",
    "consumers_of",
    "generate_message_events",
    "message_rates",
    "twitter_trends_2009",
]
