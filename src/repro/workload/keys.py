"""Content-key workload (the paper's Twitter-Trends key set).

The paper prepared "38 keys from the Twitter Trend search engine in one
week (from 16th to 22nd Nov. 2009)", weighting each key "by the key's
weight in the original Twitter Trend"; Table II publishes the top four
(spaces removed): NewMoon 0.132, Twitter'sNew 0.103, funnybutnotcool
0.0887, openwebawards 0.0739.  The average key length is reported as
11.5 bytes.

The Twitter API of 2009 is gone, so :func:`twitter_trends_2009` freezes
a reconstruction: the four published keys with their exact weights, and
34 period-plausible trend strings carrying a Zipf tail normalised so
all 38 weights sum to 1.  The published properties — top-4 weights,
weight ordering, key count, ≈11.5-byte mean length — are preserved
exactly; only the unpublished tail identities are synthetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["KeyDistribution", "twitter_trends_2009", "TABLE_II_TOP4"]

#: The four published (key, weight) pairs of Table II.
TABLE_II_TOP4: Tuple[Tuple[str, float], ...] = (
    ("NewMoon", 0.132),
    ("Twitter'sNew", 0.103),
    ("funnybutnotcool", 0.0887),
    ("openwebawards", 0.0739),
)

# 34 period-plausible mid-November-2009 trends for the unpublished tail.
_TAIL_KEYS: Tuple[str, ...] = (
    "ModernWarfare2",
    "MichaelJackson",
    "RobertPattinson",
    "KristenStewart",
    "NewYorkYankees",
    "SwineFluUpdate",
    "ClimateSummit",
    "JonasBrothers",
    "MotorolaDroid",
    "AvatarTrailer",
    "Thanksgiving",
    "FacebookDown",
    "followfriday",
    "iranelection",
    "Copenhagen15",
    "TheXFactorUK",
    "BlackFriday",
    "AdamLambert",
    "TaylorSwift",
    "WorldSeries",
    "musicmonday",
    "H1N1vaccine",
    "StrictlyComeDancing",
    "LeonaLewis",
    "TigerWoods",
    "GoogleWave",
    "nowplaying",
    "BadRomance",
    "JohnMayer",
    "ThisIsIt",
    "LadyGaga",
    "Twilight",
    "Phillies",
    "ChromeOS",
)


@dataclass(frozen=True)
class KeyDistribution:
    """A weighted set of content keys.

    Weights sum to 1 and are used both for assigning node interests and
    for drawing the keys of generated messages (Sec. VII-A).
    """

    keys: Tuple[str, ...]
    weights: Tuple[float, ...]

    def __post_init__(self):
        if len(self.keys) != len(self.weights):
            raise ValueError(
                f"{len(self.keys)} keys but {len(self.weights)} weights"
            )
        if len(set(self.keys)) != len(self.keys):
            raise ValueError("keys must be unique")
        if any(w <= 0 for w in self.weights):
            raise ValueError("weights must be positive")
        total = sum(self.weights)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"weights must sum to 1, got {total}")

    def __len__(self) -> int:
        return len(self.keys)

    def weight_of(self, key: str) -> float:
        """The weight of *key* (raises KeyError if unknown)."""
        try:
            return self.weights[self.keys.index(key)]
        except ValueError:
            raise KeyError(key) from None

    def top(self, n: int) -> List[Tuple[str, float]]:
        """The *n* heaviest (key, weight) pairs, descending."""
        ranked = sorted(zip(self.keys, self.weights), key=lambda kw: -kw[1])
        return ranked[:n]

    def sample(self, rng: np.random.Generator) -> str:
        """Draw one key by weight."""
        return self.keys[rng.choice(len(self.keys), p=self.weights)]

    def sample_many(self, rng: np.random.Generator, count: int) -> List[str]:
        """Draw *count* keys i.i.d. by weight."""
        indexes = rng.choice(len(self.keys), size=count, p=self.weights)
        return [self.keys[i] for i in indexes]

    def average_key_length(self) -> float:
        """Unweighted mean key length in bytes (paper reports 11.5)."""
        return sum(len(k.encode("utf-8")) for k in self.keys) / len(self.keys)

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self.keys, self.weights))

    @classmethod
    def uniform(cls, keys: Sequence[str]) -> "KeyDistribution":
        """Equal weights over *keys*."""
        n = len(keys)
        if n == 0:
            raise ValueError("need at least one key")
        return cls(tuple(keys), tuple(1.0 / n for _ in range(n)))

    @classmethod
    def from_weights(cls, weighted: Dict[str, float]) -> "KeyDistribution":
        """Build from a key -> weight map, normalising the weights."""
        if not weighted:
            raise ValueError("need at least one key")
        total = sum(weighted.values())
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        keys = tuple(weighted)
        return cls(keys, tuple(weighted[k] / total for k in keys))


def twitter_trends_2009() -> KeyDistribution:
    """The frozen 38-key Table II workload distribution.

    Top-4 weights are the published values; the 34 tail keys carry a
    Zipf(1) tail over ranks 5..38 normalised to the remaining
    probability mass, preserving the monotone weight ordering.
    """
    top_keys = [k for k, _ in TABLE_II_TOP4]
    top_weights = [w for _, w in TABLE_II_TOP4]
    remaining_mass = 1.0 - sum(top_weights)
    ranks = range(5, 5 + len(_TAIL_KEYS))
    raw_tail = [1.0 / r for r in ranks]
    tail_scale = remaining_mass / sum(raw_tail)
    tail_weights = [w * tail_scale for w in raw_tail]
    return KeyDistribution(
        keys=tuple(top_keys) + _TAIL_KEYS,
        weights=tuple(top_weights) + tuple(tail_weights),
    )
