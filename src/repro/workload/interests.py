"""Interest assignment.

"We assume that each node is interested in only one key.  The
probability of each key being selected as an interest for each node is
determined by the key's weight" (Sec. VII-A).  The library generalises
to multiple interests per node (the multi-key extension the paper calls
straightforward); the default reproduces the paper's single-interest
setting.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

import numpy as np

from .keys import KeyDistribution

__all__ = ["assign_interests", "consumers_of"]


def assign_interests(
    nodes: Iterable[int],
    distribution: KeyDistribution,
    seed: int = 0,
    interests_per_node: int = 1,
) -> Dict[int, FrozenSet[str]]:
    """Draw each node's interest set from the key distribution.

    With ``interests_per_node > 1`` the draws are without replacement
    per node (a user doesn't subscribe to the same topic twice).
    """
    if interests_per_node < 1:
        raise ValueError(
            f"interests_per_node must be >= 1, got {interests_per_node}"
        )
    if interests_per_node > len(distribution):
        raise ValueError(
            f"cannot draw {interests_per_node} distinct interests from "
            f"{len(distribution)} keys"
        )
    rng = np.random.default_rng(seed)
    assignment: Dict[int, FrozenSet[str]] = {}
    key_count = len(distribution)
    probabilities = np.asarray(distribution.weights)
    for node in nodes:
        picks = rng.choice(
            key_count, size=interests_per_node, replace=False, p=probabilities
        )
        assignment[node] = frozenset(distribution.keys[i] for i in picks)
    return assignment


def consumers_of(
    interests: Dict[int, FrozenSet[str]], key: str
) -> FrozenSet[int]:
    """The nodes interested in *key*."""
    return frozenset(
        node for node, keys in interests.items() if key in keys
    )
