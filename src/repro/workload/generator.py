"""Message-generation workload.

Nodes generate messages at centrality-proportional rates (Sec. VII-A):
each node has a fixed rate ``ℝ_v = ℝ̂ · ℂ_v / ℂ̂`` where ``ℝ̂`` is the
minimum rate (1 message per 30 minutes) for the node with the smallest
centrality ``ℂ̂``.  Message keys are drawn from the workload key
distribution, sizes uniformly from [1, 140] bytes, and every message
gets the experiment's TTL.

Creation instants follow per-node Poisson processes (the paper states a
fixed per-node rate without specifying the point process; Poisson is
the standard reading and only the *rate* enters the analysis).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..dtn.events import MessageEvent
from ..pubsub.messages import MAX_MESSAGE_BYTES, Message
from ..social.centrality import degree_centrality
from ..traces.model import ContactTrace
from .keys import KeyDistribution

__all__ = ["WorkloadConfig", "message_rates", "generate_message_events"]

#: The paper's minimum rate ℝ̂: one message per 30 minutes.
MIN_RATE_PER_SECOND = 1.0 / (30.0 * 60.0)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the message workload.

    Attributes
    ----------
    ttl_s:
        Message TTL in seconds (equals the maximum tolerable delay).
    min_rate_per_s:
        ℝ̂ — the generation rate of the least-central node.
    max_message_bytes:
        Upper end of the uniform size distribution.
    keys_per_message:
        Content keys per message (paper: 1).
    generation_horizon_fraction:
        Messages are only generated during this leading fraction of the
        trace so that late messages still have a chance to propagate;
        1.0 generates over the whole trace (the paper does not state a
        cutoff — metrics are TTL-censored either way).
    seed:
        RNG seed.
    """

    ttl_s: float
    min_rate_per_s: float = MIN_RATE_PER_SECOND
    max_message_bytes: int = MAX_MESSAGE_BYTES
    keys_per_message: int = 1
    generation_horizon_fraction: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {self.ttl_s}")
        if self.min_rate_per_s <= 0:
            raise ValueError("min_rate_per_s must be positive")
        if self.max_message_bytes < 1:
            raise ValueError("max_message_bytes must be >= 1")
        if self.keys_per_message < 1:
            raise ValueError("keys_per_message must be >= 1")
        if not 0.0 < self.generation_horizon_fraction <= 1.0:
            raise ValueError(
                "generation_horizon_fraction must be in (0, 1], got "
                f"{self.generation_horizon_fraction}"
            )


def message_rates(
    trace: ContactTrace,
    config: WorkloadConfig,
    centrality: Optional[Dict[int, float]] = None,
) -> Dict[int, float]:
    """Per-node generation rates ℝ_v = ℝ̂ · ℂ_v / ℂ̂ (messages/second).

    Nodes with zero centrality (never meet anyone) get rate 0 — they
    could never deliver anything anyway and would only dilute ratios.
    """
    if centrality is None:
        centrality = degree_centrality(trace)
    positive = [c for c in centrality.values() if c > 0]
    if not positive:
        return {node: 0.0 for node in centrality}
    min_centrality = min(positive)
    return {
        node: (config.min_rate_per_s * c / min_centrality if c > 0 else 0.0)
        for node, c in centrality.items()
    }


def generate_message_events(
    trace: ContactTrace,
    distribution: KeyDistribution,
    config: WorkloadConfig,
    centrality: Optional[Dict[int, float]] = None,
) -> List[MessageEvent]:
    """The full message workload for one run, time-sorted.

    Deterministic for a given (trace, distribution, config).
    """
    rng = np.random.default_rng(config.seed)
    rates = message_rates(trace, config, centrality)
    horizon = trace.start_time + trace.duration * config.generation_horizon_fraction
    events: List[MessageEvent] = []
    # Iterate nodes in sorted order so the event stream is reproducible
    # regardless of dict insertion order.
    for node in sorted(rates):
        rate = rates[node]
        if rate <= 0.0:
            continue
        t = trace.start_time
        while True:
            t += rng.exponential(1.0 / rate)
            if t >= horizon:
                break
            keys = distribution.sample_many(rng, config.keys_per_message)
            if config.keys_per_message > 1:
                keys = list(dict.fromkeys(keys))  # drop duplicate draws
            size = int(rng.integers(1, config.max_message_bytes + 1))
            message = Message.create(
                keys=keys,
                source=node,
                created_at=t,
                ttl_s=config.ttl_s,
                size_bytes=size,
            )
            events.append(MessageEvent(time=t, node=node, message=message))
    events.sort(key=lambda e: e.time)
    return events
