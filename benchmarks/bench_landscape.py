"""Baseline landscape — all four protocols, multi-seed, mean ± std.

An extension summary: the paper's headline comparison (PUSH / B-SUB /
PULL at one TTL) replicated over several independent seeds, with the
quota-based Spray-and-Wait extension baseline added.  The replication
quantifies how much of any single-run difference is seed noise.
"""

import pytest

from repro.experiments.replication import run_replicated
from repro.experiments.report import format_table
from repro.traces.synthetic import haggle_like

from .conftest import BENCH_SCALE, bench_config, emit

SEEDS = (0, 1, 2)
PROTOCOLS = ("PUSH", "B-SUB", "SPRAY", "PULL")


def _factory(seed):
    return haggle_like(scale=BENCH_SCALE, seed=seed)


def test_baseline_landscape(benchmark):
    config = bench_config(ttl_min=600.0)

    def replicate():
        return {
            name: run_replicated(_factory, name, config, seeds=SEEDS)
            for name in PROTOCOLS
        }

    results = benchmark.pedantic(replicate, rounds=1, iterations=1)
    rows = []
    for name in PROTOCOLS:
        r = results[name]
        rows.append(
            [
                name,
                str(r["delivery_ratio"]),
                str(r["mean_delay_min"]),
                str(r["forwardings_per_delivered"]),
                str(r["broker_fraction"]),
            ]
        )
    emit(
        "landscape",
        format_table(
            ["protocol", "delivery ratio", "delay (min)", "fwd/delivered",
             "broker frac"],
            rows,
            title=(
                f"Baseline landscape — TTL 10 h, {len(SEEDS)} seeds, "
                f"scale {BENCH_SCALE:g} (mean ± std)"
            ),
        ),
    )

    # Orderings must hold in the mean, not just in one lucky seed.
    delivery = {n: results[n]["delivery_ratio"].mean for n in PROTOCOLS}
    overhead = {
        n: results[n]["forwardings_per_delivered"].mean for n in PROTOCOLS
    }
    assert delivery["PUSH"] >= delivery["B-SUB"] > delivery["PULL"]
    assert delivery["PULL"] < delivery["SPRAY"] < delivery["PUSH"]
    assert overhead["PUSH"] > overhead["B-SUB"] > overhead["PULL"]
    assert overhead["PULL"] == pytest.approx(1.0)
