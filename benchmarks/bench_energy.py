"""Energy comparison — the paper's battery-constraint argument, measured.

Not a figure in the paper, but the quantified version of its bottom
line ("B-SUB consumes much less resources than PUSH", Sec. VIII):
per-protocol radio energy under a Bluetooth class-2 model, split into
the protocol-controlled data share and the trace-determined discovery
share, plus the broker hotspot ratio B-SUB's design accepts.
"""

import pytest

from repro.dtn.energy import BLUETOOTH_CLASS2_MODEL
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from .conftest import bench_config, emit


@pytest.fixture(scope="module")
def runs(haggle_trace):
    config = bench_config(ttl_min=600.0)
    return {
        name: run_experiment(haggle_trace, name, config)
        for name in ("PUSH", "B-SUB", "PULL")
    }


def _table(runs):
    rows = []
    for name, result in runs.items():
        energy = BLUETOOTH_CLASS2_MODEL.evaluate(result.engine)
        rows.append(
            [
                name,
                energy.data_j,
                energy.setup_j,
                energy.energy_per_delivery_j(
                    result.summary.num_intended_deliveries
                ) * 1e3,  # mJ
                energy.hotspot_ratio(),
                result.summary.delivery_ratio,
            ]
        )
    return format_table(
        ["protocol", "data (J)", "discovery (J)", "data mJ/delivery",
         "hotspot ratio", "delivery"],
        rows,
        title="Radio energy (Bluetooth class-2 model)",
    )


def test_energy_comparison(benchmark, haggle_trace, runs):
    benchmark.pedantic(lambda: runs, rounds=1, iterations=1)
    emit("energy", _table(runs))

    energies = {
        name: BLUETOOTH_CLASS2_MODEL.evaluate(r.engine) for name, r in runs.items()
    }
    # protocol-controlled energy: PUSH most expensive
    assert energies["PUSH"].data_j > energies["B-SUB"].data_j
    assert energies["B-SUB"].data_j > energies["PULL"].data_j
    # per *useful* delivery, B-SUB beats flooding
    push_ppd = energies["PUSH"].energy_per_delivery_j(
        runs["PUSH"].summary.num_intended_deliveries
    )
    bsub_ppd = energies["B-SUB"].energy_per_delivery_j(
        runs["B-SUB"].summary.num_intended_deliveries
    )
    assert bsub_ppd < push_ppd
    # discovery cost is a property of the trace, not the protocol
    assert len({round(e.setup_j, 6) for e in energies.values()}) == 1
