"""Micro-benchmarks of the TCBF primitives.

The paper's efficiency argument (Sec. V-A): "the operations performed
are only hashing and table lookup" — insert, query, merge, and decay
must all be cheap enough to run on every contact of a human network.
These are real timed benchmarks (multiple rounds), not one-shot runs.

The second half compares the ``dict`` and ``array`` counter backends
on the batch operations at broker scale (m = 4096, thousands of keys)
and writes the measurements to ``benchmarks/results/BENCH_tcbf.json``
so CI and regressions can be checked mechanically.
"""

import json
import time
from pathlib import Path

import pytest

from repro.core.backends import BACKENDS
from repro.core.bloom import BloomFilter
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.obs import NULL_RECORDER
from repro.workload.keys import twitter_trends_2009

FAMILY = HashFamily(4, 256)
KEYS = twitter_trends_2009().keys


@pytest.fixture
def loaded_tcbf():
    return TemporalCountingBloomFilter.of(KEYS, family=FAMILY, initial_value=50)


def test_bench_insert_38_keys(benchmark):
    def build():
        t = TemporalCountingBloomFilter(family=FAMILY, initial_value=50)
        t.insert_all(KEYS)
        return t

    result = benchmark(build)
    assert len(result) > 0


def test_bench_existential_query(benchmark, loaded_tcbf):
    result = benchmark(lambda: loaded_tcbf.query("NewMoon"))
    assert result is True


def test_bench_query_uncached_keys(benchmark, loaded_tcbf):
    """Query cost including the blake2b hash (cache misses)."""
    counter = iter(range(10**9))

    def probe():
        return loaded_tcbf.query(f"probe-{next(counter)}")

    benchmark(probe)


def test_bench_preferential_query(benchmark, loaded_tcbf):
    other = TemporalCountingBloomFilter.of(
        KEYS[:10], family=FAMILY, initial_value=30
    )
    value = benchmark(lambda: loaded_tcbf.preference("NewMoon", other))
    assert value != 0.0


def test_bench_m_merge(benchmark, loaded_tcbf):
    other = TemporalCountingBloomFilter.of(KEYS[:19], family=FAMILY)

    def merge():
        target = loaded_tcbf.copy()
        target.m_merge(other)
        return target

    benchmark(merge)


def test_bench_a_merge(benchmark, loaded_tcbf):
    other = TemporalCountingBloomFilter.of(KEYS[:19], family=FAMILY)

    def merge():
        target = loaded_tcbf.copy()
        target.a_merge(other)
        return target

    benchmark(merge)


def test_bench_decay_full_filter(benchmark, loaded_tcbf):
    def decay():
        target = loaded_tcbf.copy()
        target.decay(1.0)
        return target

    benchmark(decay)


def test_bench_bloom_query_baseline(benchmark):
    bf = BloomFilter.of(KEYS, family=FAMILY)
    benchmark(lambda: bf.query("NewMoon"))


# ---------------------------------------------------------------------------
# Backend comparison: dict vs array at broker scale
# ---------------------------------------------------------------------------

#: Broker-scale geometry for the backend comparison: a large filter
#: (the Sec. VI-D collections grow towards this) and thousands of keys
#: per batch call, which is where vectorization pays.
BACKEND_M = 4096
BACKEND_KEYS = [f"topic-{i}" for i in range(2000)]
BACKEND_PROBES = [f"probe-{i}" for i in range(2000)]
BACKEND_FAMILY = HashFamily(4, BACKEND_M, seed=17)

#: Minimum array-over-dict speedup the batch kernels must sustain.
REQUIRED_SPEEDUP = 5.0

RESULTS_DIR = Path(__file__).parent / "results"


def _loaded(backend: str) -> TemporalCountingBloomFilter:
    tcbf = TemporalCountingBloomFilter(
        family=BACKEND_FAMILY,
        initial_value=50.0,
        decay_factor=1.0,
        backend=backend,
    )
    tcbf.insert_batch(BACKEND_KEYS)
    return tcbf


def _best_seconds(fn, rounds: int = 30) -> float:
    """Minimum wall time over *rounds* calls (noise-resistant)."""
    fn()  # warm-up (hash cache, allocator)
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _backend_timings() -> dict:
    """Time every batch kernel under both backends."""
    filters = {b: _loaded(b) for b in BACKENDS}
    operands = {b: _loaded(b) for b in BACKENDS}
    # Pre-warm the shared hash cache so both backends see identical
    # (cached) hashing costs and the comparison isolates the stores.
    BACKEND_FAMILY.positions_batch(BACKEND_KEYS)
    BACKEND_FAMILY.positions_batch(BACKEND_PROBES)

    def ops(backend):
        filt, operand = filters[backend], operands[backend]
        return {
            "query_batch": lambda: filt.query_batch(BACKEND_PROBES),
            "min_counter_batch": lambda: filt.min_counter_batch(BACKEND_PROBES),
            "preference_batch": lambda: filt.preference_batch(
                BACKEND_PROBES, operand
            ),
            "decay": lambda: filt.copy().decay(1.0),
            "a_merge": lambda: filt.copy().a_merge(operand),
            "m_merge": lambda: filt.copy().m_merge(operand),
            "insert_batch": lambda: TemporalCountingBloomFilter(
                family=BACKEND_FAMILY, initial_value=50.0, backend=backend
            ).insert_batch(BACKEND_KEYS),
        }

    return {
        backend: {name: _best_seconds(fn) for name, fn in ops(backend).items()}
        for backend in BACKENDS
    }


@pytest.fixture(scope="module")
def backend_timings():
    return _backend_timings()


def test_bench_backend_comparison_json(backend_timings):
    """Record dict-vs-array timings to BENCH_tcbf.json and enforce the
    speedup floor on the batch query/merge/decay kernels."""
    speedups = {
        name: backend_timings["dict"][name] / backend_timings["array"][name]
        for name in backend_timings["dict"]
    }
    report = {
        "geometry": {
            "num_bits": BACKEND_M,
            "num_hashes": BACKEND_FAMILY.num_hashes,
            "loaded_keys": len(BACKEND_KEYS),
            "batch_size": len(BACKEND_PROBES),
        },
        "seconds": backend_timings,
        "speedup_array_over_dict": speedups,
        "required_speedup": REQUIRED_SPEEDUP,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_tcbf.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(json.dumps(report["speedup_array_over_dict"], indent=2, sort_keys=True))
    for name in ("query_batch", "min_counter_batch", "decay", "a_merge", "m_merge"):
        assert speedups[name] >= REQUIRED_SPEEDUP, (
            f"{name}: array only {speedups[name]:.2f}x faster than dict "
            f"(required {REQUIRED_SPEEDUP}x)"
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_query_batch_by_backend(benchmark, backend):
    filt = _loaded(backend)
    BACKEND_FAMILY.positions_batch(BACKEND_PROBES)
    hits = benchmark(lambda: filt.query_batch(BACKEND_PROBES))
    assert len(hits) == len(BACKEND_PROBES)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_decay_by_backend(benchmark, backend):
    filt = _loaded(backend)

    def decay():
        target = filt.copy()
        target.decay(1.0)
        return target

    benchmark(decay)


@pytest.mark.parametrize("backend", BACKENDS)
def test_bench_m_merge_by_backend(benchmark, backend):
    filt = _loaded(backend)
    operand = _loaded(backend)

    def merge():
        target = filt.copy()
        target.m_merge(operand)
        return target

    benchmark(merge)


# ---------------------------------------------------------------------------
# Filter zoo: the same kernels across every registered backend
# ---------------------------------------------------------------------------

from repro.core.filter_zoo import (  # noqa: E402
    load_keys,
    make_relay_filter,
    registered_backends,
)

from .conftest import zoo_bench_specs  # noqa: E402


def _zoo_loaded(backend: str):
    filt = make_relay_filter(
        zoo_bench_specs()[backend], family=BACKEND_FAMILY
    )
    load_keys(filt, BACKEND_KEYS)
    return filt


def test_zoo_bench_specs_cover_registry():
    """Registering filter #6 must extend the micro-benchmarks too."""
    assert set(zoo_bench_specs()) == set(registered_backends())


@pytest.mark.parametrize("backend", registered_backends())
def test_bench_zoo_announce_by_backend(benchmark, backend):
    spec = zoo_bench_specs()[backend]
    BACKEND_FAMILY.positions_batch(BACKEND_KEYS)

    def announce():
        filt = make_relay_filter(spec, family=BACKEND_FAMILY)
        load_keys(filt, BACKEND_KEYS)
        return filt

    filt = benchmark(announce)
    assert filt.query(BACKEND_KEYS[0])


@pytest.mark.parametrize("backend", registered_backends())
def test_bench_zoo_query_batch_by_backend(benchmark, backend):
    filt = _zoo_loaded(backend)
    BACKEND_FAMILY.positions_batch(BACKEND_PROBES)
    hits = benchmark(lambda: filt.query_batch(BACKEND_PROBES))
    assert len(hits) == len(BACKEND_PROBES)


# ---------------------------------------------------------------------------
# Observability: disabled instrumentation must be (near) free
# ---------------------------------------------------------------------------

#: Maximum tolerated slowdown of the kernels under the disabled
#: `if recorder.enabled:` guard pattern protocol.py wraps them in.
NULL_RECORDER_OVERHEAD_LIMIT = 1.05


def test_bench_null_recorder_guard_overhead():
    """With tracing disabled, the guard pattern costs < 5% on the kernels.

    This times the same merge/decay/query kernel sequence the contact
    procedure runs, bare versus wrapped in the exact ``if
    recorder.enabled:`` guards used in ``repro.pubsub.protocol`` —
    asserting the observability layer is effectively free when off.
    Best-of-N minimum times with retries keep scheduler noise from
    producing false failures.
    """
    recorder = NULL_RECORDER
    filt = _loaded("array")
    operand = _loaded("array")
    BACKEND_FAMILY.positions_batch(BACKEND_PROBES)

    def plain():
        target = filt.copy()
        target.m_merge(operand)
        target.a_merge(operand)
        target.decay(1.0)
        target.query_batch(BACKEND_PROBES)

    def guarded():
        target = filt.copy()
        if recorder.enabled:
            recorder.emit("m_merge", t=0.0, node=0, peer=1)
        target.m_merge(operand)
        if recorder.enabled:
            recorder.emit("a_merge", t=0.0, node=0, src=1, kind="consumer")
        target.a_merge(operand)
        if recorder.enabled:
            recorder.emit("decay_tick", t=0.0, node=0, dt=1.0)
        target.decay(1.0)
        if recorder.enabled:
            recorder.emit("forward", t=0.0, msg=0, src=0, dst=1)
        target.query_batch(BACKEND_PROBES)

    ratio = float("inf")
    for _attempt in range(5):
        baseline = _best_seconds(plain, rounds=50)
        instrumented = _best_seconds(guarded, rounds=50)
        ratio = min(ratio, instrumented / baseline)
        if ratio <= NULL_RECORDER_OVERHEAD_LIMIT:
            break
    print(f"null-recorder guard overhead: {(ratio - 1) * 100:.2f}%")
    assert ratio <= NULL_RECORDER_OVERHEAD_LIMIT, (
        f"disabled instrumentation slows the kernels by "
        f"{(ratio - 1) * 100:.1f}% (limit 5%)"
    )
