"""Micro-benchmarks of the TCBF primitives.

The paper's efficiency argument (Sec. V-A): "the operations performed
are only hashing and table lookup" — insert, query, merge, and decay
must all be cheap enough to run on every contact of a human network.
These are real timed benchmarks (multiple rounds), not one-shot runs.
"""

import pytest

from repro.core.bloom import BloomFilter
from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.workload.keys import twitter_trends_2009

FAMILY = HashFamily(4, 256)
KEYS = twitter_trends_2009().keys


@pytest.fixture
def loaded_tcbf():
    return TemporalCountingBloomFilter.of(KEYS, family=FAMILY, initial_value=50)


def test_bench_insert_38_keys(benchmark):
    def build():
        t = TemporalCountingBloomFilter(family=FAMILY, initial_value=50)
        t.insert_all(KEYS)
        return t

    result = benchmark(build)
    assert len(result) > 0


def test_bench_existential_query(benchmark, loaded_tcbf):
    result = benchmark(lambda: loaded_tcbf.query("NewMoon"))
    assert result is True


def test_bench_query_uncached_keys(benchmark, loaded_tcbf):
    """Query cost including the blake2b hash (cache misses)."""
    counter = iter(range(10**9))

    def probe():
        return loaded_tcbf.query(f"probe-{next(counter)}")

    benchmark(probe)


def test_bench_preferential_query(benchmark, loaded_tcbf):
    other = TemporalCountingBloomFilter.of(
        KEYS[:10], family=FAMILY, initial_value=30
    )
    value = benchmark(lambda: loaded_tcbf.preference("NewMoon", other))
    assert value != 0.0


def test_bench_m_merge(benchmark, loaded_tcbf):
    other = TemporalCountingBloomFilter.of(KEYS[:19], family=FAMILY)

    def merge():
        target = loaded_tcbf.copy()
        target.m_merge(other)
        return target

    benchmark(merge)


def test_bench_a_merge(benchmark, loaded_tcbf):
    other = TemporalCountingBloomFilter.of(KEYS[:19], family=FAMILY)

    def merge():
        target = loaded_tcbf.copy()
        target.a_merge(other)
        return target

    benchmark(merge)


def test_bench_decay_full_filter(benchmark, loaded_tcbf):
    def decay():
        target = loaded_tcbf.copy()
        target.decay(1.0)
        return target

    benchmark(decay)


def test_bench_bloom_query_baseline(benchmark):
    bf = BloomFilter.of(KEYS, family=FAMILY)
    benchmark(lambda: bf.query("NewMoon"))
