"""Table I — trace parameters (paper vs synthetic substitutes).

Regenerates the dataset-parameter table: node counts, durations, and
contact counts of the two evaluation traces, next to the paper's
published values.  At ``BSUB_BENCH_SCALE=1.0`` the Haggle-like trace is
calibrated to the published 67,360 contacts.
"""

from repro.experiments.tables import PAPER_TABLE_I, format_table_i, table_i_rows
from repro.traces.stats import compute_stats

from .conftest import BENCH_SCALE, emit


def test_table1_trace_parameters(benchmark, haggle_trace, mit_trace):
    rows = benchmark.pedantic(
        lambda: table_i_rows([haggle_trace, mit_trace]), rounds=1, iterations=1
    )
    text = format_table_i([haggle_trace, mit_trace])
    stats = [compute_stats(t) for t in (haggle_trace, mit_trace)]
    extra = "\n".join(
        f"{s.name}: contacts/day={s.contacts_per_day:.0f}  "
        f"mean degree={s.mean_degree:.1f}  "
        f"median inter-contact={s.median_inter_contact_s / 60:.0f} min"
        for s in stats
    )
    emit(
        "table1",
        f"{text}\n\n(run at scale {BENCH_SCALE:g}; contacts scale linearly)\n{extra}",
    )

    # Structural checks against the published Table I.
    haggle_row, mit_row = rows
    assert haggle_row[2] == PAPER_TABLE_I["Haggle(Infocom'06)"]["Number of nodes"]
    assert mit_row[2] == PAPER_TABLE_I["MIT reality"]["Number of nodes"]
    expected_contacts = 67_360 * BENCH_SCALE
    assert abs(haggle_row[3] - expected_contacts) / expected_contacts < 0.15
    # the paper's cross-trace property: MIT is the sparser network
    assert mit_row[3] < haggle_row[3]
