"""Sec. VI-D / Eq. 9-10 — optimal TCBF allocation under a memory bound.

Regenerates the allocation trade-off: for a range of memory bounds,
the optimal filter count h, the fill-ratio threshold, and the joint
FPR — demonstrating that the binary-searched maximum h minimises the
joint FPR among all feasible h.
"""

import pytest

from repro.core.allocation import plan_allocation
from repro.core.analysis import joint_false_positive_rate, multi_filter_memory_bytes
from repro.experiments.report import format_table

from .conftest import emit

TOTAL_KEYS = 150  # a busy broker's collected interests
BOUNDS = (300, 500, 800, 1200, 2000, 4000)


def test_allocation_table(benchmark):
    plans = benchmark.pedantic(
        lambda: [plan_allocation(TOTAL_KEYS, b) for b in BOUNDS],
        rounds=3,
        iterations=1,
    )
    rows = [
        [
            bound,
            plan.num_filters,
            plan.keys_per_filter,
            plan.fill_ratio_threshold,
            plan.joint_fpr,
            plan.memory_bytes,
        ]
        for bound, plan in zip(BOUNDS, plans)
    ]
    text = format_table(
        ["bound (B)", "h*", "keys/filter", "F_t", "joint FPR", "memory (B)"],
        rows,
        title=f"Eq. 9-10 — optimal allocation for {TOTAL_KEYS} keys (m=256, k=4)",
    )
    emit("allocation", text)

    # more memory -> more filters -> lower joint FPR (Eq. 10's monotonicity)
    fprs = [p.joint_fpr for p in plans]
    assert fprs == sorted(fprs, reverse=True)
    hs = [p.num_filters for p in plans]
    assert hs == sorted(hs)


def test_allocation_optimality_exhaustive(benchmark):
    """The binary-searched h beats every other feasible h on joint FPR."""
    bound = 1000.0

    plan = benchmark.pedantic(
        lambda: plan_allocation(TOTAL_KEYS, bound), rounds=3, iterations=1
    )
    feasible = [
        h
        for h in range(1, 64)
        if multi_filter_memory_bytes(h, TOTAL_KEYS, 256, 4) < bound
    ]
    assert plan.num_filters == max(feasible)
    best = min(
        joint_false_positive_rate([TOTAL_KEYS / h] * h, 256, 4) for h in feasible
    )
    assert plan.joint_fpr == pytest.approx(best)
