"""Ablations of B-SUB's design choices (DESIGN.md Sec. 5).

* **M-merge vs A-merge between brokers** — the paper's Fig. 6 argument:
  additive merging in broker loops manufactures bogus counters, which
  misdirects forwarding and inflates overhead.
* **Dynamic election vs static broker set** — the Sec. V-B election
  against an oracle that pins the top-30 % most central nodes.
* **Lazy vs eager decay** — the implementation's one deviation from the
  paper's constant-decrement description; verified observationally
  equivalent on a live filter.
"""

import pytest

from repro.core.hashing import HashFamily
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment
from repro.pubsub.broker_allocation import StaticBrokerSet
from repro.social.centrality import degree_centrality

from .conftest import bench_config, emit

TTL_MIN = 600.0


def _config(**overrides):
    return bench_config(ttl_min=TTL_MIN, **overrides)


@pytest.fixture(scope="module")
def merge_ablation(haggle_trace):
    m_merge = run_experiment(haggle_trace, "B-SUB", _config())
    a_merge = run_experiment(
        haggle_trace, "B-SUB", _config(broker_broker_additive_merge=True)
    )
    return m_merge, a_merge


def test_ablation_broker_merge_rule(benchmark, merge_ablation):
    m_merge, a_merge = benchmark.pedantic(
        lambda: merge_ablation, rounds=1, iterations=1
    )
    rows = [
        ["M-merge (paper)", m_merge.summary.delivery_ratio,
         m_merge.summary.forwardings_per_delivered,
         m_merge.summary.false_positive_ratio],
        ["A-merge (Fig. 6 pathology)", a_merge.summary.delivery_ratio,
         a_merge.summary.forwardings_per_delivered,
         a_merge.summary.false_positive_ratio],
    ]
    emit(
        "ablation_merge",
        format_table(
            ["broker-broker merge", "delivery", "fwd/delivered", "FPR"],
            rows,
            title="Ablation — broker-broker merge rule (Fig. 6)",
        ),
    )
    # Bogus counters keep stale interests alive: the A-merge variant
    # must not beat the paper's M-merge on overhead efficiency.
    assert (
        a_merge.summary.num_forwardings >= 0.8 * m_merge.summary.num_forwardings
    )


def test_ablation_election_vs_static(benchmark, haggle_trace):
    def run_static():
        centrality = degree_centrality(haggle_trace)
        static = StaticBrokerSet.top_fraction(centrality, 0.3)
        config = _config(static_brokers=tuple(sorted(static.brokers())))
        return run_experiment(haggle_trace, "B-SUB", config)

    static_result = benchmark.pedantic(run_static, rounds=1, iterations=1)
    dynamic_result = run_experiment(haggle_trace, "B-SUB", _config())
    rows = [
        ["dynamic election (paper)", dynamic_result.broker_fraction,
         dynamic_result.summary.delivery_ratio,
         dynamic_result.summary.forwardings_per_delivered],
        ["static top-30% oracle", 0.3,
         static_result.summary.delivery_ratio,
         static_result.summary.forwardings_per_delivered],
    ]
    emit(
        "ablation_election",
        format_table(
            ["broker allocation", "broker frac", "delivery", "fwd/delivered"],
            rows,
            title="Ablation — broker allocation scheme",
        ),
    )
    # The decentralised election should reach a usable fraction of the
    # oracle's delivery ratio.
    assert (
        dynamic_result.summary.delivery_ratio
        > 0.5 * static_result.summary.delivery_ratio
    )


def test_ablation_lazy_vs_eager_decay(benchmark):
    """advance(T) must equal T small decay steps, at a fraction of the cost."""
    family = HashFamily(4, 256)
    keys = [f"key-{i}" for i in range(30)]

    def lazy():
        f = TemporalCountingBloomFilter.of(
            keys, family=family, initial_value=50, decay_factor=0.5
        )
        f.advance(60.0)
        return f

    def eager():
        f = TemporalCountingBloomFilter.of(
            keys, family=family, initial_value=50, decay_factor=0.5
        )
        for _ in range(60):
            f.decay(0.5)
        return f

    lazy_result = benchmark(lazy)
    eager_result = eager()
    assert lazy_result.counters() == pytest.approx(eager_result.counters())
