"""Out-of-core scaling benchmark: trace backends × execution modes.

Measures passive replay of a city-style synthetic dataset under every
trace backend ({object, columnar, mmap}) crossed with serial vs sharded
execution, and persists wall-clock and peak-RSS curves to
``benchmarks/results/BENCH_scale.json``.

Every cell runs in a **fresh subprocess** so its peak RSS is its own:
the child samples ``RssAnon`` from ``/proc/self/status`` on a
background thread (anonymous memory — the number that grows when a
backend materialises the trace; an mmap replay's file-backed pages are
reclaimable cache and deliberately excluded) and reports ``VmHWM``
(total peak resident, file-backed included) alongside for transparency.
Each child also fingerprints its :class:`SimulationReport`, and the
parent asserts every (backend, execution) cell of a dataset produced
the *identical* report — sharding and storage are observationally
inert.

Honesty notes baked into the output document:

* ``env.cpu_count`` is recorded; on a single-core machine the sharded
  cells exercise the shard/merge machinery but cannot show parallel
  speedup, so the wall-clock headline compares against the ``object``
  baseline there instead of ``columnar``.
* Backends are skipped (and logged) above their practical size:
  ``object`` materialises a Python object per contact and is capped at
  ``OBJECT_MAX_CONTACTS``.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scale.py            # default curve
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke    # CI quick mode
    PYTHONPATH=src python benchmarks/bench_scale.py --city     # adds 1M-node / 100M-contact cell

or through pytest (smoke cell only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_scale.json"

#: Replay-speedup floor at the largest cell (fast path vs baseline).
REQUIRED_SPEEDUP = 3.0
#: Peak-RssAnon floor: columnar replay over mmap replay at the largest
#: cell both complete (mmap keeps the trace out of anonymous memory).
REQUIRED_MEMORY_RATIO = 3.0

#: ``object`` builds a Python object per contact (~hundreds of bytes
#: each); above this it is skipped and the skip is logged.
OBJECT_MAX_CONTACTS = 3_000_000

#: (label, target contacts, nodes, communities)
SMOKE_CELLS = [("300k", 300_000, 5_000, 50)]
FULL_CELLS = [
    ("2M", 2_000_000, 50_000, 500),
    ("10M", 10_000_000, 200_000, 2_000),
]
CITY_CELL = ("100M", 100_000_000, 1_000_000, 20_000)

SHARDS = 4


# -- child process: one (backend, shards) replay --------------------------


def _proc_status_kb(field: str) -> Optional[int]:
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1])
    except OSError:
        return None
    return None


class _RssSampler:
    """Background max-RssAnon sampler (kB); no-op off Linux."""

    def __init__(self, interval_s: float = 0.02):
        self.interval_s = interval_s
        self.peak_kb = _proc_status_kb("RssAnon") or 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            sample = _proc_status_kb("RssAnon")
            if sample is not None and sample > self.peak_kb:
                self.peak_kb = sample
            self._stop.wait(self.interval_s)

    def __enter__(self) -> "_RssSampler":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        sample = _proc_status_kb("RssAnon")
        if sample is not None and sample > self.peak_kb:
            self.peak_kb = sample


def _fingerprint(report) -> Dict:
    digest = hashlib.sha256()
    for node in sorted(report.contacts_by_node):
        digest.update(f"{node}:{report.contacts_by_node[node]};".encode())
    return {
        "num_contacts": report.num_contacts,
        "end_time": report.end_time,
        "channels_exhausted": report.channels_exhausted,
        "nodes_seen": len(report.contacts_by_node),
        "contacts_by_node_sha256": digest.hexdigest(),
    }


def _child_main(spec_json: str) -> int:
    spec = json.loads(spec_json)
    from repro.dtn import PassiveProtocol, Simulation
    from repro.dtn.bandwidth import BLUETOOTH_EFFECTIVE_BPS
    from repro.traces import open_trace_dataset

    with _RssSampler() as sampler:
        t0 = time.perf_counter()
        trace = open_trace_dataset(spec["dataset"], backend=spec["backend"])
        t1 = time.perf_counter()
        report = Simulation(
            trace,
            PassiveProtocol(),
            rate_bps=BLUETOOTH_EFFECTIVE_BPS,
            shards=spec["shards"],
        ).run()
        t2 = time.perf_counter()
    result = {
        "open_s": t1 - t0,
        "replay_s": t2 - t1,
        "peak_rss_anon_kb": sampler.peak_kb,
        "vm_hwm_kb": _proc_status_kb("VmHWM"),
        "fingerprint": _fingerprint(report),
    }
    print(json.dumps(result))
    return 0


# -- parent: grid orchestration -------------------------------------------


def _run_child(dataset: str, backend: str, shards: Optional[int]) -> Dict:
    spec = {"dataset": dataset, "backend": backend, "shards": shards}
    proc = subprocess.run(
        [sys.executable, __file__, "--child", json.dumps(spec)],
        capture_output=True,
        text=True,
        env=os.environ.copy(),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"child {backend}/shards={shards} failed:\n{proc.stderr}"
        )
    return json.loads(proc.stdout.splitlines()[-1])


def _generate_dataset(
    label: str, contacts: int, nodes: int, communities: int,
    root: Path, log,
) -> Dict:
    from repro.traces.synthetic import CityTraceConfig, generate_city_trace

    path = root / f"scale-{label}"
    config = CityTraceConfig(
        num_nodes=nodes,
        duration_days=3.0,
        target_contacts=contacts,
        num_communities=communities,
        seed=11,
        name=f"scale-{label}",
    )
    t0 = time.perf_counter()
    trace = generate_city_trace(config, str(path))
    generate_s = time.perf_counter() - t0
    log(
        f"  [{label}] generated {trace.num_contacts} contacts "
        f"({nodes} nodes) in {generate_s:.1f}s"
    )
    return {
        "path": str(path),
        "num_contacts": trace.num_contacts,
        "num_nodes": nodes,
        "generate_s": generate_s,
    }


def run_cell(
    label: str, contacts: int, nodes: int, communities: int,
    root: Path, log=print,
) -> Dict:
    dataset = _generate_dataset(label, contacts, nodes, communities, root, log)
    cell: Dict = {
        "label": label,
        "target_contacts": contacts,
        "num_contacts": dataset["num_contacts"],
        "num_nodes": nodes,
        "generate_s": dataset["generate_s"],
        "skipped": [],
        "runs": {},
    }
    fingerprints = {}
    for backend in ("object", "columnar", "mmap"):
        if backend == "object" and dataset["num_contacts"] > OBJECT_MAX_CONTACTS:
            cell["skipped"].append(
                f"object backend skipped above {OBJECT_MAX_CONTACTS} contacts"
            )
            log(f"  [{label}] backend=object SKIPPED (too large)")
            continue
        for mode, shards in (("serial", None), ("sharded", SHARDS)):
            key = f"{backend}-{mode}"
            log(f"  [{label}] {key} ...")
            measured = _run_child(dataset["path"], backend, shards)
            fingerprints[key] = measured.pop("fingerprint")
            cell["runs"][key] = measured
            log(
                f"  [{label}] {key}: replay={measured['replay_s']:.2f}s "
                f"peak-anon={measured['peak_rss_anon_kb'] / 1024:.0f}MB"
            )
    reference = fingerprints["mmap-serial"]
    for key, fingerprint in fingerprints.items():
        if fingerprint != reference:
            raise AssertionError(
                f"cell {label}: {key} report disagrees with mmap-serial: "
                f"{fingerprint} != {reference}"
            )
    cell["report_fingerprint"] = reference
    runs = cell["runs"]
    baseline_key = (
        "object-serial" if "object-serial" in runs else "columnar-serial"
    )
    cell["baseline"] = baseline_key
    cell["speedup_replay_vs_baseline"] = (
        runs[baseline_key]["replay_s"] / runs["mmap-sharded"]["replay_s"]
    )
    cell["speedup_sharded_mmap_vs_serial_columnar"] = (
        runs["columnar-serial"]["replay_s"] / runs["mmap-sharded"]["replay_s"]
    )
    cell["rss_anon_ratio_columnar_over_mmap"] = (
        runs["columnar-serial"]["peak_rss_anon_kb"]
        / max(1, runs["mmap-sharded"]["peak_rss_anon_kb"])
    )
    return cell


def run_benchmark(
    smoke: bool = False,
    city: bool = False,
    out_path: Optional[Path] = RESULTS_PATH,
    log=print,
) -> Dict:
    cells_spec = list(SMOKE_CELLS if smoke else FULL_CELLS)
    if city:
        cells_spec.append(CITY_CELL)
    cells: List[Dict] = []
    with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
        for label, contacts, nodes, communities in cells_spec:
            cells.append(
                run_cell(label, contacts, nodes, communities, Path(tmp), log)
            )
    import numpy

    document = {
        "mode": "smoke" if smoke else ("city" if city else "full"),
        "required_speedup_replay": REQUIRED_SPEEDUP,
        "required_rss_anon_ratio": REQUIRED_MEMORY_RATIO,
        "env": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "numpy": numpy.__version__,
        },
        "notes": {
            "isolation": "every (backend, execution) cell is a fresh "
                         "subprocess; RSS numbers are per-cell",
            "memory": "peak_rss_anon_kb is max RssAnon sampled from "
                      "/proc/self/status (anonymous memory only — mmap "
                      "file-backed pages are reclaimable and excluded); "
                      "vm_hwm_kb is the total peak resident for "
                      "transparency",
            "speedup": "speedup_replay_vs_baseline divides the serial "
                       "baseline backend's replay by the sharded-mmap "
                       "replay; on single-core machines sharded cells "
                       "cannot show parallel speedup and the baseline "
                       "is the object backend where it ran",
            "replay": "PassiveProtocol (engine accounting only) at "
                      "Bluetooth effective bandwidth",
        },
        "cells": cells,
    }
    document["headline"] = _headline(cells)
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        log(f"wrote {out_path}")
    return document


def _headline(cells: List[Dict]) -> Dict:
    """Headline numbers, each read at the largest cell that supports it.

    The speedup claim needs the legacy ``object`` baseline, which is
    skipped on huge cells, so it is taken from the largest cell where
    object actually ran; the memory claim compares columnar vs mmap and
    is taken from the largest cell with both.  The largest cell's own
    columnar-vs-mmap wall-clock is recorded alongside for transparency.
    """
    speed = next(
        (c for c in reversed(cells) if c["baseline"] == "object-serial"),
        cells[-1],
    )
    memory = next(
        (
            c for c in reversed(cells)
            if "columnar-serial" in c["runs"] and "mmap-sharded" in c["runs"]
        ),
        cells[-1],
    )
    largest = cells[-1]
    return {
        "speedup_cell": speed["label"],
        "speedup_baseline": speed["baseline"],
        "speedup_replay_vs_baseline": speed["speedup_replay_vs_baseline"],
        "memory_cell": memory["label"],
        "rss_anon_ratio_columnar_over_mmap":
            memory["rss_anon_ratio_columnar_over_mmap"],
        "mmap_sharded_peak_rss_anon_kb":
            memory["runs"]["mmap-sharded"]["peak_rss_anon_kb"],
        "largest_cell": largest["label"],
        "largest_num_contacts": largest["num_contacts"],
        "largest_speedup_sharded_mmap_vs_serial_columnar":
            largest["speedup_sharded_mmap_vs_serial_columnar"],
    }


def check_thresholds(document: Dict) -> List[str]:
    """Threshold failures for a non-smoke document ([] = pass)."""
    headline = document["headline"]
    failures = []
    if headline["speedup_replay_vs_baseline"] < document["required_speedup_replay"]:
        failures.append(
            f"replay speedup {headline['speedup_replay_vs_baseline']:.2f}x "
            f"(sharded-mmap vs {headline['speedup_baseline']} at "
            f"{headline['speedup_cell']}) "
            f"< required {document['required_speedup_replay']}x"
        )
    ratio = headline["rss_anon_ratio_columnar_over_mmap"]
    if ratio < document["required_rss_anon_ratio"]:
        failures.append(
            f"peak-RssAnon ratio (columnar/mmap) {ratio:.2f}x "
            f"at {headline['memory_cell']} "
            f"< required {document['required_rss_anon_ratio']}x"
        )
    return failures


# -- pytest entry point (smoke cell only) ---------------------------------


def test_bench_scale_smoke():
    document = run_benchmark(smoke=True, out_path=None, log=lambda *_: None)
    cell = document["cells"][0]
    assert cell["num_contacts"] > 0
    assert "mmap-sharded" in cell["runs"]
    # Identical-report assertion already ran inside run_cell; at smoke
    # scale only direction is asserted, thresholds are for full runs.
    assert cell["rss_anon_ratio_columnar_over_mmap"] > 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--child", metavar="JSON", default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument(
        "--smoke", action="store_true",
        help="quick mode: smallest cell only, no threshold enforcement",
    )
    parser.add_argument(
        "--city", action="store_true",
        help="append the 1M-node / 100M-contact city cell",
    )
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH,
        help=f"output JSON path (default: {RESULTS_PATH})",
    )
    args = parser.parse_args(argv)
    if args.child is not None:
        return _child_main(args.child)
    document = run_benchmark(smoke=args.smoke, city=args.city, out_path=args.out)
    if not args.smoke:
        failures = check_thresholds(document)
        for failure in failures:
            print(f"THRESHOLD FAILURE: {failure}", file=sys.stderr)
        if failures:
            return 1
    headline = document["headline"]
    print(
        f"headline: {headline['speedup_replay_vs_baseline']:.2f}x replay "
        f"vs {headline['speedup_baseline']} at "
        f"{headline['speedup_cell']}; "
        f"{headline['rss_anon_ratio_columnar_over_mmap']:.2f}x lower "
        f"anonymous peak RSS (mmap vs columnar) at "
        f"{headline['memory_cell']}, mmap-sharded peak "
        f"{headline['mmap_sharded_peak_rss_anon_kb'] / 1024:.0f}MB at "
        f"{headline['largest_num_contacts']} contacts"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
