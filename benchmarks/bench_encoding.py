"""Interest-encoding ablation — TCBF vs raw strings, in-protocol.

Sec. IV-B's claim is that the TCBF "reduces bandwidth requirements in
interests propagation" versus raw strings, at the price of false
positives.  The static memory comparison lives in bench_memory; this
bench measures the claim *dynamically*: the same B-SUB run under both
encodings, comparing total bytes moved, control-plane share, delivery,
and the false-positive traffic only the TCBF produces.
"""

import pytest

from repro.experiments.report import format_table
from repro.experiments.runner import run_experiment

from .conftest import bench_config, emit


def _run_pair(trace):
    base = dict(ttl_min=600.0)
    tcbf = run_experiment(trace, "B-SUB", bench_config(**base))
    raw = run_experiment(
        trace, "B-SUB", bench_config(interest_encoding="raw", **base)
    )
    return tcbf, raw


@pytest.fixture(scope="module")
def pair(haggle_trace):
    return _run_pair(haggle_trace)


def _control_bytes(result):
    """Bytes spent on filters/interest lists rather than messages."""
    message_bytes = 0.0
    # forwardings carry whole messages; everything else is control.
    # We approximate message bytes as forwardings x mean size (70 B).
    message_bytes = result.summary.num_forwardings * 70.0
    return max(result.engine.bytes_transferred - message_bytes, 0.0)


def test_encoding_ablation(benchmark, haggle_trace, pair):
    benchmark.pedantic(lambda: pair, rounds=1, iterations=1)
    tcbf, raw = pair
    rows = []
    for label, result in (("TCBF (paper)", tcbf), ("raw strings", raw)):
        rows.append(
            [
                label,
                result.summary.delivery_ratio,
                result.engine.bytes_transferred / 1e6,
                _control_bytes(result) / 1e6,
                result.summary.false_injection_ratio,
                result.summary.useless_injection_ratio,
            ]
        )
    emit(
        "ablation_encoding",
        format_table(
            ["interest encoding", "delivery", "total MB", "control MB",
             "false inj.", "useless inj."],
            rows,
            title="Ablation — Sec. IV-B: TCBF vs raw-string interests",
        ),
    )

    # The TCBF's purpose: less control traffic per unit of delivery...
    assert _control_bytes(tcbf) <= _control_bytes(raw) * 1.05
    # ...with comparable delivery,
    assert tcbf.summary.delivery_ratio == pytest.approx(
        raw.summary.delivery_ratio, abs=0.15
    )
    # and the cost it pays that raw strings don't:
    assert raw.summary.false_injection_ratio == 0.0
    assert tcbf.summary.false_injection_ratio >= 0.0
