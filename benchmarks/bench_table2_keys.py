"""Table II — the top-4 key distribution of the Twitter-trend workload.

Regenerates the published key-weight rows and validates the workload's
secondary properties (38 keys, ≈11.5-byte mean length, ≤5 bytes per
encoded key at m = 256 / k = 4).
"""

import pytest

from repro.core.analysis import filter_memory_bytes
from repro.experiments.tables import format_table_ii, table_ii_rows
from repro.workload.keys import twitter_trends_2009

from .conftest import emit


def test_table2_key_distribution(benchmark):
    rows = benchmark.pedantic(table_ii_rows, rounds=1, iterations=1)
    dist = twitter_trends_2009()
    text = format_table_ii()
    text += (
        f"\n\nkeys: {len(dist)}   "
        f"average key length: {dist.average_key_length():.2f} bytes "
        "(paper: 11.5)"
    )
    emit("table2", text)

    assert rows == [
        ("NewMoon", 0.132),
        ("Twitter'sNew", 0.103),
        ("funnybutnotcool", 0.0887),
        ("openwebawards", 0.0739),
    ]
    assert len(dist) == 38
    assert dist.average_key_length() == pytest.approx(11.5, abs=0.5)


def test_table2_encoding_bound(benchmark):
    """Sec. VII-A: 'at most 5 bytes are used to encode a single key'."""
    per_key = benchmark.pedantic(
        lambda: filter_memory_bytes(4, 256, "identical"), rounds=1, iterations=1
    )
    assert per_key <= 5.0
