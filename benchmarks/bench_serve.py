"""BENCH_serve — live-broker throughput and latency vs session count.

Runs the :mod:`repro.serve` asyncio broker in-process and drives it
with the deterministic load generator (``python -m repro load``) in a
*subprocess*, so broker and clients each own their own file-descriptor
budget and event loop — the broker cell is measured, not the client.
Each cell records connected sessions, publish throughput, end-to-end
delivery latency percentiles (client-measured over real sockets), and
the broker's own counters; every cell asserts **zero decode errors**,
which is the PR's acceptance bar for the session layer.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI quick

or through pytest (smoke cell only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q

The full ladder climbs to 10 000 concurrent sessions; the soft
RLIMIT_NOFILE is raised to the hard limit first, since the broker
holds one socket per session.
"""

import argparse
import asyncio
import json
import os
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.serve import BrokerServer, ServeSpec

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve.json"

#: (label, sessions, duration_s, publisher_fraction, rate_per_s)
SMOKE_CELLS = [("smoke-200", 200, 3.0, 0.1, 2.0)]
FULL_CELLS = [
    ("s1k", 1_000, 10.0, 0.1, 1.0),
    ("s5k", 5_000, 10.0, 0.1, 1.0),
    ("s10k", 10_000, 12.0, 0.05, 1.0),
]


def _raise_nofile() -> int:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0]


async def _run_cell_async(
    label: str,
    sessions: int,
    duration_s: float,
    publisher_fraction: float,
    rate_per_s: float,
    log,
) -> Dict:
    server = BrokerServer(ServeSpec(port=0, idle_timeout_s=duration_s + 60))
    await server.start()
    spec_str = (
        f"port={server.port},sessions={sessions},"
        f"duration_s={duration_s},publisher_fraction={publisher_fraction},"
        f"publish_rate_per_s={rate_per_s},interests_per_node=2,seed=13"
    )
    started = time.perf_counter()
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", "load",
        "--spec", spec_str, "--json",
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": _pythonpath()},
    )
    stdout, stderr = await proc.communicate()
    wall_s = time.perf_counter() - started
    if proc.returncode != 0:
        raise RuntimeError(
            f"load driver failed (rc={proc.returncode}): "
            f"{stderr.decode()[-2000:]}"
        )
    report = json.loads(stdout.decode().strip().splitlines()[-1])
    summary = await server.stop()
    parity = server.core.parity_counters()
    cell = {
        "label": label,
        "sessions": sessions,
        "sessions_connected": report["sessions_connected"],
        "connect_failures": report["connect_failures"],
        "duration_s": duration_s,
        "wall_s": round(wall_s, 3),
        "messages_published": report["messages_published"],
        "deliveries_client": report["deliveries_received"],
        "deliveries_broker": parity["deliveries_total"],
        "decode_errors": report["decode_errors"],
        "delivery_completeness": round(
            report["deliveries_received"]
            / max(1, parity["deliveries_total"]), 4
        ),
        "publish_throughput_per_s": round(
            report["messages_published"] / duration_s, 2
        ),
        "delivery_throughput_per_s": round(
            report["deliveries_received"] / duration_s, 2
        ),
        "latency_ms": report["latency"],
        "broker_summary": summary,
    }
    log(
        f"{label}: {cell['sessions_connected']}/{sessions} sessions, "
        f"{cell['delivery_throughput_per_s']}/s delivered, "
        f"p95={report['latency']['p95_ms']:.2f}ms, "
        f"decode_errors={report['decode_errors']}"
    )
    return cell


def _pythonpath() -> str:
    src = str(Path(__file__).parent.parent / "src")
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}:{existing}" if existing else src


def run_benchmark(
    smoke: bool = False,
    out_path: Optional[Path] = RESULTS_PATH,
    log=print,
) -> Dict:
    nofile = _raise_nofile()
    cells_spec = SMOKE_CELLS if smoke else FULL_CELLS
    cells: List[Dict] = []
    for label, sessions, duration, fraction, rate in cells_spec:
        if sessions + 256 > nofile:
            log(f"{label}: skipped (needs >{sessions} fds, limit {nofile})")
            continue
        cells.append(
            asyncio.run(
                _run_cell_async(
                    label, sessions, duration, fraction, rate, log
                )
            )
        )
    document = {
        "mode": "smoke" if smoke else "full",
        "env": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "rlimit_nofile": nofile,
        },
        "notes": {
            "topology": "broker in-process, load driver in a subprocess "
                        "(separate fd budgets and event loops)",
            "latency": "client-measured end-to-end over loopback: "
                       "publisher created_at stamp to subscriber decode",
            "acceptance": "every cell must report decode_errors == 0 and "
                          "all sessions connected",
            "completeness": "deliveries_client / deliveries_broker; below "
                            "1.0 at saturation means the run window closed "
                            "while fanout deliveries were still in flight "
                            "(clients disconnect at duration end), not a "
                            "decode failure",
        },
        "cells": cells,
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        log(f"wrote {out_path}")
    return document


def check_acceptance(document: Dict) -> List[str]:
    """Acceptance failures across all cells ([] = pass)."""
    failures = []
    for cell in document["cells"]:
        if cell["decode_errors"]:
            failures.append(
                f"{cell['label']}: {cell['decode_errors']} decode errors"
            )
        if cell["sessions_connected"] != cell["sessions"]:
            failures.append(
                f"{cell['label']}: only {cell['sessions_connected']}"
                f"/{cell['sessions']} sessions connected"
            )
        if cell["deliveries_client"] == 0:
            failures.append(f"{cell['label']}: no deliveries decoded")
    return failures


# -- pytest entry point (smoke cell only) ----------------------------------


def test_bench_serve_smoke():
    document = run_benchmark(smoke=True, out_path=None, log=lambda *_: None)
    assert document["cells"], "smoke cell skipped (fd limit?)"
    assert check_acceptance(document) == []
    cell = document["cells"][0]
    assert cell["messages_published"] > 0
    assert cell["deliveries_client"] > 0
    # At smoke scale the drain completes: client decoded every delivery.
    assert cell["deliveries_client"] == cell["deliveries_broker"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: one small cell")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help=f"output JSON path (default: {RESULTS_PATH})")
    args = parser.parse_args(argv)
    document = run_benchmark(smoke=args.smoke, out_path=args.out)
    failures = check_acceptance(document)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
