"""BENCH_serve — live-broker throughput and latency vs sessions and workers.

Runs the :mod:`repro.serve` broker in-process and drives it with the
deterministic load generator (``python -m repro load``) in one or more
*subprocesses*, so broker and clients each own their own
file-descriptor budget and event loop — the broker cell is measured,
not the client.  Each cell records connected sessions, publish
throughput, end-to-end delivery latency percentiles (client-measured
over real sockets), and the broker's own counters; every cell asserts
**zero decode errors**, which is the acceptance bar for the session
layer.

Two ladders:

* **Session ladder** (1k/5k/10k, single process) — the historical
  curve: throughput and latency vs concurrent sessions.
* **Worker ladder** (1/2/4 SO_REUSEPORT workers at equal offered
  load) — fleet scaling.  On a multi-core host the delivery
  throughput should scale with workers; on a single-core host the
  curve is flat (workers time-share one CPU) and the cell honestly
  records ``cpu_count`` so readers can tell which regime they are in.
* **City rung** (100k sessions, 8 workers × 8 sharded load driver
  subprocesses) — both sides shard to stay inside the per-process
  RLIMIT_NOFILE; drivers use ``node_offset`` for disjoint node ids,
  ``ramp_s`` to spread the connect storm, and a per-shard
  ``bind_host`` source IP (``127.0.0.1x``) because a single loopback
  source address tops out at the ~28k-port ephemeral range of
  4-tuples to one broker address.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI quick

or through pytest (smoke cell only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

import argparse
import asyncio
import json
import os
import resource
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.serve import BrokerFleet, BrokerServer, ServeSpec, event_loop_name

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve.json"

#: (label, sessions, duration_s, publisher_fraction, rate_per_s,
#:  workers, load_procs, ramp_s)
SMOKE_CELLS = [("smoke-200", 200, 3.0, 0.1, 2.0, 1, 1, None)]
FULL_CELLS = [
    # Session ladder (single process, historical curve).
    ("s1k", 1_000, 10.0, 0.1, 1.0, 1, 1, None),
    ("s5k", 5_000, 10.0, 0.1, 1.0, 1, 1, None),
    ("s10k", 10_000, 12.0, 0.05, 1.0, 1, 1, None),
    # Worker ladder: identical offered load, growing fleet.
    ("w1-s2k", 2_000, 10.0, 0.1, 1.0, 1, 1, None),
    ("w2-s2k", 2_000, 10.0, 0.1, 1.0, 2, 1, None),
    ("w4-s2k", 2_000, 10.0, 0.1, 1.0, 4, 1, None),
    # City rung: 100k sessions, sharded 8 ways on both sides.  The
    # publisher trickle is tiny on purpose: at 100k subscribers over
    # the 38-key Table II universe a single publish fans out to
    # thousands of sessions, and the rung measures *session scale*
    # (connect storm, fd budgets, mesh replication), not fanout
    # saturation.
    ("s100k", 100_000, 240.0, 0.0, 0.01, 8, 8, 180.0),
]


def _raise_nofile() -> int:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0]


async def _run_load_shard(
    port: int,
    shard: int,
    sessions: int,
    node_offset: int,
    duration_s: float,
    publisher_fraction: float,
    rate_per_s: float,
    ramp_s: Optional[float],
    bind_host: Optional[str],
) -> Dict:
    spec_str = (
        f"port={port},sessions={sessions},"
        f"duration_s={duration_s},publisher_fraction={publisher_fraction},"
        f"publish_rate_per_s={rate_per_s},interests_per_node=2,"
        f"seed={13 + shard},node_offset={node_offset}"
    )
    if ramp_s is not None:
        spec_str += f",ramp_s={ramp_s}"
    if bind_host is not None:
        spec_str += f",bind_host={bind_host}"
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", "load",
        "--spec", spec_str, "--json",
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": _pythonpath()},
    )
    stdout, stderr = await proc.communicate()
    if proc.returncode != 0:
        raise RuntimeError(
            f"load shard {shard} failed (rc={proc.returncode}): "
            f"{stderr.decode()[-2000:]}"
        )
    return json.loads(stdout.decode().strip().splitlines()[-1])


async def _run_cell_async(
    label: str,
    sessions: int,
    duration_s: float,
    publisher_fraction: float,
    rate_per_s: float,
    workers: int,
    load_procs: int,
    ramp_s: Optional[float],
    log,
) -> Dict:
    spec = ServeSpec(
        port=0, idle_timeout_s=duration_s + 60, workers=workers
    )
    if workers > 1:
        broker = BrokerFleet(spec)
    else:
        broker = BrokerServer(spec)
    await broker.start()
    per_shard = sessions // load_procs
    started = time.perf_counter()
    # Above ~28k sessions the loopback 4-tuple space to one broker
    # address runs out of ephemeral source ports; give each shard its
    # own 127.0.0.x source IP so each one gets a full port range.
    reports = await asyncio.gather(*[
        _run_load_shard(
            broker.port, shard, per_shard, shard * per_shard,
            duration_s, publisher_fraction, rate_per_s, ramp_s,
            f"127.0.0.{10 + shard}" if load_procs > 1 else None,
        )
        for shard in range(load_procs)
    ])
    wall_s = time.perf_counter() - started
    summary = await broker.stop()
    if workers > 1:
        parity = summary["parity"]
    else:
        parity = broker.core.parity_counters()

    def total(key: str) -> int:
        return sum(report[key] for report in reports)

    # Across shards the exact union percentile is unknowable from
    # per-shard digests; report the worst shard as the upper envelope.
    latency = max(
        (report["latency"] for report in reports),
        key=lambda d: d["p95_ms"],
    )
    cell = {
        "label": label,
        "sessions": per_shard * load_procs,
        "workers": workers,
        "load_procs": load_procs,
        "ramp_s": ramp_s,
        "sessions_connected": total("sessions_connected"),
        "connect_failures": total("connect_failures"),
        "duration_s": duration_s,
        "wall_s": round(wall_s, 3),
        "messages_published": total("messages_published"),
        "deliveries_client": total("deliveries_received"),
        "deliveries_broker": parity["deliveries_total"],
        "decode_errors": total("decode_errors"),
        "delivery_completeness": round(
            total("deliveries_received")
            / max(1, parity["deliveries_total"]), 4
        ),
        "publish_throughput_per_s": round(
            total("messages_published") / duration_s, 2
        ),
        "delivery_throughput_per_s": round(
            total("deliveries_received") / duration_s, 2
        ),
        "delivery_throughput_broker_per_s": round(
            parity["deliveries_total"] / wall_s, 2
        ),
        "latency_ms": latency,
        "broker_summary": summary,
    }
    log(
        f"{label}: {cell['sessions_connected']}/{cell['sessions']} sessions "
        f"x{workers} workers, "
        f"{cell['delivery_throughput_per_s']}/s delivered, "
        f"p95={latency['p95_ms']:.2f}ms, "
        f"decode_errors={cell['decode_errors']}"
    )
    return cell


def _pythonpath() -> str:
    src = str(Path(__file__).parent.parent / "src")
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}:{existing}" if existing else src


def run_benchmark(
    smoke: bool = False,
    out_path: Optional[Path] = RESULTS_PATH,
    log=print,
) -> Dict:
    nofile = _raise_nofile()
    cells_spec = SMOKE_CELLS if smoke else FULL_CELLS
    cells: List[Dict] = []
    for (label, sessions, duration, fraction, rate,
         workers, load_procs, ramp_s) in cells_spec:
        # Both sides shard: each load subprocess holds sessions/procs
        # sockets, each broker worker roughly sessions/workers.
        per_process = max(sessions // load_procs, sessions // workers)
        if per_process + 256 > nofile:
            log(f"{label}: skipped (needs >{per_process} fds per process, "
                f"limit {nofile})")
            continue
        cells.append(
            asyncio.run(
                _run_cell_async(
                    label, sessions, duration, fraction, rate,
                    workers, load_procs, ramp_s, log,
                )
            )
        )
    document = {
        "mode": "smoke" if smoke else "full",
        "env": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "rlimit_nofile": nofile,
            "event_loop": event_loop_name(),
        },
        "notes": {
            "topology": "broker in-process (one BrokerServer or an "
                        "SO_REUSEPORT BrokerFleet), load drivers in "
                        "subprocesses (separate fd budgets and event "
                        "loops)",
            "latency": "client-measured end-to-end over loopback: "
                       "publisher created_at stamp to subscriber decode; "
                       "multi-shard cells report the worst shard's "
                       "percentiles (upper envelope)",
            "acceptance": "every cell must report decode_errors == 0 and "
                          "all sessions connected",
            "completeness": "deliveries_client / deliveries_broker; below "
                            "1.0 at saturation means the run window closed "
                            "while fanout deliveries were still in flight "
                            "(clients disconnect at duration end), not a "
                            "decode failure",
            "throughput": "delivery_throughput_per_s counts client-decoded "
                          "deliveries per offered second; at saturation "
                          "prefer delivery_throughput_broker_per_s "
                          "(broker-emitted deliveries per wall second), "
                          "which is not truncated by the drain race",
            "worker_ladder": "w1/w2/w4 cells offer identical load to "
                             "growing fleets; delivery throughput scales "
                             "with workers only when cpu_count allows — "
                             "on a single-core host the workers time-share "
                             "one CPU and the curve is flat with a small "
                             "peer-mesh overhead",
        },
        "cells": cells,
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        log(f"wrote {out_path}")
    return document


def check_acceptance(document: Dict) -> List[str]:
    """Acceptance failures across all cells ([] = pass)."""
    failures = []
    for cell in document["cells"]:
        if cell["decode_errors"]:
            failures.append(
                f"{cell['label']}: {cell['decode_errors']} decode errors"
            )
        if cell["sessions_connected"] != cell["sessions"]:
            failures.append(
                f"{cell['label']}: only {cell['sessions_connected']}"
                f"/{cell['sessions']} sessions connected"
            )
        if cell["deliveries_client"] == 0:
            failures.append(f"{cell['label']}: no deliveries decoded")
    return failures


# -- pytest entry point (smoke cell only) ----------------------------------


def test_bench_serve_smoke():
    document = run_benchmark(smoke=True, out_path=None, log=lambda *_: None)
    assert document["cells"], "smoke cell skipped (fd limit?)"
    assert check_acceptance(document) == []
    cell = document["cells"][0]
    assert cell["messages_published"] > 0
    assert cell["deliveries_client"] > 0
    # At smoke scale the drain completes: client decoded every delivery.
    assert cell["deliveries_client"] == cell["deliveries_broker"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: one small cell")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help=f"output JSON path (default: {RESULTS_PATH})")
    args = parser.parse_args(argv)
    document = run_benchmark(smoke=args.smoke, out_path=args.out)
    failures = check_acceptance(document)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
