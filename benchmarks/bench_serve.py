"""BENCH_serve — live-broker throughput and latency vs sessions and workers.

Runs the :mod:`repro.serve` broker in-process and drives it with the
deterministic load generator (``python -m repro load``) in one or more
*subprocesses*, so broker and clients each own their own
file-descriptor budget and event loop — the broker cell is measured,
not the client.  Each cell records connected sessions, publish
throughput, end-to-end delivery latency percentiles (client-measured
over real sockets), and the broker's own counters; every cell asserts
**zero decode errors**, which is the acceptance bar for the session
layer.

Two ladders:

* **Session ladder** (1k/5k/10k, single process) — the historical
  curve: throughput and latency vs concurrent sessions.
* **Worker ladder** (1/2/4 SO_REUSEPORT workers at equal offered
  load) — fleet scaling.  On a multi-core host the delivery
  throughput should scale with workers; on a single-core host the
  curve is flat (workers time-share one CPU) and the cell honestly
  records ``cpu_count`` so readers can tell which regime they are in.
* **City rung** (100k sessions, 8 workers × 8 sharded load driver
  subprocesses) — both sides shard to stay inside the per-process
  RLIMIT_NOFILE; drivers use ``node_offset`` for disjoint node ids,
  ``ramp_s`` to spread the connect storm, and a per-shard
  ``bind_host`` source IP (``127.0.0.1x``) because a single loopback
  source address tops out at the ~28k-port ephemeral range of
  4-tuples to one broker address.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI quick

or through pytest (smoke cell only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

import argparse
import asyncio
import json
import os
import resource
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.serve import BrokerFleet, BrokerServer, ServeSpec, event_loop_name

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serve.json"

#: (label, sessions, duration_s, publisher_fraction, rate_per_s,
#:  workers, load_procs, ramp_s, trace, live)
#:
#: ``trace`` writes a schema-v2 trace to a temp file; ``live``
#: additionally attaches the in-broker LiveTailer (``spec.live``).
#: The smoke baseline records a trace too, so the smoke pair isolates
#: the tailer alone.
SMOKE_CELLS = [
    ("smoke-200", 200, 3.0, 0.1, 2.0, 1, 1, None, True, False),
    ("smoke-200-live", 200, 3.0, 0.1, 2.0, 1, 1, None, True, True),
]
FULL_CELLS = [
    # Session ladder (single process, historical curve).
    ("s1k", 1_000, 10.0, 0.1, 1.0, 1, 1, None, False, False),
    ("s5k", 5_000, 10.0, 0.1, 1.0, 1, 1, None, False, False),
    ("s10k", 10_000, 12.0, 0.05, 1.0, 1, 1, None, False, False),
    # Worker ladder: identical offered load, growing fleet.
    ("w1-s2k", 2_000, 10.0, 0.1, 1.0, 1, 1, None, False, False),
    ("w2-s2k", 2_000, 10.0, 0.1, 1.0, 2, 1, None, False, False),
    ("w4-s2k", 2_000, 10.0, 0.1, 1.0, 4, 1, None, False, False),
    # Live-observability pair: identical offered load, trace recording
    # on in both; only the second attaches the in-broker LiveTailer.
    # The broker-side throughput delta between the two is the tailer's
    # overhead (<5% target; recorded in live_overhead, not gated —
    # see check_acceptance).
    ("trace-2k", 2_000, 10.0, 0.1, 1.0, 1, 1, None, True, False),
    ("live-2k", 2_000, 10.0, 0.1, 1.0, 1, 1, None, True, True),
    # City rung: 100k sessions, sharded 8 ways on both sides.  The
    # publisher trickle is tiny on purpose: at 100k subscribers over
    # the 38-key Table II universe a single publish fans out to
    # thousands of sessions, and the rung measures *session scale*
    # (connect storm, fd budgets, mesh replication), not fanout
    # saturation.
    ("s100k", 100_000, 240.0, 0.0, 0.01, 8, 8, 180.0, False, False),
]

#: (baseline label, live label) pairs whose broker-side throughput
#: delta is reported as the live tailer's overhead.
LIVE_PAIRS = [("smoke-200", "smoke-200-live"), ("trace-2k", "live-2k")]


def _raise_nofile() -> int:
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft < hard:
        resource.setrlimit(resource.RLIMIT_NOFILE, (hard, hard))
    return resource.getrlimit(resource.RLIMIT_NOFILE)[0]


async def _run_load_shard(
    port: int,
    shard: int,
    sessions: int,
    node_offset: int,
    duration_s: float,
    publisher_fraction: float,
    rate_per_s: float,
    ramp_s: Optional[float],
    bind_host: Optional[str],
) -> Dict:
    spec_str = (
        f"port={port},sessions={sessions},"
        f"duration_s={duration_s},publisher_fraction={publisher_fraction},"
        f"publish_rate_per_s={rate_per_s},interests_per_node=2,"
        f"seed={13 + shard},node_offset={node_offset}"
    )
    if ramp_s is not None:
        spec_str += f",ramp_s={ramp_s}"
    if bind_host is not None:
        spec_str += f",bind_host={bind_host}"
    proc = await asyncio.create_subprocess_exec(
        sys.executable, "-m", "repro", "load",
        "--spec", spec_str, "--json",
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env={**os.environ, "PYTHONPATH": _pythonpath()},
    )
    stdout, stderr = await proc.communicate()
    if proc.returncode != 0:
        raise RuntimeError(
            f"load shard {shard} failed (rc={proc.returncode}): "
            f"{stderr.decode()[-2000:]}"
        )
    return json.loads(stdout.decode().strip().splitlines()[-1])


async def _run_cell_async(
    label: str,
    sessions: int,
    duration_s: float,
    publisher_fraction: float,
    rate_per_s: float,
    workers: int,
    load_procs: int,
    ramp_s: Optional[float],
    trace: bool,
    live: bool,
    log,
    trace_path: Optional[str] = None,
) -> Dict:
    spec = ServeSpec(
        port=0, idle_timeout_s=duration_s + 60, workers=workers,
        trace_path=trace_path if trace else None, live=live,
    )
    if workers > 1:
        broker = BrokerFleet(spec)
    else:
        broker = BrokerServer(spec)
    await broker.start()
    per_shard = sessions // load_procs
    started = time.perf_counter()
    # Above ~28k sessions the loopback 4-tuple space to one broker
    # address runs out of ephemeral source ports; give each shard its
    # own 127.0.0.x source IP so each one gets a full port range.
    reports = await asyncio.gather(*[
        _run_load_shard(
            broker.port, shard, per_shard, shard * per_shard,
            duration_s, publisher_fraction, rate_per_s, ramp_s,
            f"127.0.0.{10 + shard}" if load_procs > 1 else None,
        )
        for shard in range(load_procs)
    ])
    wall_s = time.perf_counter() - started
    summary = await broker.stop()
    if workers > 1:
        parity = summary["parity"]
    else:
        parity = broker.core.parity_counters()

    def total(key: str) -> int:
        return sum(report[key] for report in reports)

    # Across shards the exact union percentile is unknowable from
    # per-shard digests; report the worst shard as the upper envelope.
    latency = max(
        (report["latency"] for report in reports),
        key=lambda d: d["p95_ms"],
    )
    cell = {
        "label": label,
        "sessions": per_shard * load_procs,
        "workers": workers,
        "load_procs": load_procs,
        "ramp_s": ramp_s,
        "trace": trace,
        "live": live,
        "live_parity_ok": summary.get("live_parity_ok") if live else None,
        "sessions_connected": total("sessions_connected"),
        "connect_failures": total("connect_failures"),
        "duration_s": duration_s,
        "wall_s": round(wall_s, 3),
        "messages_published": total("messages_published"),
        "deliveries_client": total("deliveries_received"),
        "deliveries_broker": parity["deliveries_total"],
        "decode_errors": total("decode_errors"),
        "delivery_completeness": round(
            total("deliveries_received")
            / max(1, parity["deliveries_total"]), 4
        ),
        "publish_throughput_per_s": round(
            total("messages_published") / duration_s, 2
        ),
        "delivery_throughput_per_s": round(
            total("deliveries_received") / duration_s, 2
        ),
        "delivery_throughput_broker_per_s": round(
            parity["deliveries_total"] / wall_s, 2
        ),
        "latency_ms": latency,
        "broker_summary": summary,
    }
    log(
        f"{label}: {cell['sessions_connected']}/{cell['sessions']} sessions "
        f"x{workers} workers, "
        f"{cell['delivery_throughput_per_s']}/s delivered, "
        f"p95={latency['p95_ms']:.2f}ms, "
        f"decode_errors={cell['decode_errors']}"
    )
    return cell


def _pythonpath() -> str:
    src = str(Path(__file__).parent.parent / "src")
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}:{existing}" if existing else src


def _live_overhead(cells: List[Dict]) -> Dict[str, Dict]:
    """Broker-side throughput cost of the live tailer, per LIVE_PAIRS.

    Positive ``overhead_pct`` means the live cell delivered less per
    wall second than its trace-only baseline.  Recorded, not gated:
    CI-timing noise at smoke scale easily exceeds the 5% target, so
    the target lives here as documentation for full-mode readers.
    """
    by_label = {cell["label"]: cell for cell in cells}
    overhead: Dict[str, Dict] = {}
    for base_label, live_label in LIVE_PAIRS:
        base = by_label.get(base_label)
        live = by_label.get(live_label)
        if base is None or live is None:
            continue
        baseline = base["delivery_throughput_broker_per_s"]
        measured = live["delivery_throughput_broker_per_s"]
        if baseline <= 0:
            continue
        overhead[live_label] = {
            "baseline": base_label,
            "baseline_per_s": baseline,
            "live_per_s": measured,
            "overhead_pct": round(100.0 * (baseline - measured) / baseline, 2),
            "target_pct": 5.0,
        }
    return overhead


def run_benchmark(
    smoke: bool = False,
    out_path: Optional[Path] = RESULTS_PATH,
    log=print,
) -> Dict:
    nofile = _raise_nofile()
    cells_spec = SMOKE_CELLS if smoke else FULL_CELLS
    cells: List[Dict] = []
    for (label, sessions, duration, fraction, rate,
         workers, load_procs, ramp_s, trace, live) in cells_spec:
        # Both sides shard: each load subprocess holds sessions/procs
        # sockets, each broker worker roughly sessions/workers.
        per_process = max(sessions // load_procs, sessions // workers)
        if per_process + 256 > nofile:
            log(f"{label}: skipped (needs >{per_process} fds per process, "
                f"limit {nofile})")
            continue
        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            cells.append(
                asyncio.run(
                    _run_cell_async(
                        label, sessions, duration, fraction, rate,
                        workers, load_procs, ramp_s, trace, live, log,
                        trace_path=str(Path(tmp) / "trace.jsonl"),
                    )
                )
            )
    document = {
        "mode": "smoke" if smoke else "full",
        "live_overhead": _live_overhead(cells),
        "env": {
            "cpu_count": os.cpu_count(),
            "python": sys.version.split()[0],
            "rlimit_nofile": nofile,
            "event_loop": event_loop_name(),
        },
        "notes": {
            "topology": "broker in-process (one BrokerServer or an "
                        "SO_REUSEPORT BrokerFleet), load drivers in "
                        "subprocesses (separate fd budgets and event "
                        "loops)",
            "latency": "client-measured end-to-end over loopback: "
                       "publisher created_at stamp to subscriber decode; "
                       "multi-shard cells report the worst shard's "
                       "percentiles (upper envelope)",
            "acceptance": "every cell must report decode_errors == 0 and "
                          "all sessions connected",
            "completeness": "deliveries_client / deliveries_broker; below "
                            "1.0 at saturation means the run window closed "
                            "while fanout deliveries were still in flight "
                            "(clients disconnect at duration end), not a "
                            "decode failure",
            "throughput": "delivery_throughput_per_s counts client-decoded "
                          "deliveries per offered second; at saturation "
                          "prefer delivery_throughput_broker_per_s "
                          "(broker-emitted deliveries per wall second), "
                          "which is not truncated by the drain race",
            "live_overhead": "trace-2k vs live-2k (and the smoke pair) "
                             "run identical load with trace recording on; "
                             "only the live cell attaches the in-broker "
                             "LiveTailer, so the broker-side throughput "
                             "delta is the tailer's overhead — target "
                             "<5%, recorded in live_overhead but not "
                             "CI-gated (timing noise)",
            "worker_ladder": "w1/w2/w4 cells offer identical load to "
                             "growing fleets; delivery throughput scales "
                             "with workers only when cpu_count allows — "
                             "on a single-core host the workers time-share "
                             "one CPU and the curve is flat with a small "
                             "peer-mesh overhead",
        },
        "cells": cells,
    }
    if out_path is not None:
        out_path.parent.mkdir(exist_ok=True)
        out_path.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        log(f"wrote {out_path}")
    return document


def check_acceptance(document: Dict) -> List[str]:
    """Acceptance failures across all cells ([] = pass)."""
    failures = []
    for cell in document["cells"]:
        if cell["decode_errors"]:
            failures.append(
                f"{cell['label']}: {cell['decode_errors']} decode errors"
            )
        if cell["sessions_connected"] != cell["sessions"]:
            failures.append(
                f"{cell['label']}: only {cell['sessions_connected']}"
                f"/{cell['sessions']} sessions connected"
            )
        if cell["deliveries_client"] == 0:
            failures.append(f"{cell['label']}: no deliveries decoded")
        if cell["live"] and cell["live_parity_ok"] is not True:
            failures.append(
                f"{cell['label']}: in-broker live tailer parity not ok "
                f"(live_parity_ok={cell['live_parity_ok']})"
            )
    return failures


# -- pytest entry point (smoke cell only) ----------------------------------


def test_bench_serve_smoke():
    document = run_benchmark(smoke=True, out_path=None, log=lambda *_: None)
    assert len(document["cells"]) == 2, "smoke cells skipped (fd limit?)"
    assert check_acceptance(document) == []
    for cell in document["cells"]:
        assert cell["messages_published"] > 0
        assert cell["deliveries_client"] > 0
        # At smoke scale the drain completes: client decoded everything.
        assert cell["deliveries_client"] == cell["deliveries_broker"]
    live_cell = document["cells"][1]
    assert live_cell["live"] and live_cell["live_parity_ok"] is True
    # The paired smoke rungs must yield an overhead measurement.
    assert "smoke-200-live" in document["live_overhead"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="quick mode: one small cell")
    parser.add_argument("--out", type=Path, default=RESULTS_PATH,
                        help=f"output JSON path (default: {RESULTS_PATH})")
    args = parser.parse_args(argv)
    document = run_benchmark(smoke=args.smoke, out_path=args.out)
    failures = check_acceptance(document)
    for failure in failures:
        print(f"ACCEPTANCE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
