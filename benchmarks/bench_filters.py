"""BENCH_filters — accuracy / space / speed across the relay-filter zoo.

Runs every registered filter backend through the same two seeded
workloads and records the full matrix to
``benchmarks/results/BENCH_filters.json``:

* **fig7_ttl2h** — the Fig. 7 shape at TTL = 2 h on a Haggle-like
  trace, with deliberately small 32-bit / 2-hash relay filters so the
  relay-filter false positives Sec. VI-B analyses actually occur at
  bench scale (the same recipe the observability golden snapshot uses).
* **fig9_df** — the Fig. 9 shape: TTL = 20 h with the paper's computed
  DF = 0.138/min, same filter geometry.

The ``retouched`` cell is *lineage-driven*: the bench recomputes the
interest assignment from the config seeds, takes the unwanted
distribution keys as FP candidates, and asks
:func:`repro.core.retouched.plan_retouch` for a clear list — exactly
the profile → plan → rerun workflow ``docs/filters.md`` describes.
The headline assertion is the PR's acceptance bar: at identical filter
geometry (equal space), the retouched backend must record measurably
fewer relay-filter false injections than the baseline array TCBF.

Speed is measured separately from the simulations: best-of-N wall time
of announce / batch-query / wire-encode per backend at the run
geometry, so the matrix exposes what each backend charges per contact.
"""

import pytest

from repro.api import ExperimentSpec, run
from repro.core.filter_zoo import (
    encode_filter,
    load_keys,
    make_relay_filter,
    registered_backends,
)
from repro.core.hashing import HashFamily
from repro.core.retouched import plan_retouch
from repro.traces.synthetic import haggle_like
from repro.workload.interests import assign_interests
from repro.workload.keys import twitter_trends_2009

from .bench_tcbf_ops import _best_seconds
from .conftest import emit, emit_json, fp_attribution, nan_to_none, zoo_bench_specs

#: The calibrated mini-Fig.7 trace (not BENCH_SCALE: relay FPs need
#: this exact density/geometry pairing to show up in minutes).
TRACE = dict(scale=0.01, seed=3)

#: Shared run settings: paper rates, small filters (see module doc).
BASE = dict(min_rate_per_s=1 / 1800.0, num_bits=32, num_hashes=2)

WORKLOADS = {
    "fig7_ttl2h": dict(ttl_min=120.0),
    "fig9_df": dict(ttl_min=1200.0, df_per_min=0.138),
}

#: Retouching budget: how many announced interests the planner may
#: sacrifice to neutralise FP-candidate keys.
MAX_SACRIFICE = 1

PROBES = [f"probe-{i}" for i in range(2000)]


def _family() -> HashFamily:
    """The relay hash family every node builds under BASE's geometry."""
    return HashFamily(BASE["num_hashes"], BASE["num_bits"])


def _plan_retouch_from_lineage(trace):
    """Recreate the run's interest universe and plan the clear list.

    Protected keys are the interests the seeds actually assign; FP
    candidates are the rest of the Table II distribution — the keys
    whose injections can only ever be relay-filter false positives.
    """
    spec = ExperimentSpec(**BASE, **WORKLOADS["fig7_ttl2h"])
    distribution = twitter_trends_2009()
    interests = assign_interests(
        trace.nodes,
        distribution,
        seed=spec.interest_seed,
        interests_per_node=spec.interests_per_node,
    )
    protected = set().union(*interests.values())
    candidates = sorted(set(distribution.keys) - protected)
    return plan_retouch(
        candidates, protected, _family(), max_sacrifice=MAX_SACRIFICE
    )


def _bench_specs(plan):
    specs = zoo_bench_specs()
    specs["retouched"] = "retouched:" + plan.spec_params()
    return specs


def _zoo_timings(specs) -> dict:
    """Best-of-N announce / query / encode seconds per backend."""
    family = _family()
    keys = twitter_trends_2009().keys
    timings = {}
    for backend, fspec in specs.items():
        loaded = make_relay_filter(fspec, family=family)
        load_keys(loaded, keys)
        timings[backend] = {
            "announce_38_keys": _best_seconds(
                lambda fspec=fspec: load_keys(
                    make_relay_filter(fspec, family=family), keys
                )
            ),
            "query_batch_2000": _best_seconds(
                lambda loaded=loaded: loaded.query_batch(PROBES)
            ),
            "encode_frame": _best_seconds(
                lambda loaded=loaded: encode_filter(loaded)
            ),
        }
    return timings


def _relay_frame_bytes(specs) -> dict:
    """Wire size of one fully-announced relay frame per backend."""
    family = _family()
    keys = twitter_trends_2009().keys
    sizes = {}
    for backend, fspec in specs.items():
        loaded = make_relay_filter(fspec, family=family)
        load_keys(loaded, keys)
        sizes[backend] = len(encode_filter(loaded))
    return sizes


@pytest.fixture(scope="module")
def zoo_trace():
    return haggle_like(**TRACE)


@pytest.fixture(scope="module")
def retouch_plan(zoo_trace):
    plan = _plan_retouch_from_lineage(zoo_trace)
    assert not plan.is_empty(), "lineage planner found nothing to clear"
    return plan


@pytest.fixture(scope="module")
def matrix(zoo_trace, retouch_plan):
    """{workload: {backend: RunResult}} over the full registry."""
    specs = _bench_specs(retouch_plan)
    return {
        wl_name: {
            backend: run(
                zoo_trace, ExperimentSpec(filter_spec=fspec, **BASE, **wl)
            )
            for backend, fspec in specs.items()
        }
        for wl_name, wl in WORKLOADS.items()
    }


def _accuracy(result) -> dict:
    breakdown = fp_attribution(result.summary)
    breakdown["delivery_ratio"] = nan_to_none(result.summary.delivery_ratio)
    return breakdown


def test_bench_filters_matrix_json(matrix, retouch_plan):
    """Emit BENCH_filters.json and enforce the acceptance bar."""
    specs = _bench_specs(retouch_plan)
    timings = _zoo_timings(specs)
    frame_bytes = _relay_frame_bytes(specs)
    document = {
        "bench": "filters",
        "trace": {"name": "haggle_like", **TRACE},
        "base_config": dict(BASE),
        "workloads": {name: dict(wl) for name, wl in WORKLOADS.items()},
        "specs": specs,
        "retouch_plan": {
            "max_sacrifice": MAX_SACRIFICE,
            "cleared_bits": sorted(retouch_plan.cleared_bits),
            "sacrificed_keys": sorted(retouch_plan.sacrificed_keys),
            "neutralised_keys": sorted(retouch_plan.neutralised_keys),
        },
        "speed_best_seconds": timings,
        "matrix": {
            wl_name: {
                backend: {
                    "spec": specs[backend],
                    "accuracy": _accuracy(result),
                    "space": {
                        "bytes_transferred": result.engine.bytes_transferred,
                        "relay_frame_bytes": frame_bytes[backend],
                    },
                }
                for backend, result in cells.items()
            }
            for wl_name, cells in matrix.items()
        },
    }
    emit_json("BENCH_filters", document)

    lines = []
    for wl_name, cells in matrix.items():
        lines.append(f"[{wl_name}]")
        lines.append(
            f"{'backend':<10} {'relay_fp':>9} {'injections':>11} "
            f"{'delivery':>9} {'MB':>8}"
        )
        for backend, result in cells.items():
            s = result.summary
            lines.append(
                f"{backend:<10} {s.num_false_injections:>9d} "
                f"{s.num_injections:>11d} {s.delivery_ratio:>9.3f} "
                f"{result.engine.bytes_transferred / 1e6:>8.2f}"
            )
        lines.append("")
    emit("filters_matrix", "\n".join(lines).rstrip())

    # Acceptance bar: retouched beats the baseline array TCBF on
    # relay-filter FPs at equal space in >= 1 configuration.
    wins = [
        wl_name
        for wl_name, cells in matrix.items()
        if cells["retouched"].summary.num_false_injections
        < cells["array"].summary.num_false_injections
    ]
    assert wins, "retouched never beat the array baseline on relay FPs"


def test_matrix_covers_registry(matrix):
    """Every registered backend appears in every workload's row."""
    for wl_name, cells in matrix.items():
        assert set(cells) == set(registered_backends()), wl_name


def test_retouched_beats_baseline_at_equal_space(matrix, retouch_plan):
    """Same geometry, strictly fewer relay-filter false injections.

    The retouched filter *is* the baseline 32-bit TCBF with a few bits
    scrubbed, so its frames can only be equal or smaller — lower FP
    counts here are a pure accuracy win, not a space trade.
    """
    for wl_name, cells in matrix.items():
        base = cells["array"]
        retouched = cells["retouched"]
        assert (
            retouched.summary.num_false_injections
            < base.summary.num_false_injections
        ), wl_name
        assert (
            retouched.engine.bytes_transferred
            <= base.engine.bytes_transferred
        ), wl_name
        # The sacrifice budget must not have collapsed delivery.
        assert retouched.summary.delivery_ratio == pytest.approx(
            base.summary.delivery_ratio, abs=0.01
        ), wl_name


def test_multi_collection_reduces_traffic(matrix):
    """Threshold-split collections announce sparser frames: fewer
    bytes on the wire than the monolithic baseline in each workload."""
    for wl_name, cells in matrix.items():
        assert (
            cells["multi"].engine.bytes_transferred
            < cells["array"].engine.bytes_transferred
        ), wl_name


def test_dict_and_array_cells_agree(matrix):
    """The two counter stores are the same filter semantically: every
    accuracy number in the matrix must match bit-for-bit."""
    for wl_name, cells in matrix.items():
        dict_summary = cells["dict"].summary
        array_summary = cells["array"].summary
        assert (
            dict_summary.num_false_injections
            == array_summary.num_false_injections
        ), wl_name
        assert dict_summary.num_injections == array_summary.num_injections
        assert (
            cells["dict"].engine.bytes_transferred
            == cells["array"].engine.bytes_transferred
        ), wl_name
