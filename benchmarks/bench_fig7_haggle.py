"""Fig. 7 — delivery ratio, delay, and forwardings vs TTL (Haggle).

Runs PUSH, B-SUB, and PULL over the Haggle-like trace at the paper's
log-scaled TTL axis and regenerates the three panels as series tables.
Asserts the qualitative shape: PUSH ≥ B-SUB > PULL on delivery; PULL
slowest on delay; PUSH most expensive and PULL ≈ 1 on forwardings.
"""

import math

import pytest

from repro.experiments.report import figure_series, series_table
from repro.experiments.sweeps import ttl_sweep

from .conftest import bench_config, emit, emit_json, fp_attribution, nan_to_none

TTL_VALUES_MIN = (10.0, 30.0, 100.0, 300.0, 1000.0)


@pytest.fixture(scope="module")
def sweep(haggle_trace):
    return ttl_sweep(
        haggle_trace, ttl_values_min=TTL_VALUES_MIN, base_config=bench_config()
    )


def _emit_structured(sweep):
    """results/BENCH_fig7.json: every panel metric plus, per run, the
    false-positive attribution breakdown (relay-filter FP vs genuine
    but stale vs genuine injections, and consumer-side false
    deliveries)."""
    emit_json("BENCH_fig7", {
        "figure": "fig7",
        "trace": "haggle-like",
        "ttl_values_min": list(TTL_VALUES_MIN),
        "protocols": {
            name: [
                {
                    "ttl_min": ttl,
                    "delivery_ratio": nan_to_none(s.delivery_ratio),
                    "mean_delay_min": nan_to_none(s.mean_delay_min),
                    "forwardings_per_delivered": nan_to_none(
                        s.forwardings_per_delivered
                    ),
                    "false_positive_ratio": nan_to_none(
                        s.false_positive_ratio
                    ),
                    "fp_attribution": fp_attribution(s),
                }
                for ttl, s in zip(
                    TTL_VALUES_MIN,
                    (r.summary for r in results),
                )
            ]
            for name, results in sweep.items()
        },
    })


def _emit_panels(sweep, trace_label, file_prefix):
    panels = [
        ("delivery_ratio", "(a) Delivery ratio"),
        ("delay_min", "(b) Delay (minutes)"),
        ("forwardings", "(c) Forwardings per delivered message"),
    ]
    blocks = []
    for metric, title in panels:
        blocks.append(
            series_table(
                "TTL(min)",
                TTL_VALUES_MIN,
                figure_series(sweep, metric),
                title=f"{trace_label} {title}",
            )
        )
    emit(file_prefix, "\n\n".join(blocks))


def test_fig7_sweep(benchmark, haggle_trace):
    """Benchmark the full Fig. 7 sweep once, publish the panels, and
    check every panel's qualitative shape (the assertions also run as
    granular tests below when benchmarks are not isolated)."""
    result = benchmark.pedantic(
        lambda: ttl_sweep(
            haggle_trace,
            ttl_values_min=TTL_VALUES_MIN,
            base_config=bench_config(),
        ),
        rounds=1,
        iterations=1,
    )
    _emit_panels(result, "Fig. 7", "fig7_haggle")
    _emit_structured(result)
    _assert_delivery_ordering(result)
    _assert_delivery_increases_with_ttl(result)
    _assert_delay_ordering(result)
    _assert_forwardings_ordering(result)
    _assert_bsub_stays_cheap(result)


def _assert_delivery_ordering(sweep):
    """PUSH >= B-SUB > PULL at the longer TTLs (Fig. 7(a))."""
    for i, ttl in enumerate(TTL_VALUES_MIN):
        push = sweep["PUSH"][i].summary.delivery_ratio
        bsub = sweep["B-SUB"][i].summary.delivery_ratio
        pull = sweep["PULL"][i].summary.delivery_ratio
        assert push >= bsub - 0.02, f"TTL={ttl}"
        if ttl >= 100:
            assert bsub > pull, f"TTL={ttl}"


def _assert_delivery_increases_with_ttl(sweep):
    for name in ("PUSH", "B-SUB", "PULL"):
        ratios = [r.summary.delivery_ratio for r in sweep[name]]
        assert ratios[-1] > ratios[0], name
        assert ratios[-1] >= max(ratios) - 0.05  # roughly monotone


def _assert_delay_ordering(sweep):
    """PULL's delay is the worst at long TTLs (Fig. 7(b))."""
    i = len(TTL_VALUES_MIN) - 1
    push = sweep["PUSH"][i].summary.mean_delay_s
    pull = sweep["PULL"][i].summary.mean_delay_s
    bsub = sweep["B-SUB"][i].summary.mean_delay_s
    assert push <= bsub <= pull * 1.2
    assert pull > push


def _assert_forwardings_ordering(sweep):
    """PUSH most forwardings; PULL exactly one per delivered (Fig. 7(c))."""
    for i, ttl in enumerate(TTL_VALUES_MIN):
        push = sweep["PUSH"][i].summary.forwardings_per_delivered
        bsub = sweep["B-SUB"][i].summary.forwardings_per_delivered
        pull = sweep["PULL"][i].summary.forwardings_per_delivered
        if math.isnan(push) or math.isnan(bsub) or math.isnan(pull):
            continue  # nothing delivered at tiny TTLs on sparse scales
        assert push > bsub, f"TTL={ttl}"
        assert pull == pytest.approx(1.0)


def _assert_bsub_stays_cheap(sweep):
    """'B-SUB is able to maintain a relatively stable forwarding count'."""
    bsub = [
        r.summary.forwardings_per_delivered
        for r in sweep["B-SUB"]
        if not math.isnan(r.summary.forwardings_per_delivered)
    ]
    push = [
        r.summary.forwardings_per_delivered
        for r in sweep["PUSH"]
        if not math.isnan(r.summary.forwardings_per_delivered)
    ]
    assert max(bsub) < max(push)


def test_fig7a_delivery_ordering(sweep):
    _assert_delivery_ordering(sweep)


def test_fig7a_delivery_increases_with_ttl(sweep):
    _assert_delivery_increases_with_ttl(sweep)


def test_fig7b_delay_ordering(sweep):
    _assert_delay_ordering(sweep)


def test_fig7c_forwardings_ordering(sweep):
    _assert_forwardings_ordering(sweep)


def test_fig7_bsub_stays_cheap_as_ttl_grows(sweep):
    _assert_bsub_stays_cheap(sweep)
