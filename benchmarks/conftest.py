"""Shared configuration for the benchmark harness.

Every figure/table bench runs at a reduced trace scale by default so
the whole suite finishes in minutes on a laptop; set
``BSUB_BENCH_SCALE=1.0`` (and optionally ``BSUB_BENCH_MIN_RATE``) to
reproduce at the paper's full workload.

Each bench prints the regenerated table/figure series and also writes
it to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.
"""

import json
import os
from pathlib import Path

import pytest

from repro.core.filter_zoo import registered_backends
from repro.experiments.config import ExperimentConfig
from repro.traces.synthetic import haggle_like, mit_reality_like

#: Fraction of the paper's contact volume to simulate (1.0 = full scale).
BENCH_SCALE = float(os.environ.get("BSUB_BENCH_SCALE", "0.05"))

#: Minimum per-node message rate (paper: 1/1800 s⁻¹ = 1 per 30 min).
BENCH_MIN_RATE = float(os.environ.get("BSUB_BENCH_MIN_RATE", str(1 / 3600.0)))

RESULTS_DIR = Path(__file__).parent / "results"


#: One representative filter spec per registered zoo backend, used by
#: the registry-driven micro-benchmarks and the BENCH_filters matrix.
#: ``retouched`` gets a fixed clear list here; workload-aware benches
#: replace it with a lineage-planned spec.
ZOO_BENCH_SPECS = {
    "dict": "dict",
    "array": "array",
    "multi": "multi:threshold=0.2,max=4",
    "retouched": "retouched:clear=1+2+5",
    "countbf": "countbf:rows=8",
}


def zoo_bench_specs() -> dict:
    """Spec strings covering the *whole* filter registry.

    Fails loudly when a backend is registered without a bench spec, so
    adding filter #6 forces the benchmarks to cover it too.
    """
    missing = [b for b in registered_backends() if b not in ZOO_BENCH_SPECS]
    if missing:
        raise RuntimeError(
            f"no bench spec for registered filter backend(s): {missing}; "
            "add them to benchmarks.conftest.ZOO_BENCH_SPECS"
        )
    return dict(ZOO_BENCH_SPECS)


def bench_config(**overrides) -> ExperimentConfig:
    defaults = dict(min_rate_per_s=BENCH_MIN_RATE)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def emit(name: str, text: str) -> str:
    """Print a regenerated table and persist it under results/."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def emit_json(name: str, document: dict) -> Path:
    """Persist a machine-readable bench result under results/.

    Written as canonical JSON (sorted keys) so downstream tooling can
    diff two bench runs directly.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(
        json.dumps(document, sort_keys=True, indent=2, allow_nan=False)
        + "\n"
    )
    print(f"wrote {path}")
    return path


def nan_to_none(value):
    """JSON-safe number: sparse bench scales produce NaN metrics."""
    import math

    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def fp_attribution(summary) -> dict:
    """False-positive attribution breakdown of one run summary.

    Mirrors the taxonomy of ``repro.obs.analyze``: false injections are
    pure relay-filter Bloom collisions; the remaining useless
    injections carried genuinely-announced but recipient-less keys;
    false deliveries can only come from the consumer-side filter.
    """
    return {
        "injections": summary.num_injections,
        "relay_filter_fp": summary.num_false_injections,
        "genuine_but_stale": (
            summary.num_useless_injections - summary.num_false_injections
        ),
        "genuine": summary.num_injections - summary.num_useless_injections,
        "false_deliveries": summary.num_false_deliveries,
        "false_injection_ratio": summary.false_injection_ratio,
        "useless_injection_ratio": summary.useless_injection_ratio,
    }


@pytest.fixture(scope="session")
def haggle_trace():
    return haggle_like(scale=BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def mit_trace():
    # The MIT preset is ~3.7× sparser than Haggle by design; at reduced
    # bench scales that sparsity compounds until delivery ratios are
    # too small for meaningful shape comparisons (conditional-delay
    # metrics invert under heavy censoring).  Partially compensate at
    # small scales while keeping MIT strictly sparser than Haggle.
    return mit_reality_like(scale=min(1.0, 3 * BENCH_SCALE), seed=1)
