"""Shared configuration for the benchmark harness.

Every figure/table bench runs at a reduced trace scale by default so
the whole suite finishes in minutes on a laptop; set
``BSUB_BENCH_SCALE=1.0`` (and optionally ``BSUB_BENCH_MIN_RATE``) to
reproduce at the paper's full workload.

Each bench prints the regenerated table/figure series and also writes
it to ``benchmarks/results/<name>.txt`` so the output survives pytest's
capture.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.traces.synthetic import haggle_like, mit_reality_like

#: Fraction of the paper's contact volume to simulate (1.0 = full scale).
BENCH_SCALE = float(os.environ.get("BSUB_BENCH_SCALE", "0.05"))

#: Minimum per-node message rate (paper: 1/1800 s⁻¹ = 1 per 30 min).
BENCH_MIN_RATE = float(os.environ.get("BSUB_BENCH_MIN_RATE", str(1 / 3600.0)))

RESULTS_DIR = Path(__file__).parent / "results"


def bench_config(**overrides) -> ExperimentConfig:
    defaults = dict(min_rate_per_s=BENCH_MIN_RATE)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


def emit(name: str, text: str) -> str:
    """Print a regenerated table and persist it under results/."""
    banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}"
    print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    return text


@pytest.fixture(scope="session")
def haggle_trace():
    return haggle_like(scale=BENCH_SCALE, seed=1)


@pytest.fixture(scope="session")
def mit_trace():
    # The MIT preset is ~3.7× sparser than Haggle by design; at reduced
    # bench scales that sparsity compounds until delivery ratios are
    # too small for meaningful shape comparisons (conditional-delay
    # metrics invert under heavy censoring).  Partially compensate at
    # small scales while keeping MIT strictly sparser than Haggle.
    return mit_reality_like(scale=min(1.0, 3 * BENCH_SCALE), seed=1)
