"""Sec. VI-C / IV-B — memory: TCBF vs raw-string interest representation.

The paper claims "the TCBF uses half of the space used by the raw
strings in representing interests".  This bench measures both
representations for the actual 38-key Table II workload, using the real
wire encoder (not just the closed form), and reports the ratio.
"""

import pytest

from repro.core.analysis import raw_string_memory_bytes
from repro.core.hashing import HashFamily
from repro.core.serialization import encoded_tcbf_size
from repro.core.tcbf import TemporalCountingBloomFilter
from repro.experiments.report import format_table
from repro.workload.keys import twitter_trends_2009

from .conftest import emit


def build_filter(keys):
    family = HashFamily(4, 256)
    return TemporalCountingBloomFilter.of(keys, family=family, initial_value=50)


def test_memory_tcbf_vs_raw_strings(benchmark):
    dist = twitter_trends_2009()
    tcbf = benchmark.pedantic(
        lambda: build_filter(dist.keys), rounds=5, iterations=1
    )

    rows = []
    for count in (1, 5, 10, 20, 38):
        keys = dist.keys[:count]
        raw = raw_string_memory_bytes([len(k.encode()) for k in keys])
        filt = build_filter(keys)
        full = encoded_tcbf_size(filt, "full")
        identical = encoded_tcbf_size(filt, "identical")
        stripped = encoded_tcbf_size(filt, "none")
        rows.append([count, raw, full, identical, stripped, identical / raw])
    text = format_table(
        ["keys", "raw strings (B)", "TCBF full (B)", "TCBF identical (B)",
         "BF stripped (B)", "identical/raw"],
        rows,
        title="Sec. VI-C — interest representation memory (38-key workload)",
    )
    emit("memory", text)

    # the headline claim, at the full 38-key interest set:
    full_set = rows[-1]
    raw, identical = full_set[1], full_set[3]
    assert identical < 0.6 * raw  # "half of the space"

    # stripped filters (broker -> producer requests) are smaller still
    assert full_set[4] <= identical


def test_memory_within_paper_bound_per_key(benchmark):
    """'at most 5 bytes are used to encode a single key' (+ fixed header)."""
    single = benchmark.pedantic(
        lambda: build_filter(["NewMoon"]), rounds=5, iterations=1
    )
    body = encoded_tcbf_size(single, "identical") - 10  # header+scale+counter
    assert body <= 4 * 1  # at most 4 one-byte locations
