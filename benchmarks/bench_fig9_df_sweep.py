"""Fig. 9 — all four metrics vs the decaying factor, on both traces.

B-SUB at TTL = 20 hours across DF ∈ [0, 2] per minute.  The paper's
claims, asserted here:

* (a) delivery ratio decreases as DF grows (interest propagation is
  confined);
* (b) delay decreases with DF (only near consumers get served);
* (c) forwardings decrease toward ≈ 1 ("B-SUB works like PULL");
* (d) the false-positive traffic is maximal at DF = 0 and falls with
  DF, below the theoretical worst case for a 38-key filter.

On panel (d): the paper measures "the ratio of falsely delivered
messages to the total number of delivered messages".  With one interest
per consumer, the *final-hop* Bloom filter holds a single key, whose
false-positive probability is ≈ 6e-8 — so faithful Sec. V-D delivery
matching produces essentially zero false deliveries, and the paper's
0.01–0.04-scale curve can only come from the *injection* side, where
the producer matches against a many-key relay filter (the quantity
Sec. VI-B actually analyses and Eq. 1 bounds at 0.04).  We therefore
report the useless-injection ratio (replications of messages with no
intended recipient) as panel (d), alongside the strictly-Bloom-caused
false-injection ratio, and record the interpretation in EXPERIMENTS.md.
"""

import math

import pytest

from repro.core.analysis import false_positive_rate
from repro.experiments.report import metric_series, series_table
from repro.experiments.sweeps import df_sweep

from .conftest import bench_config, emit, emit_json, fp_attribution, nan_to_none

DF_VALUES = (0.0, 0.069, 0.138, 0.25, 0.5, 1.0, 2.0)
TTL_MIN = 20.0 * 60.0


def run_sweeps(haggle_trace, mit_trace):
    return {
        "Haggle(Infocom06)-like": df_sweep(
            haggle_trace, DF_VALUES, ttl_min=TTL_MIN, base_config=bench_config()
        ),
        "MIT-Reality-like": df_sweep(
            mit_trace, DF_VALUES, ttl_min=TTL_MIN, base_config=bench_config()
        ),
    }


@pytest.fixture(scope="module")
def sweeps(haggle_trace, mit_trace):
    return run_sweeps(haggle_trace, mit_trace)


def _assert_delivery_decreases(sweeps):
    for name, results in sweeps.items():
        ratios = metric_series(results, "delivery_ratio")
        assert ratios[0] >= ratios[-1], name
        assert ratios[-1] < ratios[0], name  # strictly lower at DF=2


def _assert_forwardings_decrease(sweeps):
    for name, results in sweeps.items():
        forwardings = [
            f for f in metric_series(results, "forwardings") if not math.isnan(f)
        ]
        assert forwardings[0] >= forwardings[-1], name
        # at huge DF B-SUB degenerates towards one-hop behaviour
        assert forwardings[-1] < max(3.0, forwardings[0]), name


def _assert_fpr_max_at_zero(sweeps):
    for name, results in sweeps.items():
        fpr = metric_series(results, "useless_injection")
        assert max(fpr) == pytest.approx(max(fpr[0], fpr[1]), abs=0.02), name
        assert fpr[-1] <= fpr[0] + 0.01, name


def _assert_fpr_bounded(sweeps):
    """'In practice, the FPR can be much lower than this value ...
    due to the uneven distribution of the keys, the FPR can actually
    be larger than the maximum theoretical value.'"""
    bound = false_positive_rate(38, 256, 4)
    for results in sweeps.values():
        for value in metric_series(results, "useless_injection"):
            assert value <= 3 * bound
        for value in metric_series(results, "false_injection"):
            assert value <= bound  # strictly Bloom-caused, Eq. 1 applies
        for value in metric_series(results, "fpr"):
            assert value <= 0.01  # single-key consumer filters: ~zero


def _assert_df_zero_best_delivery(sweeps):
    """DF = 0 floods interests: relay filters only grow, giving the
    best delivery of the sweep (within noise)."""
    for name, results in sweeps.items():
        ratios = metric_series(results, "delivery_ratio")
        assert ratios[0] >= max(ratios) - 0.03, name


def _emit_structured(sweeps):
    """results/BENCH_fig9.json: panel metrics per trace and DF value,
    each with the false-positive attribution breakdown — panel (d)
    decomposed into its causes."""
    bound = false_positive_rate(38, 256, 4)
    emit_json("BENCH_fig9", {
        "figure": "fig9",
        "ttl_min": TTL_MIN,
        "df_values_per_min": list(DF_VALUES),
        "theoretical_fpr_bound_38_keys": bound,
        "traces": {
            name: [
                {
                    "df_per_min": df,
                    "delivery_ratio": nan_to_none(s.delivery_ratio),
                    "mean_delay_min": nan_to_none(s.mean_delay_min),
                    "forwardings_per_delivered": nan_to_none(
                        s.forwardings_per_delivered
                    ),
                    "false_positive_ratio": nan_to_none(
                        s.false_positive_ratio
                    ),
                    "fp_attribution": fp_attribution(s),
                }
                for df, s in zip(
                    DF_VALUES, (r.summary for r in results)
                )
            ]
            for name, results in sweeps.items()
        },
    })


def test_fig9_sweep(benchmark, haggle_trace, mit_trace):
    sweeps = benchmark.pedantic(
        lambda: run_sweeps(haggle_trace, mit_trace), rounds=1, iterations=1
    )
    blocks = []
    for metric, title in [
        ("delivery_ratio", "(a) Delivery ratio"),
        ("delay_min", "(b) Delay (minutes)"),
        ("forwardings", "(c) Forwardings per delivered message"),
        ("useless_injection", "(d) False-positive traffic (useless-injection ratio)"),
        ("false_injection", "(d') strictly Bloom-caused false-injection ratio"),
        ("fpr", "(d'') falsely *delivered* ratio (single-key consumer filters)"),
    ]:
        blocks.append(
            series_table(
                "DF(/min)",
                DF_VALUES,
                {
                    name: metric_series(results, metric)
                    for name, results in sweeps.items()
                },
                title=f"Fig. 9 {title}  [TTL = 20 h]",
            )
        )
    bound = false_positive_rate(38, 256, 4)
    blocks.append(f"Theoretical worst-case filter FPR (38 keys): {bound:.4f}")
    emit("fig9_df_sweep", "\n\n".join(blocks))
    _emit_structured(sweeps)
    _assert_delivery_decreases(sweeps)
    _assert_forwardings_decrease(sweeps)
    _assert_fpr_max_at_zero(sweeps)
    _assert_fpr_bounded(sweeps)
    _assert_df_zero_best_delivery(sweeps)


def test_fig9a_delivery_decreases_with_df(sweeps):
    _assert_delivery_decreases(sweeps)


def test_fig9c_forwardings_decrease_toward_pull(sweeps):
    _assert_forwardings_decrease(sweeps)


def test_fig9d_fpr_max_at_zero_df(sweeps):
    _assert_fpr_max_at_zero(sweeps)


def test_fig9d_fpr_near_theoretical_bound(sweeps):
    _assert_fpr_bounded(sweeps)


def test_fig9_df_zero_means_no_interest_removal(sweeps):
    _assert_df_zero_best_delivery(sweeps)
